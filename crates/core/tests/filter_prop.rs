//! Property tests of the content-filter layer.
//!
//! Three families, all seeded through [`infobus_netsim::SimRng`] so every
//! failure replays exactly:
//!
//! * **totality** — compiling and evaluating arbitrary generated
//!   predicates against arbitrary generated values never panics, is
//!   deterministic, and the wire encoding round-trips structurally;
//! * **decode robustness** — arbitrary byte blobs fed to the predicate
//!   decoder return errors, never panics (malformed announce bytes come
//!   straight off the network);
//! * **placement equivalence** — filtering at the *publisher's* gate
//!   (suppress before sequencing) and filtering at the *subscriber's*
//!   delivery gate produce byte-identical delivery sets, even when the
//!   channel between the two engines loses, duplicates, and reorders
//!   datagrams and NAK repair has to reconstruct the stream.

use infobus_core::engine::filter::interest_accepts;
use infobus_core::engine::{Action, Engine, Event, Micros, PubSource};
use infobus_core::msg::Packet;
use infobus_core::{BusConfig, Bytes, CompiledPredicate, Envelope, EnvelopeKind, Predicate, QoS};
use infobus_netsim::SimRng;
use infobus_types::{wire, DataObject, TypeRegistry, Value, ValueType};

const SUBJECT: &str = "prop.filtered";

// ----- generators ----------------------------------------------------------

const ATTRS: [&str; 4] = ["sym", "price", "size", "venue"];
const SYMS: [&str; 4] = ["IBM", "GMC", "TAOS", "SUN"];

/// A random value drawn from the shapes predicates can see: scalars,
/// lists, and `Probe` objects over a small attribute pool (so generated
/// paths sometimes hit and sometimes miss).
fn gen_value(rng: &mut SimRng, depth: usize) -> Value {
    match rng.gen_range_inclusive(0, if depth == 0 { 5 } else { 7 }) {
        0 => Value::Nil,
        1 => Value::Bool(rng.next_u64() & 1 == 0),
        2 => Value::I64(rng.gen_range_inclusive(0, 300) as i64 - 150),
        3 => Value::F64(rng.gen_f64() * 300.0 - 150.0),
        4 => Value::str(SYMS[rng.gen_range_inclusive(0, 3) as usize]),
        5 => Value::Bytes(vec![
            rng.next_u64() as u8;
            rng.gen_range_inclusive(0, 3) as usize
        ]),
        6 => Value::List(
            (0..rng.gen_range_inclusive(0, 3))
                .map(|_| gen_value(rng, depth - 1))
                .collect(),
        ),
        _ => Value::object(gen_probe(rng, depth - 1)),
    }
}

fn gen_probe(rng: &mut SimRng, depth: usize) -> DataObject {
    let mut obj = DataObject::new("Probe");
    for attr in ATTRS {
        if rng.gen_f64() < 0.7 {
            obj = obj.with(attr, gen_value(rng, depth));
        }
    }
    if rng.gen_f64() < 0.3 {
        obj.set_property("note", gen_value(rng, depth));
    }
    obj
}

/// A random dotted path: usually one of the known attributes, sometimes
/// empty (the root value itself), sometimes nested or unknown.
fn gen_path(rng: &mut SimRng) -> String {
    match rng.gen_range_inclusive(0, 6) {
        0 => String::new(),
        1 => "missing".into(),
        2 => format!(
            "{}.{}",
            ATTRS[rng.gen_range_inclusive(0, 3) as usize],
            "sym"
        ),
        _ => ATTRS[rng.gen_range_inclusive(0, 3) as usize].into(),
    }
}

fn gen_predicate(rng: &mut SimRng, depth: usize) -> Predicate {
    let leaf = depth == 0 || rng.gen_f64() < 0.5;
    if leaf {
        let path = gen_path(rng);
        let constant = gen_value(rng, 1);
        match rng.gen_range_inclusive(0, 6) {
            0 => Predicate::eq(path, constant),
            1 => Predicate::ne(path, constant),
            2 => Predicate::lt(path, constant),
            3 => Predicate::le(path, constant),
            4 => Predicate::gt(path, constant),
            5 => Predicate::ge(path, constant),
            _ => Predicate::is_in(
                path,
                (0..rng.gen_range_inclusive(0, 4))
                    .map(|_| gen_value(rng, 1))
                    .collect(),
            ),
        }
    } else {
        let fan = 1 + rng.gen_range_inclusive(0, 2) as usize;
        let kids = (0..fan).map(|_| gen_predicate(rng, depth - 1)).collect();
        match rng.gen_range_inclusive(0, 2) {
            0 => Predicate::all(kids),
            1 => Predicate::any(kids),
            _ => Predicate::not(gen_predicate(rng, depth - 1)),
        }
    }
}

// ----- totality ------------------------------------------------------------

#[test]
fn eval_is_total_deterministic_and_encoding_roundtrips() {
    for seed in 0..400u64 {
        let mut rng = SimRng::seed_from_u64(0xF117_0000 + seed);
        let pred = gen_predicate(&mut rng, 3);
        // Structural wire round-trip holds whether or not the predicate
        // is compilable (bounds are a compile-time concern).
        let bytes = pred.encode();
        match Predicate::decode(&bytes) {
            Ok(back) => assert_eq!(back, pred, "seed {seed}: decode(encode(p)) != p"),
            Err(e) => panic!("seed {seed}: own encoding rejected: {e:?}"),
        }
        let Ok(compiled) = CompiledPredicate::compile(&pred) else {
            continue; // generated past the depth/node bounds — fine
        };
        for probe in 0..20 {
            let value = gen_value(&mut rng, 3);
            let a = compiled.eval(&value);
            let b = compiled.eval(&value);
            assert_eq!(a, b, "seed {seed} probe {probe}: eval not deterministic");
        }
        // The compiled form's byte round-trip evaluates identically.
        let recompiled = CompiledPredicate::from_bytes(&compiled.to_bytes()).unwrap();
        let value = gen_value(&mut rng, 3);
        assert_eq!(compiled.eval(&value), recompiled.eval(&value));
    }
}

#[test]
fn decode_never_panics_on_arbitrary_bytes() {
    for seed in 0..600u64 {
        let mut rng = SimRng::seed_from_u64(0xDECD_0000 + seed);
        let len = rng.gen_range_inclusive(0, 96) as usize;
        let blob: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Outcome is irrelevant; termination without panic is the property.
        let _ = Predicate::decode(&blob);
        let _ = CompiledPredicate::from_bytes(&blob);
    }
}

// ----- placement equivalence under an adversarial channel ------------------

fn probe_registry() -> TypeRegistry {
    let mut registry = TypeRegistry::with_fundamentals();
    let mut b = infobus_types::TypeDescriptor::builder("Probe");
    for attr in ATTRS {
        b = b.attribute(attr, ValueType::Any);
    }
    registry.register(b.build()).unwrap();
    registry
}

fn delivered(actions: &[Action]) -> Vec<Envelope> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Deliver(env) => Some(env.clone()),
            _ => None,
        })
        .collect()
}

fn broadcast_envelopes(actions: &[Action]) -> Vec<Envelope> {
    let mut out = Vec::new();
    for a in actions {
        if let Action::Broadcast(Packet::Data { envelopes, .. }) = a {
            out.extend(envelopes.iter().cloned());
        }
    }
    out
}

fn publish_payloads(
    publisher: &mut Engine,
    payloads: &[Vec<u8>],
    now: &mut Micros,
) -> Vec<Envelope> {
    let source = PubSource {
        app: "prop".into(),
        inc: 1,
        route: None,
    };
    let subject = publisher.table().intern(SUBJECT).unwrap();
    let mut wire = Vec::new();
    for p in payloads {
        *now += 10;
        let actions = publisher.handle(
            *now,
            Event::Publish {
                source: source.clone(),
                subject: subject.clone(),
                qos: QoS::Reliable,
                kind: EnvelopeKind::Data,
                corr: 0,
                payload: Bytes::from_vec(p.clone()),
            },
        );
        wire.extend(broadcast_envelopes(&actions));
    }
    wire
}

fn mangle(rng: &mut SimRng, wire: Vec<Envelope>, loss: f64, dup: f64) -> Vec<Envelope> {
    let mut out = Vec::new();
    for env in wire {
        if rng.gen_f64() < loss {
            continue;
        }
        if rng.gen_f64() < dup {
            out.push(env.clone());
        }
        out.push(env);
    }
    if out.len() >= 2 {
        for _ in 0..out.len() {
            let i = rng.gen_range_inclusive(0, out.len() as u64 - 2) as usize;
            if rng.gen_f64() < 0.5 {
                out.swap(i, i + 1);
            }
        }
    }
    out
}

fn receive_all(receiver: &mut Engine, envs: Vec<Envelope>, now: &mut Micros) -> Vec<Envelope> {
    let mut got = Vec::new();
    for env in envs {
        *now += 10;
        let actions = receiver.handle(
            *now,
            Event::Envelope {
                env,
                entitled: true,
            },
        );
        got.extend(delivered(&actions));
    }
    got
}

fn repair_round(publisher: &mut Engine, receiver: &mut Engine, now: &mut Micros) -> Vec<Envelope> {
    let cfg_sync = publisher.config().sync_period_us;
    let cfg_nak = receiver.config().nak_delay_us;
    let mut released = Vec::new();
    *now += cfg_sync + 1;
    let digest_actions =
        publisher.handle(*now, Event::Timer(infobus_core::engine::TimerKind::Sync));
    for a in &digest_actions {
        if let Action::Broadcast(Packet::SeqSync { entries }) = a {
            for e in entries {
                let actions = receiver.handle(
                    *now,
                    Event::Digest {
                        entry: e.clone(),
                        sub_at: Some(0),
                    },
                );
                released.extend(delivered(&actions));
            }
        }
    }
    *now += cfg_nak + 1;
    let scan = receiver.handle(*now, Event::Timer(infobus_core::engine::TimerKind::NakScan));
    released.extend(delivered(&scan));
    for a in &scan {
        let Action::Unicast {
            packet:
                Packet::Nak {
                    stream,
                    subject,
                    requester,
                    missing,
                },
            ..
        } = a
        else {
            continue;
        };
        *now += 10;
        let repair = publisher.handle(
            *now,
            Event::Nak {
                stream: stream.clone(),
                subject: subject.clone(),
                requester: *requester,
                missing: missing.clone(),
            },
        );
        let retrans = broadcast_envelopes(&repair);
        released.extend(receive_all(receiver, retrans, now));
    }
    released
}

/// Runs `payloads` through a fresh publisher→receiver engine pair over a
/// lossy, duplicating, reordering channel; repairs until `expect` have
/// been released; returns the released payload bytes in order.
fn run_channel(seed: u64, payloads: &[Vec<u8>], expect: usize) -> Vec<Vec<u8>> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut publisher = Engine::new(BusConfig::default(), 1);
    let mut receiver = Engine::new(BusConfig::default(), 2);
    let mut now: Micros = 0;
    let wire = publish_payloads(&mut publisher, payloads, &mut now);
    let mangled = mangle(&mut rng, wire, 0.15, 0.10);
    let mut got = receive_all(&mut receiver, mangled, &mut now);
    for _ in 0..64 {
        if got.len() >= expect {
            break;
        }
        got.extend(repair_round(&mut publisher, &mut receiver, &mut now));
    }
    assert_eq!(got.len(), expect, "channel failed to repair (seed {seed})");
    got.into_iter().map(|e| e.payload.to_vec()).collect()
}

/// The placement property: publisher-side filtering (gate before
/// sequencing, only accepted payloads ever enter the stream) and
/// subscriber-side filtering (publish everything, evaluate at delivery)
/// release byte-identical payload sequences — under the same adversarial
/// channel, repaired by NAKs on both runs.
#[test]
fn publisher_gate_equals_delivery_filter_under_loss_dup_reorder() {
    let registry = probe_registry();
    let mut suppressed_total = 0usize;
    for seed in 0..30u64 {
        let mut rng = SimRng::seed_from_u64(0x9A7E_0000 + seed);
        let pred = loop {
            let p = gen_predicate(&mut rng, 2);
            if let Ok(c) = CompiledPredicate::compile(&p) {
                break c;
            }
        };
        let n = 20 + rng.gen_range_inclusive(0, 60);
        let values: Vec<Value> = (0..n)
            .map(|_| Value::object(gen_probe(&mut rng, 1)))
            .collect();
        let payloads: Vec<Vec<u8>> = values
            .iter()
            .map(|v| wire::marshal_self_describing(v, &registry).unwrap())
            .collect();

        // Publisher-side: the gate admits only accepted values into the
        // sequenced stream (exactly what the drivers' publish gate does
        // on unanimous rejection).
        let mut evals = 0u64;
        let accepted: Vec<Vec<u8>> = values
            .iter()
            .zip(&payloads)
            .filter(|(v, _)| interest_accepts(v, [Some(&pred)], &mut evals))
            .map(|(_, p)| p.clone())
            .collect();
        suppressed_total += payloads.len() - accepted.len();
        let pub_side = run_channel(seed * 2 + 1, &accepted, accepted.len());

        // Subscriber-side: everything crosses the (differently mangled)
        // channel; the predicate runs at the delivery gate.
        let sub_side: Vec<Vec<u8>> = run_channel(seed * 2 + 2, &payloads, payloads.len())
            .into_iter()
            .filter(|p| {
                let mut reg = TypeRegistry::with_fundamentals();
                let v = wire::unmarshal(p, &mut reg).unwrap();
                pred.eval(&v)
            })
            .collect();

        assert_eq!(
            pub_side, sub_side,
            "seed {seed}: filter placement changed the delivery set"
        );
    }
    assert!(
        suppressed_total > 0,
        "across all seeds some publications must have been suppressed"
    );
}
