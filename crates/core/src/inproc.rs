//! A real-thread transport carrying bus envelopes between OS threads.
//!
//! The simulator measures the protocol in *virtual* time; this module
//! lets the microbenchmark harness measure the real wall-clock cost of
//! the data path — marshalling, reliable-layer sequencing, subject-trie
//! matching, and hand-off — with actual threads and channels.
//!
//! The bus is a second driver of the same sans-I/O
//! [`Engine`](crate::engine) the simulated daemon runs: every publication
//! is sequenced into an [`Envelope`], the
//! resulting broadcast action is looped straight back into the engine's
//! receive path (loopback mode), and only envelopes the reliable layer
//! releases *in order* reach subscriber channels. Duplicates injected by
//! a buggy caller would be dropped, exactly as on the wire. Protocol time
//! is a monotonic counter — the engine never reads a clock.
//!
//! # Examples
//!
//! ```
//! use infobus_core::inproc::InprocBus;
//! use infobus_types::Value;
//!
//! let bus = InprocBus::new();
//! let (_sub, rx) = bus.subscribe("news.>").unwrap();
//! bus.publish("news.equity.gmc", &Value::str("hello")).unwrap();
//! let msg = rx.recv().unwrap();
//! assert_eq!(msg.subject, "news.equity.gmc");
//! assert_eq!(msg.value().unwrap(), Value::str("hello"));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use infobus_subject::{Subject, SubjectFilter, SubjectTrie};
use infobus_types::{wire, TypeRegistry, Value, WireError};

use crate::app::SubscriptionHandle;
use crate::config::BusConfig;
use crate::engine::{Action, BusStats, Engine, Event, Micros, PubSource};
use crate::envelope::{Envelope, EnvelopeKind};
use crate::msg::Packet;
use crate::queue::{sub_queue, SubReceiver, SubSender};
use crate::{BusError, QoS};

/// The receiving half of an in-process subscription: a bounded
/// drop-oldest queue (see [`crate::queue`]) with an `mpsc`-compatible
/// API.
pub type InprocReceiver = SubReceiver<InprocMessage>;

/// A message delivered by the in-process bus: the subject plus the
/// marshalled payload (unmarshal lazily with [`InprocMessage::value`]).
#[derive(Debug, Clone)]
pub struct InprocMessage {
    /// The subject the value was published under.
    pub subject: String,
    /// The marshalled payload (shared among all subscribers).
    pub payload: Arc<Vec<u8>>,
}

impl InprocMessage {
    /// Unmarshals the payload. The bus publishes self-describing
    /// messages, so any type descriptors travel with the data and no
    /// pre-shared registry is needed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the payload is malformed.
    pub fn value(&self) -> Result<Value, WireError> {
        let mut registry = TypeRegistry::with_fundamentals();
        wire::unmarshal(&self.payload, &mut registry)
    }

    /// Unmarshals the payload into an existing registry (types carried by
    /// the message are registered into it).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the payload is malformed or its schema
    /// conflicts with `registry`.
    pub fn value_into(&self, registry: &mut TypeRegistry) -> Result<Value, WireError> {
        wire::unmarshal(&self.payload, registry)
    }
}

/// The single-node host id the in-process engine publishes under.
const INPROC_HOST: u32 = 1;

// Lock discipline: every `.expect("lock poisoned")` below is deliberate.
// A lock only poisons if a holder panicked mid-critical-section, leaving
// engine/trie state possibly inconsistent; propagating the panic to every
// other bus user is safer than limping on with torn state.
struct Inner {
    /// The protocol engine, in loopback mode: broadcasts from our own
    /// host are accepted back into the receive path.
    engine: Mutex<Engine>,
    trie: RwLock<SubjectTrie<SubSender<InprocMessage>>>,
    registry: Mutex<TypeRegistry>,
    /// Monotonic protocol time (the engine is sans-I/O and never reads a
    /// clock; one tick per publication is plenty for a lossless loop).
    now: AtomicU64,
    /// Per-subscriber queue cap (0 = unbounded), from
    /// [`BusConfig::subscriber_queue_cap`].
    queue_cap: usize,
    /// Cumulative drop-oldest evictions across all subscriber queues.
    queue_dropped: Arc<AtomicU64>,
}

/// A thread-safe publish/subscribe bus within one process, driving the
/// same protocol [`Engine`] as the simulated daemon.
///
/// `publish` runs the full data path — self-describing marshalling,
/// reliable-layer sequencing, loopback receive, subject-trie matching,
/// per-subscriber channel hand-off — on the calling thread; subscribers
/// receive on mpsc channels from any other thread.
#[derive(Clone)]
pub struct InprocBus {
    inner: Arc<Inner>,
}

impl InprocBus {
    /// Creates an empty bus with a fundamentals-only type registry.
    pub fn new() -> Self {
        InprocBus::with_config(BusConfig::default())
    }

    /// Creates an empty bus with the given configuration (notably
    /// [`BusConfig::subscriber_queue_cap`], the backpressure bound for
    /// slow subscribers).
    pub fn with_config(cfg: BusConfig) -> Self {
        let queue_cap = cfg.subscriber_queue_cap;
        InprocBus {
            inner: Arc::new(Inner {
                engine: Mutex::new(Engine::new_loopback(cfg, INPROC_HOST)),
                trie: RwLock::new(SubjectTrie::new()),
                registry: Mutex::new(TypeRegistry::with_fundamentals()),
                now: AtomicU64::new(0),
                queue_cap,
                queue_dropped: Arc::new(AtomicU64::new(0)),
            }),
        }
    }

    /// Registers application types so objects can be marshalled.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Marshal`] on conflicting registration.
    pub fn register_type(&self, d: infobus_types::TypeDescriptor) -> Result<(), BusError> {
        self.inner
            .registry
            .lock()
            .expect("lock poisoned")
            .register(d)
            .map_err(|e| BusError::Marshal(e.to_string()))
    }

    /// Subscribes to a filter; matching publications arrive on the
    /// returned channel, and the [`SubscriptionHandle`] cancels the
    /// subscription when passed to [`InprocBus::unsubscribe`].
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for malformed filters.
    pub fn subscribe(
        &self,
        filter: &str,
    ) -> Result<(SubscriptionHandle, InprocReceiver), BusError> {
        let filter = SubjectFilter::new(filter)?;
        let (tx, rx) = sub_queue(self.inner.queue_cap, self.inner.queue_dropped.clone());
        let id = self
            .inner
            .trie
            .write()
            .expect("lock poisoned")
            .insert(&filter, tx);
        Ok((SubscriptionHandle(id), rx))
    }

    /// Removes a subscription (its channel closes once drained).
    pub fn unsubscribe(&self, handle: SubscriptionHandle) {
        self.inner
            .trie
            .write()
            .expect("lock poisoned")
            .remove(handle.0);
    }

    /// Publishes a value; the reliable layer sequences it and delivers to
    /// every matching subscriber in publication order.
    /// Returns the number of subscribers the message was handed to.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] or [`BusError::Marshal`].
    pub fn publish(&self, subject: &str, value: &Value) -> Result<usize, BusError> {
        Subject::new(subject)?;
        let payload = {
            let registry = self.inner.registry.lock().expect("lock poisoned");
            wire::marshal_self_describing(value, &registry)
                .map_err(|e| BusError::Marshal(e.to_string()))?
        };
        let now = self.inner.now.fetch_add(1, Ordering::Relaxed) + 1;
        let mut engine = self.inner.engine.lock().expect("lock poisoned");
        let actions = engine.handle(
            now,
            Event::Publish {
                source: PubSource {
                    app: "inproc".to_owned(),
                    inc: 1,
                },
                subject: subject.to_owned(),
                qos: QoS::Reliable,
                kind: EnvelopeKind::Data,
                corr: 0,
                payload,
            },
        );
        let mut delivered = 0usize;
        self.loopback(&mut engine, now, actions, &mut delivered);
        Ok(delivered)
    }

    /// Performs engine actions in loopback: broadcasts feed straight back
    /// into the engine's receive path, acks loop to the publisher side,
    /// and deliveries fan out to subscriber channels. Timers and the
    /// non-volatile ledger have no substrate here and are dropped — with
    /// a lossless in-memory loop there is never a gap to scan for.
    fn loopback(
        &self,
        engine: &mut Engine,
        now: Micros,
        actions: Vec<Action>,
        delivered: &mut usize,
    ) {
        for action in actions {
            match action {
                Action::Broadcast(Packet::Data { envelopes, .. }) => {
                    for env in envelopes {
                        let next = engine.handle(
                            now,
                            Event::Envelope {
                                env,
                                entitled: true,
                            },
                        );
                        self.loopback(engine, now, next, delivered);
                    }
                }
                Action::Broadcast(_) => {}
                Action::Unicast { packet, .. } => {
                    if let Packet::Ack {
                        stream,
                        subject,
                        seq,
                        from_host,
                    } = packet
                    {
                        let next = engine.handle(
                            now,
                            Event::Ack {
                                stream,
                                subject,
                                seq,
                                from_host,
                            },
                        );
                        self.loopback(engine, now, next, delivered);
                    }
                }
                Action::Deliver(env) => {
                    *delivered += self.fan_out(engine, &env);
                }
                Action::DeliverGd(env) => {
                    if self.fan_out(engine, &env) > 0 {
                        engine.gd_local_done(&env);
                    }
                }
                Action::SetTimer { .. } | Action::Persist { .. } | Action::Unpersist { .. } => {}
            }
        }
    }

    /// Hands an in-order envelope to every matching subscriber channel.
    fn fan_out(&self, engine: &mut Engine, env: &Envelope) -> usize {
        let Ok(subject) = Subject::new(&env.subject) else {
            return 0;
        };
        let payload = Arc::new(env.payload.clone());
        let trie = self.inner.trie.read().expect("lock poisoned");
        let mut count = 0usize;
        for (_, tx) in trie.matches(&subject) {
            let msg = InprocMessage {
                subject: env.subject.clone(),
                payload: payload.clone(),
            };
            if tx.send(msg).is_ok() {
                count += 1;
            }
        }
        engine.stats.delivered += count as u64;
        engine.stats.delivered_bytes += (env.payload.len() * count) as u64;
        count
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.trie.read().expect("lock poisoned").len()
    }

    /// A snapshot of the engine's protocol counters, with the live
    /// backpressure gauges (queued backlog and drop-oldest evictions)
    /// folded in.
    pub fn stats(&self) -> BusStats {
        let mut stats = self
            .inner
            .engine
            .lock()
            .expect("lock poisoned")
            .stats
            .clone();
        let trie = self.inner.trie.read().expect("lock poisoned");
        let mut depth = 0u64;
        trie.for_each(|_, _, tx| depth += tx.queued() as u64);
        stats.sub_queue_depth = depth;
        stats.sub_queue_dropped = self.inner.queue_dropped.load(Ordering::Relaxed);
        stats
    }
}

impl Default for InprocBus {
    fn default() -> Self {
        InprocBus::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn publish_subscribe_round_trip() {
        let bus = InprocBus::new();
        let (_sub, rx) = bus.subscribe("a.>").unwrap();
        let n = bus.publish("a.b", &Value::I64(7)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(rx.recv().unwrap().value().unwrap(), Value::I64(7));
    }

    #[test]
    fn no_subscriber_no_delivery() {
        let bus = InprocBus::new();
        let (_sub, _rx) = bus.subscribe("a.b").unwrap();
        assert_eq!(bus.publish("a.c", &Value::Nil).unwrap(), 0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let bus = InprocBus::new();
        let (sub, rx) = bus.subscribe("x.*").unwrap();
        bus.publish("x.1", &Value::Bool(true)).unwrap();
        bus.unsubscribe(sub);
        assert_eq!(bus.publish("x.1", &Value::Bool(true)).unwrap(), 0);
        assert_eq!(rx.try_iter().count(), 1);
        assert_eq!(bus.subscription_count(), 0);
    }

    #[test]
    fn cross_thread_delivery() {
        let bus = InprocBus::new();
        let (_sub, rx) = bus.subscribe("t.>").unwrap();
        let publisher = {
            let bus = bus.clone();
            thread::spawn(move || {
                for i in 0..100i64 {
                    bus.publish("t.k", &Value::I64(i)).unwrap();
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 100 {
            got.push(
                rx.recv_timeout(Duration::from_secs(5))
                    .unwrap()
                    .value()
                    .unwrap(),
            );
        }
        publisher.join().unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(got[99], Value::I64(99));
    }

    #[test]
    fn objects_with_registered_types() {
        use infobus_types::{DataObject, TypeDescriptor, ValueType};
        let bus = InprocBus::new();
        bus.register_type(
            TypeDescriptor::builder("Quote")
                .attribute("px", ValueType::F64)
                .build(),
        )
        .unwrap();
        let (_sub, rx) = bus.subscribe("quotes.gmc").unwrap();
        let obj = DataObject::new("Quote").with("px", 12.5f64);
        bus.publish("quotes.gmc", &Value::object(obj.clone()))
            .unwrap();
        let got = rx.recv().unwrap().value().unwrap();
        assert_eq!(got.as_object().unwrap(), &obj);
    }

    #[test]
    fn stalled_subscriber_memory_is_bounded() {
        // A subscriber that never drains must not grow memory without
        // bound: with a queue cap, the oldest messages are evicted and
        // counted, and the newest `cap` messages are retained.
        let cap = 64usize;
        let bus = InprocBus::with_config(BusConfig::default().with_subscriber_queue_cap(cap));
        let (_stalled, stalled_rx) = bus.subscribe("load.>").unwrap();
        let total = 10_000i64;
        for i in 0..total {
            bus.publish("load.k", &Value::I64(i)).unwrap();
        }
        let stats = bus.stats();
        assert_eq!(stats.sub_queue_depth, cap as u64);
        assert_eq!(stats.sub_queue_dropped, (total as u64) - cap as u64);
        // The retained backlog is exactly the newest `cap` messages.
        let got: Vec<i64> = stalled_rx
            .try_iter()
            .map(|m| m.value().unwrap().as_i64().unwrap())
            .collect();
        let expect: Vec<i64> = (total - cap as i64..total).collect();
        assert_eq!(got, expect);
        // Draining brings the gauge back to zero.
        assert_eq!(bus.stats().sub_queue_depth, 0);
    }

    #[test]
    fn engine_sequences_publications() {
        let bus = InprocBus::new();
        let (_sub, rx) = bus.subscribe("s.>").unwrap();
        for i in 0..10i64 {
            bus.publish("s.k", &Value::I64(i)).unwrap();
        }
        let got: Vec<Value> = rx.try_iter().map(|m| m.value().unwrap()).collect();
        assert_eq!(got, (0..10).map(Value::I64).collect::<Vec<_>>());
        let stats = bus.stats();
        assert_eq!(stats.published, 10);
        assert_eq!(stats.delivered, 10);
        assert_eq!(stats.dups_dropped, 0);
    }
}
