//! A real-thread transport carrying bus envelopes between OS threads.
//!
//! The simulator measures the protocol in *virtual* time; this module
//! lets the microbenchmark harness measure the real wall-clock cost of
//! the data path — marshalling, reliable-layer sequencing, subject-trie
//! matching, and hand-off — with actual threads and channels.
//!
//! The bus is a second driver of the same sans-I/O
//! [`Engine`](crate::engine) the simulated daemon runs: every publication
//! is sequenced into an [`Envelope`], the
//! resulting broadcast action is looped straight back into the engine's
//! receive path (loopback mode), and only envelopes the reliable layer
//! releases *in order* reach subscriber channels. Duplicates injected by
//! a buggy caller would be dropped, exactly as on the wire. Protocol time
//! is a monotonic counter — the engine never reads a clock.
//!
//! # Hot-path memory discipline
//!
//! A steady-state reliable publish allocates **nothing**:
//!
//! * the subject is interned once at the API boundary
//!   ([`SubjectTable`]); every envelope, map key, and [`Delivery`]
//!   aliases the same `Arc<str>`;
//! * the payload is marshalled into a buffer recycled from a
//!   [`BufPool`] and frozen into a shared [`Bytes`] slice — subscriber
//!   fan-out clones reference counts, never bytes;
//! * engine actions append into a per-shard scratch vector whose
//!   capacity persists across publishes;
//! * fan-out targets come from a subject-id-keyed cache (rebuilt lazily
//!   when the subscription set changes), so the trie walk and its
//!   temporary vectors are off the steady-state path entirely.
//!
//! By default `publish` runs that whole chain synchronously on the
//! calling thread. [`InprocBus::with_workers`] instead runs one worker
//! thread per engine shard: publishers marshal and hand off to the
//! owning shard's worker, which does the sequencing and delivery — the
//! in-process analogue of the paper's application-to-daemon hand-off
//! (see the constructor's docs for the contract).
//!
//! # Examples
//!
//! ```
//! use infobus_core::inproc::InprocBus;
//! use infobus_core::QoS;
//! use infobus_types::Value;
//!
//! let bus = InprocBus::new();
//! let (_sub, rx) = bus.subscribe("news.>").unwrap();
//! bus.publish("news.equity.gmc", &Value::str("hello"), QoS::Reliable)
//!     .unwrap();
//! let msg = rx.recv().unwrap();
//! assert_eq!(msg.subject, "news.equity.gmc");
//! assert_eq!(msg.value().unwrap(), Value::str("hello"));
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock, Weak};

use infobus_router::SubjectMap;
use infobus_subject::{InternedSubject, SubjectFilter, SubjectTable, SubjectTrie, SubscriptionId};
use infobus_types::{wire, TypeRegistry, Value};

use crate::app::SubscriptionHandle;
use crate::buf::{BufPool, Bytes};
use crate::bus::{Bus, BusReceiver, Delivery};
use crate::config::BusConfig;
use crate::engine::filter::{
    self, approx_wire_bytes, CompiledPredicate, FilterCounters, Predicate,
};
use crate::engine::{
    shard_of_subject, Action, BusStats, Engine, Event, Micros, PubSource, ShardedEngine,
    ShardedStats,
};
use crate::envelope::{Envelope, EnvelopeKind};
use crate::msg::Packet;
use crate::nvstore::NvStore;
use crate::queue::{sub_queue, SubReceiver, SubSender};
use crate::{BusError, QoS};

/// The receiving half of an in-process subscription: a bounded
/// drop-oldest queue (see [`crate::queue`]) with an `mpsc`-compatible
/// API. Same type as [`BusReceiver`] — the unified [`Bus`] receiver.
pub type InprocReceiver = SubReceiver<InprocMessage>;

/// A message delivered by the in-process bus — the driver-independent
/// [`Delivery`] (unmarshal lazily with [`Delivery::value`]). The name
/// survives from before the unified [`Bus`] surface.
pub type InprocMessage = Delivery;

/// The single-node host id the in-process engine publishes under.
const INPROC_HOST: u32 = 1;

/// Work handed from a publishing thread to a shard's worker thread
/// (worker mode only; see [`InprocBus::with_workers`]). Both fields are
/// shared handles — the hand-off copies no subject text and no payload
/// bytes.
enum Job {
    /// An interned-subject, already-marshalled publication.
    Publish {
        subject: InternedSubject,
        payload: Bytes,
        qos: QoS,
    },
    /// A drain marker: the worker acks once every job queued before it
    /// has been fully processed (the hand-off channel is FIFO).
    Flush(mpsc::Sender<()>),
}

/// One engine shard plus its reusable action scratch vector. The scratch
/// lives under the same mutex as the engine, so the fast path drains and
/// refills it without ever releasing its capacity.
struct ShardSlot {
    engine: Engine,
    scratch: Vec<Action>,
}

/// One subscription as stored in the trie: the subscriber's queue
/// sender plus its compiled content predicate, if any — the per-entry
/// delivery gate.
#[derive(Clone)]
struct SubEntry {
    tx: SubSender<InprocMessage>,
    pred: Option<Arc<CompiledPredicate>>,
}

/// The fan-out cache: dense subject id → the subscription entries
/// matching that subject, valid for one subscription generation. Keeping
/// entries (not trie positions) means a steady-state delivery is a
/// read-lock, a map probe, and a refcount bump — the trie and its
/// temporary vectors are only walked when the subscription set changed.
struct MatchCache {
    /// The subscription generation this map was built against.
    gen: u64,
    map: HashMap<u32, Arc<[SubEntry]>>,
}

// Lock discipline: every `.expect("lock poisoned")` below is deliberate.
// A lock only poisons if a holder panicked mid-critical-section, leaving
// engine/trie state possibly inconsistent; propagating the panic to every
// other bus user is safer than limping on with torn state.
struct Inner {
    /// The protocol engine, in loopback mode: broadcasts from our own
    /// host are accepted back into the receive path. A [`ShardedEngine`]
    /// flattened so each shard sits behind its *own* mutex: publishers
    /// on subjects owned by different shards take different locks and
    /// stop contending on one state machine ([`BusConfig::shards`]
    /// shards; one — the unsharded bus — by default).
    shards: Vec<Mutex<ShardSlot>>,
    trie: RwLock<SubjectTrie<SubEntry>>,
    registry: Mutex<TypeRegistry>,
    /// Monotonic protocol time (the engine is sans-I/O and never reads a
    /// clock; one tick per publication is plenty for a lossless loop).
    now: AtomicU64,
    /// Guaranteed-delivery non-volatile store: in-memory by default, a
    /// per-shard write-ahead ledger when [`BusConfig::durable_dir`] is
    /// set (replayed into the shard engines at construction).
    nv: Mutex<NvStore>,
    /// Per-subscriber queue cap (0 = unbounded), from
    /// [`BusConfig::subscriber_queue_cap`].
    queue_cap: usize,
    /// Cumulative drop-oldest evictions across all subscriber queues.
    queue_dropped: Arc<AtomicU64>,
    /// The daemon-wide subject intern table (shared with every shard
    /// engine): subjects are interned once at the publish boundary.
    table: SubjectTable,
    /// Recycled marshal buffers — see [`BufPool`].
    pool: BufPool,
    /// The one publisher identity of this bus, cached so a publish
    /// clones an `Arc<str>` instead of allocating a fresh string.
    source: PubSource,
    /// Bumped by every subscribe/unsubscribe; invalidates `match_cache`.
    sub_gen: AtomicU64,
    match_cache: RwLock<MatchCache>,
    /// Content-filter and semantic-mapping counters, folded into merged
    /// stats snapshots (the gates run outside the shard locks).
    filt: FilterCounters,
    /// The semantic subject map from [`BusConfig::subject_map`]; `None`
    /// when unset or empty (the common case — zero overhead).
    semantic: Option<Arc<SubjectMap>>,
    /// Extra trie insertions a semantic filter expansion created for a
    /// subscription, keyed by the primary id so unsubscribe removes the
    /// whole family.
    expansions: Mutex<HashMap<SubscriptionId, Vec<SubscriptionId>>>,
    /// Worker mode: one hand-off channel per shard, indexed by shard id.
    /// `None` in the default synchronous mode. Workers hold only a
    /// [`Weak`] back-reference, so dropping the last bus handle drops
    /// these senders, which disconnects the receivers and lets every
    /// worker thread exit.
    workers: Option<Vec<mpsc::Sender<Job>>>,
}

impl Inner {
    fn new(cfg: BusConfig, workers: Option<Vec<mpsc::Sender<Job>>>) -> (Self, usize) {
        let queue_cap = cfg.subscriber_queue_cap;
        let pool_slots = cfg.marshal_pool_slots();
        let semantic = cfg.semantic_map().cloned();
        let (shards, nv, table) = build_shards(cfg);
        let n = shards.len();
        (
            Inner {
                shards,
                nv: Mutex::new(nv),
                trie: RwLock::new(SubjectTrie::new()),
                registry: Mutex::new(TypeRegistry::with_fundamentals()),
                now: AtomicU64::new(0),
                queue_cap,
                queue_dropped: Arc::new(AtomicU64::new(0)),
                table,
                pool: BufPool::with_slots(pool_slots),
                source: PubSource {
                    app: "inproc".into(),
                    inc: 1,
                    route: None,
                },
                sub_gen: AtomicU64::new(0),
                match_cache: RwLock::new(MatchCache {
                    gen: 0,
                    map: HashMap::new(),
                }),
                filt: FilterCounters::default(),
                semantic,
                expansions: Mutex::new(HashMap::new()),
                workers,
            },
            n,
        )
    }
}

/// A thread-safe publish/subscribe bus within one process, driving the
/// same protocol [`Engine`] as the simulated daemon.
///
/// `publish` runs the full data path — self-describing marshalling,
/// reliable-layer sequencing, loopback receive, subject-trie matching,
/// per-subscriber channel hand-off — on the calling thread; subscribers
/// receive on mpsc channels from any other thread.
#[derive(Clone)]
pub struct InprocBus {
    inner: Arc<Inner>,
}

impl InprocBus {
    /// Creates an empty bus with a fundamentals-only type registry.
    pub fn new() -> Self {
        InprocBus::with_config(BusConfig::default())
    }

    /// Creates an empty bus with the given configuration (notably
    /// [`BusConfig::subscriber_queue_cap`], the backpressure bound for
    /// slow subscribers, and [`BusConfig::durable_dir`], which puts the
    /// guaranteed-delivery ledger on disk and replays it here).
    ///
    /// # Panics
    ///
    /// Panics if a durable ledger directory cannot be opened
    /// (fail-stop; see [`NvStore`]).
    pub fn with_config(cfg: BusConfig) -> Self {
        let (inner, _) = Inner::new(cfg, None);
        InprocBus {
            inner: Arc::new(inner),
        }
    }

    /// Creates a bus that runs one worker thread per engine shard
    /// (worker mode). [`InprocBus::publish`] then marshals on the
    /// calling thread, hands the payload to the owning shard's worker
    /// over a FIFO channel, and returns without waiting for delivery —
    /// the sequencing → loopback → trie-match → subscriber hand-off
    /// chain runs on the worker. Publishers on different subjects
    /// therefore never contend on an engine lock, and a publisher is
    /// never blocked behind another subject's delivery work; this is
    /// the in-process analogue of the paper's application-to-daemon
    /// hand-off.
    ///
    /// Ordering is unchanged: one worker per shard and a FIFO hand-off
    /// channel preserve per-subject publication order end to end.
    ///
    /// Caveats of the asynchronous contract:
    /// - the hand-off queue is unbounded — publishers that outrun a
    ///   shard's worker trade memory for publisher-side latency;
    /// - the return value of `publish` counts subscribers matching *at
    ///   hand-off time*, not at delivery;
    /// - publications still queued when the last bus handle drops are
    ///   discarded (the workers exit as their channels disconnect).
    ///   Call [`InprocBus::drain`] first for a clean shutdown.
    ///
    /// # Panics
    ///
    /// Panics if a durable ledger directory cannot be opened
    /// (fail-stop; see [`NvStore`]).
    pub fn with_workers(cfg: BusConfig) -> Self {
        let inner = Arc::new_cyclic(|weak: &Weak<Inner>| {
            let (inner, shard_count) = Inner::new(cfg, None);
            let txs = (0..shard_count)
                .map(|shard| {
                    let (tx, rx) = mpsc::channel::<Job>();
                    let weak = weak.clone();
                    std::thread::Builder::new()
                        .name(format!("inproc-shard-{shard}"))
                        .spawn(move || shard_worker(shard, &weak, &rx))
                        .expect("spawn shard worker");
                    tx
                })
                .collect();
            Inner {
                workers: Some(txs),
                ..inner
            }
        });
        InprocBus { inner }
    }

    /// Registers application types so objects can be marshalled.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Marshal`] on conflicting registration.
    pub fn register_type(&self, d: infobus_types::TypeDescriptor) -> Result<(), BusError> {
        self.inner
            .registry
            .lock()
            .expect("lock poisoned")
            .register(d)
            .map_err(|e| BusError::Marshal(e.to_string()))
    }

    /// Subscribes to a filter; matching publications arrive on the
    /// returned channel, and the [`SubscriptionHandle`] cancels the
    /// subscription when passed to [`InprocBus::unsubscribe`].
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for malformed filters.
    pub fn subscribe(
        &self,
        filter: &str,
    ) -> Result<(SubscriptionHandle, InprocReceiver), BusError> {
        self.subscribe_entry(filter, None)
    }

    /// Subscribes to a filter with a content predicate: only matching
    /// publications whose payload satisfies `pred` reach the returned
    /// channel. The predicate is compiled once here and evaluated at the
    /// delivery gate; when *every* subscription matching a publication
    /// carries a predicate and all reject, the publish gate suppresses
    /// the publication before sequencing ([`BusStats::filt_pub_suppressed`]).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for malformed filters or
    /// [`BusError::Filter`] if the predicate exceeds the compile bounds.
    pub fn subscribe_filtered(
        &self,
        filter: &str,
        pred: &Predicate,
    ) -> Result<(SubscriptionHandle, InprocReceiver), BusError> {
        let compiled = Arc::new(CompiledPredicate::compile(pred)?);
        self.subscribe_entry(filter, Some(compiled))
    }

    /// The shared subscribe tail: applies the semantic map's filter
    /// expansion (synonym aliases and taxonomy broadenings subscribe
    /// alongside the canonical form), inserts one trie entry per
    /// expanded filter — all sharing the queue sender and the predicate —
    /// and records the extra ids so unsubscribe removes the family.
    fn subscribe_entry(
        &self,
        filter: &str,
        pred: Option<Arc<CompiledPredicate>>,
    ) -> Result<(SubscriptionHandle, InprocReceiver), BusError> {
        let expanded = match &self.inner.semantic {
            Some(map) => map.expand_filter(filter),
            None => Vec::new(),
        };
        let filters: Vec<SubjectFilter> = if expanded.is_empty() {
            vec![SubjectFilter::new(filter)?]
        } else {
            expanded
                .iter()
                .map(|f| SubjectFilter::new(f))
                .collect::<Result<_, _>>()?
        };
        if filters.len() > 1 {
            use std::sync::atomic::Ordering::Relaxed;
            self.inner
                .filt
                .sem_expanded
                .fetch_add((filters.len() - 1) as u64, Relaxed);
        }
        let (tx, rx) = sub_queue(self.inner.queue_cap, self.inner.queue_dropped.clone());
        let (primary, extra) = {
            let mut trie = self.inner.trie.write().expect("lock poisoned");
            let mut ids = filters.iter().map(|f| {
                trie.insert(
                    f,
                    SubEntry {
                        tx: tx.clone(),
                        pred: pred.clone(),
                    },
                )
            });
            let primary = ids.next().expect("at least one filter");
            (primary, ids.collect::<Vec<_>>())
        };
        if !extra.is_empty() {
            self.inner
                .expansions
                .lock()
                .expect("lock poisoned")
                .insert(primary, extra);
        }
        self.bump_subscriptions();
        Ok((SubscriptionHandle(primary), rx))
    }

    /// Removes a subscription (its channel closes once drained),
    /// including any trie entries the semantic expansion added for it.
    pub fn unsubscribe(&self, handle: SubscriptionHandle) {
        let extra = self
            .inner
            .expansions
            .lock()
            .expect("lock poisoned")
            .remove(&handle.0);
        {
            let mut trie = self.inner.trie.write().expect("lock poisoned");
            trie.remove(handle.0);
            for id in extra.into_iter().flatten() {
                trie.remove(id);
            }
        }
        self.bump_subscriptions();
    }

    /// Advances the subscription generation and eagerly clears the
    /// fan-out cache, dropping its sender clones — an unsubscribed
    /// queue must disconnect now, not at the next cache rebuild.
    fn bump_subscriptions(&self) {
        let mut cache = self.inner.match_cache.write().expect("lock poisoned");
        self.inner.sub_gen.fetch_add(1, Ordering::Release);
        cache.map.clear();
    }

    /// The subscription entries matching `subject`, served from the
    /// fan-out cache on the steady state (read-lock, id probe, refcount
    /// bump — no allocation) and rebuilt from the trie when the
    /// subscription set changed.
    fn matching_entries(&self, subject: &InternedSubject) -> Arc<[SubEntry]> {
        let gen = self.inner.sub_gen.load(Ordering::Acquire);
        {
            let cache = self.inner.match_cache.read().expect("lock poisoned");
            if cache.gen == gen {
                if let Some(entries) = cache.map.get(&subject.id().0) {
                    return Arc::clone(entries);
                }
            }
        }
        // Miss: walk the trie and memoize under the subject's dense id.
        let entries: Arc<[SubEntry]> = {
            let trie = self.inner.trie.read().expect("lock poisoned");
            trie.matches(subject)
                .map(|(_, e)| e.clone())
                .collect::<Vec<_>>()
                .into()
        };
        let mut cache = self.inner.match_cache.write().expect("lock poisoned");
        if cache.gen != gen {
            cache.map.clear();
            cache.gen = gen;
        }
        // Only memoize if no subscribe/unsubscribe raced the trie walk;
        // a racing bump clears the map after we release the write lock,
        // so a stale entry can never outlive the generation it matched.
        if self.inner.sub_gen.load(Ordering::Acquire) == gen {
            cache.map.insert(subject.id().0, Arc::clone(&entries));
        }
        entries
    }

    /// Publishes a value with the requested delivery guarantee; the
    /// reliable layer sequences it and delivers to every matching
    /// subscriber in publication order.
    /// Returns the number of subscribers the message was handed to.
    ///
    /// [`QoS::Guaranteed`] runs the full guaranteed-delivery ledger —
    /// persist-before-send, local-delivery acknowledgment, completion —
    /// with the retry rounds executed synchronously after the publish
    /// (the in-process loop has no timer substrate). A guaranteed
    /// publication nobody subscribes to stays pending
    /// ([`BusStats::gd_pending`]) until a later guaranteed publish on
    /// the same shard finds a subscriber to redeliver to, exactly the
    /// at-least-once contract.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] or [`BusError::Marshal`].
    pub fn publish(&self, subject: &str, value: &Value, qos: QoS) -> Result<usize, BusError> {
        let subject = self.intern_canonical(subject)?;
        // Publish gate: when every matching subscription carries a
        // rejecting predicate, the publication is suppressed *here* —
        // before marshalling, sequencing, and fan-out ever run.
        let entries = self.matching_entries(&subject);
        if entries.iter().any(|e| e.pred.is_some()) {
            let mut evals = 0u64;
            let sent = filter::interest_accepts(
                value,
                entries.iter().map(|e| e.pred.as_deref()),
                &mut evals,
            );
            self.inner
                .filt
                .record_publish_gate(evals, sent, approx_wire_bytes(value));
            if !sent {
                return Ok(0);
            }
        }
        let payload = {
            let mut buf = self.inner.pool.take();
            let registry = self.inner.registry.lock().expect("lock poisoned");
            wire::marshal_self_describing_into(buf.vec_mut(), value, &registry)
                .map_err(|e| BusError::Marshal(e.to_string()))?;
            buf.freeze()
        };
        self.dispatch(&subject, payload, qos)
    }

    /// Publishes bytes already marshalled with
    /// [`wire::marshal_self_describing`] (or [`wire::marshal_value`]),
    /// skipping the registry and the marshaller — the zero-copy entry
    /// point for callers that pre-marshal or forward payloads verbatim.
    /// The bytes are copied once into a pooled buffer; everything
    /// downstream shares that buffer.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for an invalid subject.
    pub fn publish_marshaled(
        &self,
        subject: &str,
        payload: &[u8],
        qos: QoS,
    ) -> Result<usize, BusError> {
        let subject = self.intern_canonical(subject)?;
        // Publish gate for pre-marshalled bytes: the value only exists
        // on the wire, so unmarshal lazily and only when the gate could
        // actually suppress (some interest, all of it predicated). An
        // unmarshalling failure sends — the conservative direction.
        let entries = self.matching_entries(&subject);
        if !entries.is_empty() && entries.iter().all(|e| e.pred.is_some()) {
            let mut registry = TypeRegistry::with_fundamentals();
            if let Ok(value) = wire::unmarshal(payload, &mut registry) {
                let mut evals = 0u64;
                let sent = filter::interest_accepts(
                    &value,
                    entries.iter().map(|e| e.pred.as_deref()),
                    &mut evals,
                );
                self.inner
                    .filt
                    .record_publish_gate(evals, sent, payload.len());
                if !sent {
                    return Ok(0);
                }
            }
        }
        let mut buf = self.inner.pool.take();
        buf.vec_mut().extend_from_slice(payload);
        self.dispatch(&subject, buf.freeze(), qos)
    }

    /// Interns a publish subject, first rewriting it to canonical form
    /// when a [`SubjectMap`] is configured (synonym subjects collapse
    /// before the trie or the wire ever see them).
    fn intern_canonical(&self, subject: &str) -> Result<InternedSubject, BusError> {
        if let Some(map) = &self.inner.semantic {
            if let Some(canonical) = map.canonicalize(subject) {
                use std::sync::atomic::Ordering::Relaxed;
                self.inner.filt.sem_canonicalized.fetch_add(1, Relaxed);
                return Ok(self.inner.table.intern(&canonical)?);
            }
        }
        Ok(self.inner.table.intern(subject)?)
    }

    /// Routes an interned, marshalled publication to the owning shard —
    /// synchronously in the default mode, over the hand-off channel in
    /// worker mode.
    fn dispatch(
        &self,
        subject: &InternedSubject,
        payload: Bytes,
        qos: QoS,
    ) -> Result<usize, BusError> {
        let shard = shard_of_subject(subject.as_str(), self.inner.shards.len());
        if let Some(workers) = &self.inner.workers {
            // Worker mode: count the matching subscribers now (the
            // caller's view at hand-off time), then let the owning
            // shard's worker run the protocol and delivery off the
            // caller's thread.
            let count = self.matching_entries(subject).len();
            workers[shard]
                .send(Job::Publish {
                    subject: subject.clone(),
                    payload,
                    qos,
                })
                .expect("shard worker exited");
            return Ok(count);
        }
        Ok(self.publish_on_shard(shard, subject, payload, qos))
    }

    /// The synchronous tail of a publish: sequence the marshalled
    /// payload through the owning shard's engine and perform the
    /// resulting actions until delivery. Runs on the calling thread in
    /// the default mode and on the shard's worker thread in worker mode.
    /// Returns the number of subscribers the message was handed to.
    fn publish_on_shard(
        &self,
        shard: usize,
        subject: &InternedSubject,
        payload: Bytes,
        qos: QoS,
    ) -> usize {
        let now = self.inner.now.fetch_add(1, Ordering::Relaxed) + 1;
        // Only the owning shard's lock is taken: the entire publish →
        // loopback → deliver chain for a subject happens inside one
        // shard, so publishers on other shards proceed in parallel.
        let mut slot = self.inner.shards[shard].lock().expect("lock poisoned");
        let slot = &mut *slot;
        let mut delivered = 0usize;
        if slot.engine.config().batch_enabled {
            // Batched: the classic publish → enqueue → loopback chain,
            // so batch accounting and flush behavior stay exact.
            let actions = slot.engine.handle(
                now,
                Event::Publish {
                    source: self.inner.source.clone(),
                    subject: subject.clone(),
                    qos,
                    kind: EnvelopeKind::Data,
                    corr: 0,
                    payload,
                },
            );
            self.loopback(&mut slot.engine, shard, now, actions, &mut delivered);
        } else {
            // Fast path: sequence, then feed the envelope straight back
            // into the receive path — the same engine transitions the
            // broadcast wrapper would produce, minus the packet and its
            // single-envelope vector. The scratch's capacity persists
            // across publishes, so the steady state allocates nothing.
            let mut scratch = std::mem::take(&mut slot.scratch);
            let env = slot.engine.publish_into(
                now,
                &self.inner.source,
                subject,
                qos,
                EnvelopeKind::Data,
                0,
                payload,
                &mut scratch,
            );
            slot.engine.handle_into(
                now,
                Event::Envelope {
                    env,
                    entitled: true,
                },
                &mut scratch,
            );
            for action in scratch.drain(..) {
                self.perform(&mut slot.engine, shard, now, action, &mut delivered);
            }
            slot.scratch = scratch;
        }
        if qos == QoS::Guaranteed {
            self.gd_rounds(&mut slot.engine, shard, now, &mut delivered);
        }
        delivered
    }

    /// Runs the guaranteed-delivery ledger's retry rounds synchronously
    /// (the in-process loop has no timer substrate to fire
    /// [`TimerKind::GdRetry`](crate::engine::TimerKind)). Two rounds
    /// suffice when someone took delivery: the first gives a
    /// just-attached subscriber its redelivery window, the second
    /// completes the entry. Single host, so the interest snapshot maps
    /// every pending subject to "no remote hosts".
    fn gd_rounds(&self, engine: &mut Engine, shard: usize, now: Micros, delivered: &mut usize) {
        for _ in 0..2 {
            let interest: HashMap<String, Vec<u32>> = engine
                .gd_subjects()
                .into_iter()
                .map(|s| (s, Vec::new()))
                .collect();
            if interest.is_empty() {
                return;
            }
            let actions = engine.handle(now, Event::GdRetry { interest });
            self.loopback(engine, shard, now, actions, delivered);
        }
    }

    /// Blocks until every publication handed off before this call has
    /// been fully processed (sequenced and delivered to subscriber
    /// queues). A no-op in the default synchronous mode, where
    /// [`InprocBus::publish`] already returns post-delivery. In worker
    /// mode this is the barrier between "handed to the bus" and
    /// "visible to subscribers" — call it before reading
    /// [`InprocBus::stats`] or shutting down.
    pub fn drain(&self) {
        let Some(workers) = &self.inner.workers else {
            return;
        };
        let (ack_tx, ack_rx) = mpsc::channel();
        for tx in workers {
            tx.send(Job::Flush(ack_tx.clone()))
                .expect("shard worker exited");
        }
        drop(ack_tx);
        // One ack per worker; the hand-off channels are FIFO, so each
        // ack proves that shard's earlier jobs are done.
        for _ in workers {
            ack_rx.recv().expect("shard worker exited");
        }
    }

    /// Performs engine actions in loopback (the cold-path form taking an
    /// owned action vector; the fast path drains the shard's scratch
    /// through [`InprocBus::perform`] directly).
    fn loopback(
        &self,
        engine: &mut Engine,
        shard: usize,
        now: Micros,
        actions: Vec<Action>,
        delivered: &mut usize,
    ) {
        for action in actions {
            self.perform(engine, shard, now, action, delivered);
        }
    }

    /// Performs one engine action: broadcasts feed straight back into
    /// the engine's receive path and deliveries fan out to subscriber
    /// channels; local delivery doubles as the guaranteed
    /// acknowledgment. `Persist`/`Unpersist` land on the shared
    /// [`NvStore`] on behalf of `shard` — the write-ahead ledger when
    /// the bus is durable. Timers have no substrate here and are
    /// dropped — with a lossless in-memory loop there is never a gap to
    /// scan for, and guaranteed retry rounds run synchronously after
    /// each guaranteed publish instead.
    fn perform(
        &self,
        engine: &mut Engine,
        shard: usize,
        now: Micros,
        action: Action,
        delivered: &mut usize,
    ) {
        match action {
            Action::Broadcast(Packet::Data { envelopes, .. }) => {
                for env in envelopes {
                    let next = engine.handle(
                        now,
                        Event::Envelope {
                            env,
                            entitled: true,
                        },
                    );
                    self.loopback(engine, shard, now, next, delivered);
                }
            }
            Action::Broadcast(_) => {}
            // Unicasts here can only be acks for our own guaranteed
            // envelopes, looped back from the receive path. A real
            // daemon never hears its own broadcast, so feeding the
            // self-ack back would complete ledger entries nobody
            // received; on a single host, local delivery (below) is
            // the only acknowledgment that counts.
            Action::Unicast { .. } => {}
            Action::Deliver(env) => {
                let (count, suppressed) = self.fan_out(engine, &env);
                // The loopback receive path delivers guaranteed
                // envelopes as ordinary in-order deliveries; report
                // them into the ledger like the daemon driver does at
                // publish time. A predicate rejection counts as
                // consumption — the subscriber examined and declined
                // the message — so filtered guaranteed streams
                // complete instead of retrying forever.
                if env.qos == QoS::Guaranteed && count + suppressed > 0 {
                    engine.gd_local_done(&env);
                }
                *delivered += count;
            }
            Action::DeliverGd(env) => {
                let (count, suppressed) = self.fan_out(engine, &env);
                if count + suppressed > 0 {
                    engine.gd_local_done(&env);
                }
            }
            Action::Persist { key, bytes } => {
                self.inner
                    .nv
                    .lock()
                    .expect("lock poisoned")
                    .persist(shard, &key, &bytes);
            }
            Action::Unpersist { key } => {
                self.inner
                    .nv
                    .lock()
                    .expect("lock poisoned")
                    .unpersist(shard, &key);
            }
            Action::SetTimer { .. } => {}
        }
    }

    /// Hands an in-order envelope to every matching subscriber channel
    /// whose predicate (if any) accepts the payload — the delivery gate.
    /// Everything cloned here is a shared handle: the interned subject,
    /// the payload slice, the cached entry list. The payload is
    /// unmarshalled at most once, and only when some matching entry
    /// actually carries a predicate. Returns `(delivered, suppressed)`.
    fn fan_out(&self, engine: &mut Engine, env: &Envelope) -> (usize, usize) {
        use std::sync::atomic::Ordering::Relaxed;
        let entries = self.matching_entries(&env.subject);
        let mut count = 0usize;
        let mut suppressed = 0usize;
        // Lazily unmarshalled payload: `None` until a predicate needs
        // it; `Some(None)` if unmarshalling failed (then every
        // predicate passes — delivering a payload the subscriber can
        // diagnose beats silently eating it).
        let mut value: Option<Option<Value>> = None;
        for entry in entries.iter() {
            if let Some(pred) = &entry.pred {
                let v = value.get_or_insert_with(|| {
                    let mut registry = TypeRegistry::with_fundamentals();
                    wire::unmarshal(&env.payload, &mut registry).ok()
                });
                if let Some(v) = v {
                    self.inner.filt.evals.fetch_add(1, Relaxed);
                    if !pred.eval(v) {
                        suppressed += 1;
                        continue;
                    }
                }
            }
            let msg = Delivery {
                subject: env.subject.clone(),
                payload: env.payload.clone(),
                redelivery: env.redelivery,
                qos: env.qos,
                route: env.route,
            };
            if entry.tx.send(msg).is_ok() {
                count += 1;
            }
        }
        if suppressed > 0 {
            self.inner
                .filt
                .delivery_suppressed
                .fetch_add(suppressed as u64, Relaxed);
        }
        engine.stats.delivered += count as u64;
        engine.stats.delivered_bytes += (env.payload.len() * count) as u64;
        (count, suppressed)
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.trie.read().expect("lock poisoned").len()
    }

    /// Number of engine shards behind this bus (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// A snapshot of the engine's protocol counters merged across
    /// shards, with the live backpressure gauges (queued backlog and
    /// drop-oldest evictions) folded in.
    pub fn stats(&self) -> BusStats {
        self.sharded_stats().merged
    }

    /// The merged counters plus the per-shard breakdown. The queue
    /// gauges, the intern-table size, and the buffer-pool counters live
    /// on the bus, not a shard, and are folded into the merged snapshot
    /// only.
    pub fn sharded_stats(&self) -> ShardedStats {
        let per_shard: Vec<BusStats> = self
            .inner
            .shards
            .iter()
            .map(|m| m.lock().expect("lock poisoned").engine.stats.clone())
            .collect();
        let mut merged = BusStats::merged(per_shard.iter());
        let trie = self.inner.trie.read().expect("lock poisoned");
        let mut depth = 0u64;
        trie.for_each(|_, _, e| depth += e.tx.queued() as u64);
        merged.sub_queue_depth = depth;
        merged.sub_queue_dropped = self.inner.queue_dropped.load(Ordering::Relaxed);
        merged.subj_interned = self.inner.table.len() as u64;
        merged.buf_pool_hits = self.inner.pool.hits();
        merged.buf_pool_misses = self.inner.pool.misses();
        self.inner.filt.fold_into(&mut merged);
        self.inner
            .nv
            .lock()
            .expect("lock poisoned")
            .stamp_stats(&mut merged);
        ShardedStats { merged, per_shard }
    }
}

/// Opens the non-volatile store `cfg` asks for, builds the loopback
/// shard engines (sharing one subject intern table), and replays any
/// recovered ledger entries onto their owning shards (the arming actions
/// a daemon would run are dropped — the in-process loop retries
/// synchronously instead).
fn build_shards(cfg: BusConfig) -> (Vec<Mutex<ShardSlot>>, NvStore, SubjectTable) {
    let nv = NvStore::open(&cfg).expect("open guaranteed-delivery ledger");
    let sharded = ShardedEngine::new_loopback(cfg, INPROC_HOST);
    let table = sharded.table().clone();
    let recovered = nv
        .recovered_envelopes(&table)
        .expect("read guaranteed-delivery ledger");
    let mut engines = sharded.into_shards();
    if !recovered.is_empty() {
        let n = engines.len();
        let mut by_shard: Vec<Vec<Envelope>> = (0..n).map(|_| Vec::new()).collect();
        for env in recovered {
            by_shard[shard_of_subject(env.subject.as_str(), n)].push(env);
        }
        for (shard, envs) in by_shard.into_iter().enumerate() {
            if !envs.is_empty() {
                let _ = engines[shard].gd_load(envs);
            }
        }
    }
    let slots = engines
        .into_iter()
        .map(|engine| {
            Mutex::new(ShardSlot {
                engine,
                scratch: Vec::new(),
            })
        })
        .collect();
    (slots, nv, table)
}

impl Default for InprocBus {
    fn default() -> Self {
        InprocBus::new()
    }
}

impl Bus for InprocBus {
    fn subscribe(&self, filter: &str) -> Result<(SubscriptionHandle, BusReceiver), BusError> {
        InprocBus::subscribe(self, filter)
    }

    fn subscribe_filtered(
        &self,
        filter: &str,
        pred: &Predicate,
    ) -> Result<(SubscriptionHandle, BusReceiver), BusError> {
        InprocBus::subscribe_filtered(self, filter, pred)
    }

    fn publish(&self, subject: &str, value: &Value, qos: QoS) -> Result<usize, BusError> {
        InprocBus::publish(self, subject, value, qos)
    }

    fn unsubscribe(&self, sub: SubscriptionHandle) {
        InprocBus::unsubscribe(self, sub)
    }

    /// Full barrier: in the default synchronous mode delivery already
    /// happened inside `publish`; in worker mode this waits for every
    /// queued hand-off (see [`InprocBus::drain`]).
    fn drain(&self) {
        InprocBus::drain(self)
    }

    fn stats(&self) -> BusStats {
        InprocBus::stats(self)
    }
}

/// A shard worker's main loop (worker mode): run publications for one
/// shard until every bus handle is gone. The worker holds only a
/// [`Weak`] so it cannot keep the bus alive; once the last handle drops,
/// the senders owned by [`Inner`] drop with it, the channel
/// disconnects, and the loop — and thread — ends.
fn shard_worker(shard: usize, weak: &Weak<Inner>, rx: &mpsc::Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Publish {
                subject,
                payload,
                qos,
            } => {
                let Some(inner) = weak.upgrade() else { return };
                let bus = InprocBus { inner };
                bus.publish_on_shard(shard, &subject, payload, qos);
            }
            Job::Flush(ack) => {
                let _ = ack.send(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn publish_subscribe_round_trip() {
        let bus = InprocBus::new();
        let (_sub, rx) = bus.subscribe("a.>").unwrap();
        let n = bus.publish("a.b", &Value::I64(7), QoS::Reliable).unwrap();
        assert_eq!(n, 1);
        assert_eq!(rx.recv().unwrap().value().unwrap(), Value::I64(7));
    }

    #[test]
    fn no_subscriber_no_delivery() {
        let bus = InprocBus::new();
        let (_sub, _rx) = bus.subscribe("a.b").unwrap();
        assert_eq!(bus.publish("a.c", &Value::Nil, QoS::Reliable).unwrap(), 0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let bus = InprocBus::new();
        let (sub, rx) = bus.subscribe("x.*").unwrap();
        bus.publish("x.1", &Value::Bool(true), QoS::Reliable)
            .unwrap();
        bus.unsubscribe(sub);
        assert_eq!(
            bus.publish("x.1", &Value::Bool(true), QoS::Reliable)
                .unwrap(),
            0
        );
        assert_eq!(rx.try_iter().count(), 1);
        assert_eq!(bus.subscription_count(), 0);
    }

    #[test]
    fn publish_marshaled_bypasses_the_marshaller() {
        let bus = InprocBus::new();
        let (_sub, rx) = bus.subscribe("pre.>").unwrap();
        let registry = TypeRegistry::with_fundamentals();
        let bytes = wire::marshal_self_describing(&Value::I64(11), &registry).unwrap();
        assert_eq!(
            bus.publish_marshaled("pre.k", &bytes, QoS::Reliable)
                .unwrap(),
            1
        );
        assert_eq!(rx.recv().unwrap().value().unwrap(), Value::I64(11));
    }

    #[test]
    fn steady_state_publishes_hit_the_buffer_pool() {
        // A small retain window so the reliable layer releases old
        // payloads during the test: a pooled buffer becomes reusable
        // only once the retransmission window rolls past it.
        let bus = InprocBus::with_config(BusConfig::default().with_retain_per_stream(4));
        let (_sub, rx) = bus.subscribe("pool.>").unwrap();
        for i in 0..50i64 {
            bus.publish("pool.k", &Value::I64(i), QoS::Reliable)
                .unwrap();
            // Drop the delivery so the pooled buffer is free again.
            let _ = rx.recv().unwrap();
        }
        let stats = bus.stats();
        assert_eq!(stats.subj_interned, 1);
        assert!(
            stats.buf_pool_hits >= 40,
            "expected near-total pool reuse, got hits={} misses={}",
            stats.buf_pool_hits,
            stats.buf_pool_misses
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let bus = InprocBus::new();
        let (_sub, rx) = bus.subscribe("t.>").unwrap();
        let publisher = {
            let bus = bus.clone();
            thread::spawn(move || {
                for i in 0..100i64 {
                    bus.publish("t.k", &Value::I64(i), QoS::Reliable).unwrap();
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 100 {
            got.push(
                rx.recv_timeout(Duration::from_secs(5))
                    .unwrap()
                    .value()
                    .unwrap(),
            );
        }
        publisher.join().unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(got[99], Value::I64(99));
    }

    #[test]
    fn objects_with_registered_types() {
        use infobus_types::{DataObject, TypeDescriptor, ValueType};
        let bus = InprocBus::new();
        bus.register_type(
            TypeDescriptor::builder("Quote")
                .attribute("px", ValueType::F64)
                .build(),
        )
        .unwrap();
        let (_sub, rx) = bus.subscribe("quotes.gmc").unwrap();
        let obj = DataObject::new("Quote").with("px", 12.5f64);
        bus.publish("quotes.gmc", &Value::object(obj.clone()), QoS::Reliable)
            .unwrap();
        let got = rx.recv().unwrap().value().unwrap();
        assert_eq!(got.as_object().unwrap(), &obj);
    }

    #[test]
    fn stalled_subscriber_memory_is_bounded() {
        // A subscriber that never drains must not grow memory without
        // bound: with a queue cap, the oldest messages are evicted and
        // counted, and the newest `cap` messages are retained.
        let cap = 64usize;
        let bus = InprocBus::with_config(BusConfig::default().with_subscriber_queue_cap(cap));
        let (_stalled, stalled_rx) = bus.subscribe("load.>").unwrap();
        let total = 10_000i64;
        for i in 0..total {
            bus.publish("load.k", &Value::I64(i), QoS::Reliable)
                .unwrap();
        }
        let stats = bus.stats();
        assert_eq!(stats.sub_queue_depth, cap as u64);
        assert_eq!(stats.sub_queue_dropped, (total as u64) - cap as u64);
        // The retained backlog is exactly the newest `cap` messages.
        let got: Vec<i64> = stalled_rx
            .try_iter()
            .map(|m| m.value().unwrap().as_i64().unwrap())
            .collect();
        let expect: Vec<i64> = (total - cap as i64..total).collect();
        assert_eq!(got, expect);
        // Draining brings the gauge back to zero.
        assert_eq!(bus.stats().sub_queue_depth, 0);
    }

    #[test]
    fn engine_sequences_publications() {
        let bus = InprocBus::new();
        let (_sub, rx) = bus.subscribe("s.>").unwrap();
        for i in 0..10i64 {
            bus.publish("s.k", &Value::I64(i), QoS::Reliable).unwrap();
        }
        let got: Vec<Value> = rx.try_iter().map(|m| m.value().unwrap()).collect();
        assert_eq!(got, (0..10).map(Value::I64).collect::<Vec<_>>());
        let stats = bus.stats();
        assert_eq!(stats.published, 10);
        assert_eq!(stats.delivered, 10);
        assert_eq!(stats.dups_dropped, 0);
    }

    #[test]
    fn sharded_bus_keeps_per_subject_order_and_merges_stats() {
        let bus = InprocBus::with_config(BusConfig::default().with_shards(4));
        assert_eq!(bus.shard_count(), 4);
        let subjects = ["alpha.k", "bravo.k", "charlie.k", "delta.k", "echo.k"];
        let mut rxs = Vec::new();
        for s in subjects {
            rxs.push(bus.subscribe(s).unwrap().1);
        }
        for i in 0..50i64 {
            for s in subjects {
                bus.publish(s, &Value::I64(i), QoS::Reliable).unwrap();
            }
        }
        for rx in &rxs {
            let got: Vec<Value> = rx.try_iter().map(|m| m.value().unwrap()).collect();
            assert_eq!(got, (0..50).map(Value::I64).collect::<Vec<_>>());
        }
        let snap = bus.sharded_stats();
        assert_eq!(snap.per_shard.len(), 4);
        assert_eq!(snap.merged.published, 250);
        assert_eq!(snap.merged.delivered, 250);
        // The publications really spread over more than one shard.
        let active = snap.per_shard.iter().filter(|s| s.published > 0).count();
        assert!(active > 1, "all subjects hashed to one shard");
        let sum: u64 = snap.per_shard.iter().map(|s| s.published).sum();
        assert_eq!(sum, snap.merged.published);
    }

    #[test]
    fn worker_mode_delivers_everything_in_order_after_drain() {
        let bus = InprocBus::with_workers(BusConfig::default().with_shards(4));
        let subjects = ["alpha.w", "bravo.w", "charlie.w", "delta.w"];
        let mut rxs = Vec::new();
        for s in subjects {
            rxs.push(bus.subscribe(s).unwrap().1);
        }
        for i in 0..50i64 {
            for s in subjects {
                // Hand-off time: one matching subscriber per subject.
                assert_eq!(bus.publish(s, &Value::I64(i), QoS::Reliable).unwrap(), 1);
            }
        }
        // The barrier: after drain, every hand-off has been sequenced
        // and delivered, so the queues and counters are settled.
        bus.drain();
        for rx in &rxs {
            let got: Vec<Value> = rx.try_iter().map(|m| m.value().unwrap()).collect();
            assert_eq!(got, (0..50).map(Value::I64).collect::<Vec<_>>());
        }
        let snap = bus.sharded_stats();
        assert_eq!(snap.merged.published, 200);
        assert_eq!(snap.merged.delivered, 200);
        assert_eq!(snap.merged.dups_dropped, 0);
        let active = snap.per_shard.iter().filter(|s| s.published > 0).count();
        assert!(active > 1, "all subjects hashed to one shard");
    }

    #[test]
    fn worker_mode_concurrent_publishers_keep_per_subject_order() {
        let bus = InprocBus::with_workers(BusConfig::default().with_shards(4));
        let subjects = ["alpha.mt", "bravo.mt", "charlie.mt", "delta.mt"];
        let mut rxs = Vec::new();
        for s in subjects {
            rxs.push(bus.subscribe(s).unwrap().1);
        }
        let handles: Vec<_> = subjects
            .into_iter()
            .map(|s| {
                let bus = bus.clone();
                thread::spawn(move || {
                    for i in 0..200i64 {
                        bus.publish(s, &Value::I64(i), QoS::Reliable).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        bus.drain();
        for rx in &rxs {
            let got: Vec<Value> = rx.try_iter().map(|m| m.value().unwrap()).collect();
            assert_eq!(got, (0..200).map(Value::I64).collect::<Vec<_>>());
        }
        assert_eq!(bus.stats().delivered, 800);
    }

    #[test]
    fn worker_mode_drain_on_sync_bus_is_a_no_op() {
        let bus = InprocBus::new();
        let (_sub, rx) = bus.subscribe("a.b").unwrap();
        bus.publish("a.b", &Value::I64(1), QoS::Reliable).unwrap();
        bus.drain();
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn guaranteed_publish_delivers_and_completes_the_ledger() {
        let bus = InprocBus::new();
        let (_sub, rx) = bus.subscribe("gd.>").unwrap();
        let n = bus
            .publish("gd.k", &Value::I64(9), QoS::Guaranteed)
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(rx.recv().unwrap().value().unwrap(), Value::I64(9));
        let stats = bus.stats();
        // Persist-before-send happened, the local delivery acknowledged
        // it, and the synchronous retry rounds released the entry.
        assert_eq!(stats.gd_completed, 1);
        assert_eq!(stats.gd_pending, 0);
    }

    #[test]
    fn guaranteed_publish_without_subscriber_stays_pending_until_one_appears() {
        let bus = InprocBus::new();
        bus.publish("gd.orphan", &Value::I64(1), QoS::Guaranteed)
            .unwrap();
        assert_eq!(bus.stats().gd_pending, 1);
        // A subscriber attaches; the next guaranteed publish on the shard
        // runs a retry round, which redelivers the pending entry.
        let (_sub, rx) = bus.subscribe("gd.>").unwrap();
        bus.publish("gd.other", &Value::I64(2), QoS::Guaranteed)
            .unwrap();
        let subjects: Vec<String> = rx
            .try_iter()
            .map(|m| m.subject.as_str().to_owned())
            .collect();
        assert!(subjects.contains(&"gd.orphan".to_owned()), "{subjects:?}");
        let stats = bus.stats();
        assert_eq!(stats.gd_pending, 0);
        assert_eq!(stats.gd_completed, 2);
    }

    /// Restart durability: a durable bus "dies" with an unacknowledged
    /// guaranteed publication on its ledger; a fresh bus over the same
    /// directory replays it and redelivers to a new subscriber.
    #[test]
    fn durable_bus_replays_ledger_across_restart() {
        let dir = infobus_wal::scratch::ScratchDir::new("inproc-durable");
        let cfg = || BusConfig::default().with_durable_dir(dir.path());
        {
            let bus = InprocBus::with_config(cfg());
            bus.publish("gd.orphan", &Value::I64(1), QoS::Guaranteed)
                .unwrap();
            assert_eq!(bus.stats().gd_pending, 1);
            assert!(bus.stats().gd_ledger_appends >= 1);
        }
        let bus = InprocBus::with_config(cfg());
        let stats = bus.stats();
        assert_eq!(stats.gd_pending, 1, "ledger entry must reload");
        assert_eq!(stats.gd_ledger_recovered, 1);
        // A subscriber appears; the next guaranteed publish runs a retry
        // round, which redelivers the recovered entry — flagged.
        let (_sub, rx) = bus.subscribe("gd.>").unwrap();
        bus.publish("gd.other", &Value::I64(2), QoS::Guaranteed)
            .unwrap();
        let msgs: Vec<_> = rx.try_iter().collect();
        let orphan = msgs
            .iter()
            .find(|m| m.subject == "gd.orphan")
            .expect("recovered entry redelivered");
        assert!(orphan.redelivery);
        assert_eq!(bus.stats().gd_pending, 0);
        // Completion tombstoned the replayed entry: a third restart has
        // nothing to recover.
        drop(bus);
        assert_eq!(InprocBus::with_config(cfg()).stats().gd_pending, 0);
    }

    #[test]
    fn guaranteed_redelivery_is_flagged() {
        let bus = InprocBus::new();
        bus.publish("gd.flag", &Value::I64(1), QoS::Guaranteed)
            .unwrap();
        let (_sub, rx) = bus.subscribe("gd.flag").unwrap();
        bus.publish("gd.flag", &Value::I64(2), QoS::Guaranteed)
            .unwrap();
        let msgs: Vec<Delivery> = rx.try_iter().collect();
        let redelivered = msgs.iter().find(|m| m.redelivery).expect("a redelivery");
        assert_eq!(redelivered.value().unwrap(), Value::I64(1));
    }

    fn quote(sym: &str, price: f64) -> Value {
        use infobus_types::DataObject;
        Value::object(
            DataObject::new("Quote")
                .with("sym", sym)
                .with("price", price),
        )
    }

    fn quote_descriptor() -> infobus_types::TypeDescriptor {
        use infobus_types::{TypeDescriptor, ValueType};
        TypeDescriptor::builder("Quote")
            .attribute("sym", ValueType::Str)
            .attribute("price", ValueType::F64)
            .build()
    }

    fn quote_bus() -> InprocBus {
        let bus = InprocBus::new();
        bus.register_type(quote_descriptor()).unwrap();
        bus
    }

    #[test]
    fn filtered_subscription_delivers_only_matching_payloads() {
        let bus = quote_bus();
        let (_sub, rx) = bus
            .subscribe_filtered("q.>", &Predicate::gt("price", Value::F64(100.0)))
            .unwrap();
        bus.publish("q.ibm", &quote("IBM", 120.0), QoS::Reliable)
            .unwrap();
        bus.publish("q.gmc", &quote("GMC", 80.0), QoS::Reliable)
            .unwrap();
        bus.publish("q.ibm", &quote("IBM", 150.0), QoS::Reliable)
            .unwrap();
        let got: Vec<f64> = rx
            .try_iter()
            .map(|m| {
                m.value()
                    .unwrap()
                    .as_object()
                    .unwrap()
                    .get("price")
                    .unwrap()
                    .as_f64()
                    .unwrap()
            })
            .collect();
        assert_eq!(got, vec![120.0, 150.0]);
    }

    #[test]
    fn unanimous_rejection_suppresses_at_the_publish_gate() {
        let bus = quote_bus();
        let (_sub, rx) = bus
            .subscribe_filtered("g.>", &Predicate::eq("sym", Value::str("IBM")))
            .unwrap();
        // Rejected by the only matching predicate: suppressed before
        // sequencing — nothing published, nothing delivered, no seq gap.
        assert_eq!(
            bus.publish("g.t", &quote("GMC", 1.0), QoS::Reliable)
                .unwrap(),
            0
        );
        let stats = bus.stats();
        assert_eq!(stats.published, 0, "suppressed before sequencing");
        assert_eq!(stats.filt_pub_suppressed, 1);
        assert!(stats.filt_suppressed_bytes > 0);
        assert!(stats.filt_evals >= 1);
        // An accepted publication still flows, in order.
        bus.publish("g.t", &quote("IBM", 2.0), QoS::Reliable)
            .unwrap();
        assert_eq!(rx.try_iter().count(), 1);
        assert_eq!(bus.stats().published, 1);
    }

    #[test]
    fn predicate_free_subscriber_defeats_the_publish_gate() {
        let bus = quote_bus();
        let (_all, all_rx) = bus.subscribe("m.>").unwrap();
        let (_filtered, filt_rx) = bus
            .subscribe_filtered("m.>", &Predicate::ge("price", Value::F64(100.0)))
            .unwrap();
        // The unfiltered subscriber forces the send; the filtered one is
        // still gated per delivery.
        bus.publish("m.k", &quote("GMC", 10.0), QoS::Reliable)
            .unwrap();
        bus.drain();
        assert_eq!(all_rx.try_iter().count(), 1);
        assert_eq!(filt_rx.try_iter().count(), 0);
        let stats = bus.stats();
        assert_eq!(stats.filt_pub_suppressed, 0);
        assert_eq!(stats.filt_delivery_suppressed, 1);
    }

    #[test]
    fn publish_marshaled_is_gated_too() {
        let bus = InprocBus::new();
        let (_sub, rx) = bus
            .subscribe_filtered("pm.>", &Predicate::eq("sym", Value::str("IBM")))
            .unwrap();
        let mut registry = TypeRegistry::with_fundamentals();
        registry.register(quote_descriptor()).unwrap();
        let reject = wire::marshal_self_describing(&quote("GMC", 1.0), &registry).unwrap();
        let accept = wire::marshal_self_describing(&quote("IBM", 2.0), &registry).unwrap();
        assert_eq!(
            bus.publish_marshaled("pm.k", &reject, QoS::Reliable)
                .unwrap(),
            0
        );
        assert_eq!(
            bus.publish_marshaled("pm.k", &accept, QoS::Reliable)
                .unwrap(),
            1
        );
        assert_eq!(rx.try_iter().count(), 1);
        assert_eq!(bus.stats().filt_pub_suppressed, 1);
    }

    #[test]
    fn guaranteed_filtered_rejection_counts_as_consumption() {
        // Two subscribers: one unfiltered (so the publish gate sends),
        // one whose predicate rejects. The guaranteed entry must
        // complete — a predicate rejection is a consumption decision,
        // not a delivery failure to retry.
        let bus = quote_bus();
        let (_all, all_rx) = bus.subscribe("gdf.>").unwrap();
        let (_filtered, filt_rx) = bus
            .subscribe_filtered("gdf.>", &Predicate::eq("sym", Value::str("IBM")))
            .unwrap();
        bus.publish("gdf.k", &quote("GMC", 5.0), QoS::Guaranteed)
            .unwrap();
        assert_eq!(all_rx.try_iter().count(), 1);
        assert_eq!(filt_rx.try_iter().count(), 0);
        let stats = bus.stats();
        assert_eq!(stats.gd_pending, 0, "rejection must not strand the ledger");
        assert_eq!(stats.gd_completed, 1);
    }

    #[test]
    fn semantic_map_canonicalizes_publishes_and_expands_filters() {
        let mut map = SubjectMap::new();
        map.add_alias("NYSE.IBM", "tech.IBM").unwrap();
        let bus = InprocBus::with_config(BusConfig::default().with_subject_map(Arc::new(map)));
        // A subscriber on the canonical subject sees synonym publishes…
        let (_canon, canon_rx) = bus.subscribe("tech.IBM").unwrap();
        bus.publish("NYSE.IBM", &Value::I64(1), QoS::Reliable)
            .unwrap();
        assert_eq!(canon_rx.try_iter().count(), 1);
        // …and a subscriber on the synonym sees canonical publishes
        // (its filter was expanded to the canonical form).
        let (_syn, syn_rx) = bus.subscribe("NYSE.IBM").unwrap();
        bus.publish("tech.IBM", &Value::I64(2), QoS::Reliable)
            .unwrap();
        assert_eq!(syn_rx.try_iter().count(), 1);
        let stats = bus.stats();
        assert_eq!(stats.sem_canonicalized, 1);
        assert!(stats.sem_expanded_filters >= 1);
        // Delivered subjects are always canonical.
    }

    #[test]
    fn semantic_expansion_unsubscribes_as_a_family() {
        let mut map = SubjectMap::new();
        map.add_alias("old.path", "new.path").unwrap();
        let bus = InprocBus::with_config(BusConfig::default().with_subject_map(Arc::new(map)));
        let (sub, rx) = bus.subscribe("old.path").unwrap();
        bus.publish("old.path", &Value::I64(1), QoS::Reliable)
            .unwrap();
        assert_eq!(rx.try_iter().count(), 1);
        bus.unsubscribe(sub);
        assert_eq!(bus.subscription_count(), 0, "expanded entries removed too");
        assert_eq!(
            bus.publish("new.path", &Value::I64(2), QoS::Reliable)
                .unwrap(),
            0
        );
    }

    #[test]
    fn bus_trait_object_drives_the_inproc_bus() {
        let boxed: Box<dyn Bus> = Box::new(InprocBus::new());
        let (sub, rx) = boxed.subscribe("dyn.>").unwrap();
        assert_eq!(
            boxed
                .publish("dyn.k", &Value::I64(5), QoS::Reliable)
                .unwrap(),
            1
        );
        boxed.drain();
        assert_eq!(rx.try_recv().unwrap().value().unwrap(), Value::I64(5));
        boxed.unsubscribe(sub);
        assert_eq!(
            boxed
                .publish("dyn.k", &Value::I64(6), QoS::Reliable)
                .unwrap(),
            0
        );
        assert_eq!(boxed.stats().published, 2);
    }
}
