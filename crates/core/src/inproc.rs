//! A real-thread transport carrying bus envelopes between OS threads.
//!
//! The simulator measures the protocol in *virtual* time; this module
//! lets the microbenchmark harness measure the real wall-clock cost of
//! the data path —
//! marshalling, subject-trie matching, and hand-off — with actual threads
//! and channels. It deliberately reuses the same wire format and subject
//! matcher as the simulated bus.
//!
//! # Examples
//!
//! ```
//! use infobus_core::inproc::InprocBus;
//! use infobus_types::Value;
//!
//! let bus = InprocBus::new();
//! let rx = bus.subscribe("news.>").unwrap();
//! bus.publish("news.equity.gmc", &Value::str("hello")).unwrap();
//! let msg = rx.recv().unwrap();
//! assert_eq!(msg.subject, "news.equity.gmc");
//! assert_eq!(msg.value().unwrap(), Value::str("hello"));
//! ```

use std::sync::Arc;

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Mutex, RwLock};

use infobus_subject::{Subject, SubjectFilter, SubjectTrie, SubscriptionId};
use infobus_types::{wire, TypeRegistry, Value, WireError};

use crate::BusError;

/// A message delivered by the in-process bus: the subject plus the
/// marshalled payload (unmarshal lazily with [`InprocMessage::value`]).
#[derive(Debug, Clone)]
pub struct InprocMessage {
    /// The subject the value was published under.
    pub subject: String,
    /// The marshalled payload (shared among all subscribers).
    pub payload: Arc<Vec<u8>>,
}

impl InprocMessage {
    /// Unmarshals the payload. The bus publishes self-describing
    /// messages, so any type descriptors travel with the data and no
    /// pre-shared registry is needed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the payload is malformed.
    pub fn value(&self) -> Result<Value, WireError> {
        let mut registry = TypeRegistry::with_fundamentals();
        wire::unmarshal(&self.payload, &mut registry)
    }

    /// Unmarshals the payload into an existing registry (types carried by
    /// the message are registered into it).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the payload is malformed or its schema
    /// conflicts with `registry`.
    pub fn value_into(&self, registry: &mut TypeRegistry) -> Result<Value, WireError> {
        wire::unmarshal(&self.payload, registry)
    }
}

struct Inner {
    trie: RwLock<SubjectTrie<Sender<InprocMessage>>>,
    registry: Mutex<TypeRegistry>,
}

/// A thread-safe publish/subscribe bus within one process.
///
/// `publish` runs the full data path — self-describing marshalling,
/// subject-trie matching, per-subscriber channel hand-off — on the
/// calling thread; subscribers receive on mpsc channels from any other
/// thread.
#[derive(Clone)]
pub struct InprocBus {
    inner: Arc<Inner>,
}

impl InprocBus {
    /// Creates an empty bus with a fundamentals-only type registry.
    pub fn new() -> Self {
        InprocBus {
            inner: Arc::new(Inner {
                trie: RwLock::new(SubjectTrie::new()),
                registry: Mutex::new(TypeRegistry::with_fundamentals()),
            }),
        }
    }

    /// Registers application types so objects can be marshalled.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Marshal`] on conflicting registration.
    pub fn register_type(&self, d: infobus_types::TypeDescriptor) -> Result<(), BusError> {
        self.inner
            .registry
            .lock()
            .expect("lock poisoned")
            .register(d)
            .map_err(|e| BusError::Marshal(e.to_string()))
    }

    /// Subscribes to a filter; matching publications arrive on the
    /// returned channel.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for malformed filters.
    pub fn subscribe(&self, filter: &str) -> Result<Receiver<InprocMessage>, BusError> {
        let filter = SubjectFilter::new(filter)?;
        let (tx, rx) = channel();
        self.inner
            .trie
            .write()
            .expect("lock poisoned")
            .insert(&filter, tx);
        Ok(rx)
    }

    /// Subscribes and also returns the subscription id for later removal.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for malformed filters.
    pub fn subscribe_with_id(
        &self,
        filter: &str,
    ) -> Result<(SubscriptionId, Receiver<InprocMessage>), BusError> {
        let filter = SubjectFilter::new(filter)?;
        let (tx, rx) = channel();
        let id = self
            .inner
            .trie
            .write()
            .expect("lock poisoned")
            .insert(&filter, tx);
        Ok((id, rx))
    }

    /// Removes a subscription (its channel closes once drained).
    pub fn unsubscribe(&self, id: SubscriptionId) {
        self.inner.trie.write().expect("lock poisoned").remove(id);
    }

    /// Publishes a value; delivers to every matching subscriber.
    /// Returns the number of subscribers the message was handed to.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] or [`BusError::Marshal`].
    pub fn publish(&self, subject: &str, value: &Value) -> Result<usize, BusError> {
        let subject_parsed = Subject::new(subject)?;
        let payload = {
            let registry = self.inner.registry.lock().expect("lock poisoned");
            wire::marshal_self_describing(value, &registry)
                .map_err(|e| BusError::Marshal(e.to_string()))?
        };
        let payload = Arc::new(payload);
        let trie = self.inner.trie.read().expect("lock poisoned");
        let mut delivered = 0usize;
        for (_, tx) in trie.matches(&subject_parsed) {
            let msg = InprocMessage {
                subject: subject.to_owned(),
                payload: payload.clone(),
            };
            if tx.send(msg).is_ok() {
                delivered += 1;
            }
        }
        Ok(delivered)
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.trie.read().expect("lock poisoned").len()
    }
}

impl Default for InprocBus {
    fn default() -> Self {
        InprocBus::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn publish_subscribe_round_trip() {
        let bus = InprocBus::new();
        let rx = bus.subscribe("a.>").unwrap();
        let n = bus.publish("a.b", &Value::I64(7)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(rx.recv().unwrap().value().unwrap(), Value::I64(7));
    }

    #[test]
    fn no_subscriber_no_delivery() {
        let bus = InprocBus::new();
        let _rx = bus.subscribe("a.b").unwrap();
        assert_eq!(bus.publish("a.c", &Value::Nil).unwrap(), 0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let bus = InprocBus::new();
        let (id, rx) = bus.subscribe_with_id("x.*").unwrap();
        bus.publish("x.1", &Value::Bool(true)).unwrap();
        bus.unsubscribe(id);
        assert_eq!(bus.publish("x.1", &Value::Bool(true)).unwrap(), 0);
        assert_eq!(rx.try_iter().count(), 1);
        assert_eq!(bus.subscription_count(), 0);
    }

    #[test]
    fn cross_thread_delivery() {
        let bus = InprocBus::new();
        let rx = bus.subscribe("t.>").unwrap();
        let publisher = {
            let bus = bus.clone();
            thread::spawn(move || {
                for i in 0..100i64 {
                    bus.publish("t.k", &Value::I64(i)).unwrap();
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 100 {
            got.push(
                rx.recv_timeout(Duration::from_secs(5))
                    .unwrap()
                    .value()
                    .unwrap(),
            );
        }
        publisher.join().unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(got[99], Value::I64(99));
    }

    #[test]
    fn objects_with_registered_types() {
        use infobus_types::{DataObject, TypeDescriptor, ValueType};
        let bus = InprocBus::new();
        bus.register_type(
            TypeDescriptor::builder("Quote")
                .attribute("px", ValueType::F64)
                .build(),
        )
        .unwrap();
        let rx = bus.subscribe("quotes.gmc").unwrap();
        let obj = DataObject::new("Quote").with("px", 12.5f64);
        bus.publish("quotes.gmc", &Value::object(obj.clone()))
            .unwrap();
        let got = rx.recv().unwrap().value().unwrap();
        assert_eq!(got.as_object().unwrap(), &obj);
    }
}
