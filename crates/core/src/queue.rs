//! Bounded subscriber queues with a drop-oldest overflow policy.
//!
//! The engine's `Deliver` actions are unbounded: a publisher that keeps
//! publishing while a subscriber never drains its channel would grow
//! memory without limit. Real-thread drivers (the in-process bus and the
//! UDP bus) therefore hand envelopes to subscribers through these queues
//! instead of raw `std::sync::mpsc` channels: when
//! [`BusConfig::subscriber_queue_cap`](crate::BusConfig::subscriber_queue_cap)
//! is non-zero and a queue is full, the *oldest* queued message is evicted
//! to make room for the newest (slow consumers observe a gap, fast
//! publishers never block), and every eviction is counted into
//! [`BusStats::sub_queue_dropped`](crate::BusStats::sub_queue_dropped).
//!
//! Each subscription owns exactly one sender (held in the driver's
//! subject trie) and one receiver (returned to the application). The
//! receiver API mirrors the subset of `mpsc::Receiver` the rest of the
//! workspace uses (`recv`, `recv_timeout`, `try_recv`, `try_iter`), and
//! reuses the standard error types, so swapping a raw channel for a
//! bounded queue is call-site compatible.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct State<T> {
    items: VecDeque<T>,
    tx_alive: bool,
    rx_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    /// 0 = unbounded.
    cap: usize,
    /// Cumulative drop-oldest evictions, shared with the owning bus so
    /// they surface in its stats snapshot.
    dropped: Arc<AtomicU64>,
    /// Live [`SubSender`] clones; the queue disconnects (receivers see
    /// `tx_alive == false`) only when the last one drops. Drivers clone
    /// senders into fan-out caches, so a single drop must not disconnect.
    senders: AtomicUsize,
}

/// Creates a subscriber queue. `cap` bounds the number of queued
/// messages (`0` = unbounded); `dropped` receives one increment per
/// drop-oldest eviction.
pub fn sub_queue<T>(cap: usize, dropped: Arc<AtomicU64>) -> (SubSender<T>, SubReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            items: VecDeque::new(),
            tx_alive: true,
            rx_alive: true,
        }),
        cv: Condvar::new(),
        cap,
        dropped,
        senders: AtomicUsize::new(1),
    });
    (
        SubSender {
            shared: shared.clone(),
        },
        SubReceiver { shared },
    )
}

/// The driver-held half of a subscriber queue.
pub struct SubSender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> SubSender<T> {
    /// Enqueues a message. When the queue is at capacity the oldest
    /// queued message is evicted first (and counted). Returns the message
    /// back if the receiver was dropped.
    pub fn send(&self, msg: T) -> Result<(), T> {
        // A panic while holding this short critical section poisons the
        // queue for one subscriber only; propagating it is correct.
        let mut st = self.shared.state.lock().expect("subscriber queue poisoned");
        if !st.rx_alive {
            return Err(msg);
        }
        if self.shared.cap != 0 && st.items.len() >= self.shared.cap {
            st.items.pop_front();
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
        st.items.push_back(msg);
        drop(st);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Number of messages currently queued (the subscriber's backlog).
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("subscriber queue poisoned")
            .items
            .len()
    }
}

impl<T> Clone for SubSender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        SubSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for SubSender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) != 1 {
            return; // other sender clones keep the queue connected
        }
        if let Ok(mut st) = self.shared.state.lock() {
            st.tx_alive = false;
        }
        self.shared.cv.notify_all();
    }
}

/// The application-held half of a subscriber queue.
pub struct SubReceiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> SubReceiver<T> {
    /// Blocks until a message arrives or the sender side is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the queue is drained and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().expect("subscriber queue poisoned");
        loop {
            if let Some(msg) = st.items.pop_front() {
                return Ok(msg);
            }
            if !st.tx_alive {
                return Err(RecvError);
            }
            st = self.shared.cv.wait(st).expect("subscriber queue poisoned");
        }
    }

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// Returns [`RecvTimeoutError::Timeout`] on expiry, or
    /// [`RecvTimeoutError::Disconnected`] once drained and disconnected.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect("subscriber queue poisoned");
        loop {
            if let Some(msg) = st.items.pop_front() {
                return Ok(msg);
            }
            if !st.tx_alive {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(st, deadline - now)
                .expect("subscriber queue poisoned");
            st = guard;
        }
    }

    /// Takes a message if one is queued.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] when nothing is queued, or
    /// [`TryRecvError::Disconnected`] once drained and disconnected.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().expect("subscriber queue poisoned");
        match st.items.pop_front() {
            Some(msg) => Ok(msg),
            None if st.tx_alive => Err(TryRecvError::Empty),
            None => Err(TryRecvError::Disconnected),
        }
    }

    /// Drains currently queued messages without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("subscriber queue poisoned")
            .items
            .len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for SubReceiver<T> {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.state.lock() {
            st.rx_alive = false;
            // Free the backlog eagerly: nobody can drain it anymore.
            st.items.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_disconnect() {
        let dropped = Arc::new(AtomicU64::new(0));
        let (tx, rx) = sub_queue(0, dropped);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn drop_oldest_bounds_the_queue() {
        let dropped = Arc::new(AtomicU64::new(0));
        let (tx, rx) = sub_queue(3, dropped.clone());
        for i in 0..10 {
            tx.send(i).unwrap();
            assert!(tx.queued() <= 3);
        }
        assert_eq!(dropped.load(Ordering::Relaxed), 7);
        // The newest three survive.
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn send_after_receiver_drop_fails() {
        let dropped = Arc::new(AtomicU64::new(0));
        let (tx, rx) = sub_queue::<i32>(0, dropped);
        drop(rx);
        assert_eq!(tx.send(5), Err(5));
    }

    #[test]
    fn cloned_sender_keeps_queue_connected() {
        let dropped = Arc::new(AtomicU64::new(0));
        let (tx, rx) = sub_queue(0, dropped);
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(1).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        drop(tx2); // last clone: now the queue disconnects
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let dropped = Arc::new(AtomicU64::new(0));
        let (tx, rx) = sub_queue::<i32>(0, dropped);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        ));
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 1);
    }

    #[test]
    fn cross_thread_wakeup() {
        let dropped = Arc::new(AtomicU64::new(0));
        let (tx, rx) = sub_queue(0, dropped);
        let t = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42).unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }
}
