//! Driver-side helpers: install daemons, attach applications, inspect.

use std::collections::HashMap;

use infobus_netsim::{HostId, ProcId, Sim};

use crate::app::BusApp;
use crate::config::BusConfig;
use crate::daemon::BusDaemon;
use crate::engine::BusStats;

/// Command: attach an application to a daemon.
pub(crate) struct AttachApp {
    pub name: String,
    pub app: Box<dyn BusApp>,
}

/// Command: detach (crash) an application.
pub(crate) struct DetachApp {
    pub name: String,
}

/// Command: deliver a driver-side command to a named application.
pub(crate) struct AppCommand {
    pub name: String,
    pub cmd: Box<dyn std::any::Any>,
}

/// Command: open an information-router link to a peer daemon.
pub(crate) struct LinkBuses {
    pub peer: HostId,
    pub rewrite: Option<crate::router::RewriteRule>,
}

/// A driver-side handle over the daemons of one simulation.
///
/// `BusFabric` spawns a [`BusDaemon`] on each host and offers attach /
/// detach / inspect operations, mirroring what an operator does on a real
/// installation.
///
/// # Examples
///
/// ```
/// use infobus_core::{BusConfig, BusFabric};
/// use infobus_netsim::{EtherConfig, NetBuilder};
///
/// let mut b = NetBuilder::new(1);
/// let seg = b.segment(EtherConfig::lan_10mbps());
/// let h1 = b.host("alpha", &[seg]);
/// let h2 = b.host("beta", &[seg]);
/// let mut sim = b.build();
/// let fabric = BusFabric::install(&mut sim, &[h1, h2], BusConfig::default());
/// sim.run_for(infobus_netsim::time::millis(100));
/// assert!(fabric.daemon(h1).is_some());
/// ```
pub struct BusFabric {
    daemons: HashMap<HostId, ProcId>,
}

impl BusFabric {
    /// Spawns one daemon per host and returns the fabric handle.
    pub fn install(sim: &mut Sim, hosts: &[HostId], cfg: BusConfig) -> BusFabric {
        let mut daemons = HashMap::new();
        for &host in hosts {
            let pid = sim.spawn(host, Box::new(BusDaemon::new(cfg.clone())));
            daemons.insert(host, pid);
        }
        BusFabric { daemons }
    }

    /// The daemon process on `host`, if one was installed.
    pub fn daemon(&self, host: HostId) -> Option<ProcId> {
        self.daemons.get(&host).copied()
    }

    /// Attaches an application to the daemon on `host`. The application's
    /// `on_start` runs when the simulation is next stepped.
    ///
    /// # Panics
    ///
    /// Panics if no daemon was installed on `host`.
    pub fn attach_app(&self, sim: &mut Sim, host: HostId, name: &str, app: Box<dyn BusApp>) {
        let pid = self.daemons[&host];
        sim.send_command(
            pid,
            Box::new(AttachApp {
                name: name.to_owned(),
                app,
            }),
        );
    }

    /// Detaches (fail-stop) an application from the daemon on `host`.
    ///
    /// # Panics
    ///
    /// Panics if no daemon was installed on `host`.
    pub fn detach_app(&self, sim: &mut Sim, host: HostId, name: &str) {
        let pid = self.daemons[&host];
        sim.send_command(
            pid,
            Box::new(DetachApp {
                name: name.to_owned(),
            }),
        );
    }

    /// Crashes the daemon on `host` (taking its applications with it —
    /// a node failure from the bus's point of view).
    pub fn crash_daemon(&mut self, sim: &mut Sim, host: HostId) {
        if let Some(pid) = self.daemons.get(&host) {
            sim.crash(*pid);
        }
    }

    /// Restarts a crashed daemon on `host`. Non-volatile state (the
    /// guaranteed-delivery ledger) is reloaded; applications must be
    /// re-attached.
    pub fn restart_daemon(&mut self, sim: &mut Sim, host: HostId, cfg: BusConfig) {
        let pid = sim.spawn(host, Box::new(BusDaemon::new(cfg)));
        self.daemons.insert(host, pid);
    }

    /// Opens an information-router link from the daemon on `a` to the
    /// daemon on `b` (their hosts must share a segment — usually a
    /// dedicated WAN link). Publications flow both ways, filtered by each
    /// side's aggregate subscription summary; `rewrite` is applied only
    /// to traffic crossing from `a`'s side to `b`'s side (for the reverse
    /// direction, link from `b` with its own rule). Links may form cycles:
    /// forwarded publications carry a
    /// [`RouteStamp`](crate::router::RouteStamp) that routers use to
    /// suppress loop duplicates.
    ///
    /// # Panics
    ///
    /// Panics if no daemon was installed on `a`.
    pub fn link_buses(
        &self,
        sim: &mut Sim,
        a: HostId,
        b: HostId,
        rewrite: Option<crate::router::RewriteRule>,
    ) {
        let pid = self.daemons[&a];
        sim.send_command(pid, Box::new(LinkBuses { peer: b, rewrite }));
    }

    /// Delivers `cmd` to the named application's
    /// [`BusApp::on_command`](crate::BusApp::on_command) handler.
    ///
    /// Unlike [`BusFabric::with_app`], the handler runs inside the
    /// simulation with a live [`BusCtx`](crate::BusCtx), so the app can
    /// publish or subscribe in response — this is how out-of-sim drivers
    /// (the edge tier's netsim shim) push work onto the bus.
    ///
    /// No-op if no daemon was installed on `host`.
    pub fn send_app_command(
        &self,
        sim: &mut Sim,
        host: HostId,
        name: &str,
        cmd: Box<dyn std::any::Any>,
    ) {
        if let Some(pid) = self.daemons.get(&host) {
            sim.send_command(
                *pid,
                Box::new(AppCommand {
                    name: name.to_owned(),
                    cmd,
                }),
            );
        }
    }

    /// Runs `f` against a named application's concrete state.
    pub fn with_app<T: BusApp, R>(
        &self,
        sim: &mut Sim,
        host: HostId,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let pid = self.daemons.get(&host)?;
        sim.with_proc::<BusDaemon, Option<R>>(*pid, |d| d.with_app::<T, R>(name, f))
            .flatten()
    }

    /// A snapshot of the daemon's protocol counters on `host`.
    pub fn daemon_stats(&self, sim: &mut Sim, host: HostId) -> Option<BusStats> {
        let pid = self.daemons.get(&host)?;
        sim.with_proc::<BusDaemon, BusStats>(*pid, |d| d.stats())
    }

    /// The hosts with an installed daemon, in ascending id order.
    pub fn hosts(&self) -> Vec<HostId> {
        let mut hosts: Vec<HostId> = self.daemons.keys().copied().collect();
        hosts.sort_by_key(|h| h.0);
        hosts
    }

    /// Snapshots of every daemon's protocol counters, in ascending host
    /// order (crashed daemons are skipped).
    pub fn all_daemon_stats(&self, sim: &mut Sim) -> Vec<(HostId, BusStats)> {
        self.hosts()
            .into_iter()
            .filter_map(|h| self.daemon_stats(sim, h).map(|s| (h, s)))
            .collect()
    }
}
