//! Interest management: the local subject trie, debounced subscription
//! announcements, and the peer-daemon gossip tables.
//!
//! This is driver state, not engine state: the trie routes deliveries to
//! application slots, and announcements ride the simulated broadcast
//! segment. The engine only sees the *derived* facts (entitlement
//! verdicts, per-subject interest snapshots).

use std::collections::HashSet;
use std::sync::Arc;

use infobus_netsim::Ctx;
use infobus_subject::{Subject, SubjectFilter, SubscriptionId};
use infobus_types::Value;

use crate::daemon::DaemonState;
use crate::engine::filter::{announced_predicate, CompiledPredicate};
use crate::engine::Micros;
use crate::msg::{AnnounceEntry, Packet};

/// One peer daemon's announced filter: the parsed subject filter plus
/// the content predicate it travels with (`None` = unfiltered). Feeds
/// the publish gate: a publication matched only by predicated peer
/// filters that all reject is never broadcast.
#[derive(Debug, Clone)]
pub(crate) struct PeerInterest {
    pub(crate) filter: SubjectFilter,
    pub(crate) pred: Option<Arc<CompiledPredicate>>,
}

/// What a trie entry routes to.
#[derive(Debug, Clone)]
pub(crate) enum SubTarget {
    /// A data subscription of a local application.
    App { app_idx: usize },
    /// A discovery responder ("I am") with its announced info.
    Responder { app_idx: usize, info: Value },
    /// A locally exported service (answers RMI queries on the subject).
    Service { svc_idx: usize },
    /// A transient control subscription for a pending discovery or RMI
    /// call (lets offer/announce envelopes through the interest filter).
    Control,
}

/// Debounce delay for subscription announcements.
const ANN_FLUSH_DELAY_US: Micros = 5_000;

impl DaemonState {
    /// The predicate this daemon announces for `filter`: `None`
    /// (unfiltered) if any local subscription on the filter is
    /// predicate-free, the disjunction otherwise (see
    /// [`announced_predicate`]).
    pub(crate) fn announced_pred_for(&self, filter: &str) -> Option<Arc<CompiledPredicate>> {
        let subs = self.my_filters.get(filter)?;
        let preds: Vec<Option<Arc<CompiledPredicate>>> =
            subs.iter().map(|(_, p)| p.clone()).collect();
        announced_predicate(&preds)
    }

    /// The wire form of [`DaemonState::announced_pred_for`] (empty =
    /// unfiltered).
    fn announced_pred_bytes(&self, filter: &str) -> Vec<u8> {
        self.announced_pred_for(filter)
            .map_or_else(Vec::new, |p| p.to_bytes())
    }

    fn announce_add(
        &mut self,
        net: &mut Ctx<'_>,
        filter: &SubjectFilter,
        id: SubscriptionId,
        pred: Option<Arc<CompiledPredicate>>,
    ) {
        let before = self.announced_pred_bytes(filter.as_str());
        let is_new = {
            let subs = self
                .my_filters
                .entry(filter.as_str().to_owned())
                .or_default();
            subs.push((id, pred));
            subs.len() == 1
        };
        // A later subscription can *change* what the filter announces
        // (another predicate joins the disjunction, or a predicate-free
        // subscriber widens it to unfiltered): re-announce, replacing
        // the peers' stored entry.
        if is_new || before != self.announced_pred_bytes(filter.as_str()) {
            self.pending_announce_add.push(filter.as_str().to_owned());
            self.arm_announce_flush(net);
        }
    }

    /// Debounces announcements: thousands of subscriptions made in one
    /// handler (Figure 8's 10,000-subject consumers) travel in one packet.
    fn arm_announce_flush(&mut self, net: &mut Ctx<'_>) {
        if !self.announce_flush_armed {
            self.announce_flush_armed = true;
            net.set_timer(ANN_FLUSH_DELAY_US, crate::daemon::TOK_ANN_FLUSH);
        }
    }

    pub(crate) fn flush_announcements(&mut self, net: &mut Ctx<'_>) {
        self.announce_flush_armed = false;
        if self.pending_announce_add.is_empty() && self.pending_announce_remove.is_empty() {
            return;
        }
        let mut add = std::mem::take(&mut self.pending_announce_add);
        let remove = std::mem::take(&mut self.pending_announce_remove);
        // Re-announcements can queue a filter more than once; peers
        // replace on receipt, so only the latest state matters.
        add.sort();
        add.dedup();
        let add: Vec<AnnounceEntry> = add
            .into_iter()
            .filter(|f| self.my_filters.contains_key(f))
            .map(|f| {
                let pred = self.announced_pred_bytes(&f);
                AnnounceEntry { filter: f, pred }
            })
            .collect();
        if add.is_empty() && remove.is_empty() {
            return;
        }
        self.send_packet_broadcast(
            net,
            &Packet::SubAnnounce {
                host: self.host32,
                full: false,
                add,
                remove,
            },
        );
    }

    fn announce_remove(&mut self, net: &mut Ctx<'_>, filter: &SubjectFilter, id: SubscriptionId) {
        let before = self.announced_pred_bytes(filter.as_str());
        let now_zero = match self.my_filters.get_mut(filter.as_str()) {
            Some(subs) => {
                subs.retain(|(sid, _)| *sid != id);
                subs.is_empty()
            }
            None => false,
        };
        if now_zero {
            self.my_filters.remove(filter.as_str());
            self.pending_announce_remove
                .push(filter.as_str().to_owned());
            self.arm_announce_flush(net);
        } else if self.my_filters.contains_key(filter.as_str())
            && before != self.announced_pred_bytes(filter.as_str())
        {
            // Still subscribed, but the announced predicate narrowed
            // (the predicate-free subscriber left, say): re-announce.
            self.pending_announce_add.push(filter.as_str().to_owned());
            self.arm_announce_flush(net);
        }
    }

    pub(crate) fn announce_full(&mut self, net: &mut Ctx<'_>) {
        let add: Vec<AnnounceEntry> = self
            .my_filters
            .keys()
            .map(|f| AnnounceEntry {
                filter: f.clone(),
                pred: self.announced_pred_bytes(f),
            })
            .collect();
        self.send_packet_broadcast(
            net,
            &Packet::SubAnnounce {
                host: self.host32,
                full: true,
                add,
                remove: vec![],
            },
        );
    }

    /// Subscribes an application, expanding the filter through the
    /// configured [`SubjectMap`](infobus_router::SubjectMap) first: one
    /// call on `EQUITY.IBM` may materialize sibling subscriptions on
    /// every synonym/broadening of the filter. The returned id is the
    /// *family head*; unsubscribing it removes the whole family.
    pub(crate) fn subscribe_app_expanded(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        filter: &str,
        pred: Option<Arc<CompiledPredicate>>,
    ) -> Result<SubscriptionId, crate::BusError> {
        let expanded: Vec<String> = match self.engine.config().semantic_map() {
            Some(m) => m.expand_filter(filter),
            None => vec![filter.to_owned()],
        };
        let mut parsed = Vec::with_capacity(expanded.len());
        for f in &expanded {
            parsed.push(SubjectFilter::new(f)?);
        }
        let mut ids = Vec::with_capacity(parsed.len());
        for f in &parsed {
            ids.push(self.subscribe_app(net, app_idx, f, pred.clone()));
        }
        let primary = ids[0];
        if ids.len() > 1 {
            self.engine.stats.sem_expanded_filters += (ids.len() - 1) as u64;
            self.expansions.insert(primary, ids.split_off(1));
        }
        Ok(primary)
    }

    pub(crate) fn subscribe_app(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        filter: &SubjectFilter,
        pred: Option<Arc<CompiledPredicate>>,
    ) -> SubscriptionId {
        let id = self.trie.insert(filter, SubTarget::App { app_idx });
        self.sub_times.insert(id, net.now());
        if let Some(Some(meta)) = self.app_meta.get_mut(app_idx) {
            meta.subs.push(id);
        }
        if let Some(p) = &pred {
            self.sub_preds.insert(id, Arc::clone(p));
        }
        self.announce_add(net, filter, id, pred);
        id
    }

    pub(crate) fn subscribe_internal(
        &mut self,
        net: &mut Ctx<'_>,
        filter: &SubjectFilter,
        target: SubTarget,
    ) -> SubscriptionId {
        let id = self.trie.insert(filter, target);
        self.sub_times.insert(id, net.now());
        self.announce_add(net, filter, id, None);
        id
    }

    pub(crate) fn unsubscribe(&mut self, net: &mut Ctx<'_>, id: SubscriptionId) {
        // Semantic expansion families fall together: removing the head
        // removes every sibling the SubjectMap materialized.
        if let Some(extras) = self.expansions.remove(&id) {
            for extra in extras {
                self.unsubscribe_one(net, extra);
            }
        }
        self.unsubscribe_one(net, id);
    }

    fn unsubscribe_one(&mut self, net: &mut Ctx<'_>, id: SubscriptionId) {
        let mut filter: Option<SubjectFilter> = None;
        self.trie.for_each(|sid, f, _| {
            if sid == id {
                filter = Some(f.clone());
            }
        });
        if self.trie.remove(id).is_some() {
            self.sub_times.remove(&id);
            self.sub_preds.remove(&id);
            if let Some(f) = filter {
                self.announce_remove(net, &f, id);
            }
            for meta in self.app_meta.iter_mut().flatten() {
                meta.subs.retain(|s| *s != id);
            }
        }
    }

    pub(crate) fn known_subscriptions(&self) -> Vec<SubjectFilter> {
        let mut seen: HashSet<String> = HashSet::new();
        let mut out = Vec::new();
        for f in self.my_filters.keys() {
            if seen.insert(f.clone()) {
                if let Ok(filter) = SubjectFilter::new(f) {
                    out.push(filter);
                }
            }
        }
        for peers in self.peer_subs.values() {
            for (s, pi) in peers {
                if seen.insert(s.clone()) {
                    out.push(pi.filter.clone());
                }
            }
        }
        out.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        out
    }

    /// The earliest creation time among local subscriptions matching
    /// `subject` (data, control, responder, or service entries alike).
    /// Feeds the engine's first-contact entitlement checks.
    pub(crate) fn earliest_matching_sub(&self, subject: &Subject) -> Option<Micros> {
        self.trie
            .matches(subject)
            .filter_map(|(id, _)| self.sub_times.get(&id).copied())
            .min()
    }

    pub(crate) fn handle_sub_announce(
        &mut self,
        host: u32,
        full: bool,
        add: Vec<AnnounceEntry>,
        remove: Vec<String>,
    ) {
        if host == self.host32 {
            return;
        }
        let entry = self.peer_subs.entry(host).or_default();
        if full {
            entry.clear();
        }
        for e in add {
            if let Ok(filter) = SubjectFilter::new(&e.filter) {
                // A malformed predicate decodes to `None` — unfiltered,
                // the direction that can only over-deliver.
                let pred = if e.pred.is_empty() {
                    None
                } else {
                    CompiledPredicate::from_bytes(&e.pred).ok().map(Arc::new)
                };
                entry.insert(e.filter, PeerInterest { filter, pred });
            }
        }
        for f in remove {
            entry.remove(&f);
        }
    }
}
