//! Interest management: the local subject trie, debounced subscription
//! announcements, and the peer-daemon gossip tables.
//!
//! This is driver state, not engine state: the trie routes deliveries to
//! application slots, and announcements ride the simulated broadcast
//! segment. The engine only sees the *derived* facts (entitlement
//! verdicts, per-subject interest snapshots).

use std::collections::HashSet;

use infobus_netsim::Ctx;
use infobus_subject::{Subject, SubjectFilter, SubscriptionId};
use infobus_types::Value;

use crate::daemon::DaemonState;
use crate::engine::Micros;
use crate::msg::Packet;

/// What a trie entry routes to.
#[derive(Debug, Clone)]
pub(crate) enum SubTarget {
    /// A data subscription of a local application.
    App { app_idx: usize },
    /// A discovery responder ("I am") with its announced info.
    Responder { app_idx: usize, info: Value },
    /// A locally exported service (answers RMI queries on the subject).
    Service { svc_idx: usize },
    /// A transient control subscription for a pending discovery or RMI
    /// call (lets offer/announce envelopes through the interest filter).
    Control,
}

/// Debounce delay for subscription announcements.
const ANN_FLUSH_DELAY_US: Micros = 5_000;

impl DaemonState {
    fn announce_add(&mut self, net: &mut Ctx<'_>, filter: &SubjectFilter) {
        let is_new = {
            let count = self
                .my_filters
                .entry(filter.as_str().to_owned())
                .or_insert(0);
            *count += 1;
            *count == 1
        };
        if is_new {
            self.pending_announce_add.push(filter.as_str().to_owned());
            self.arm_announce_flush(net);
        }
    }

    /// Debounces announcements: thousands of subscriptions made in one
    /// handler (Figure 8's 10,000-subject consumers) travel in one packet.
    fn arm_announce_flush(&mut self, net: &mut Ctx<'_>) {
        if !self.announce_flush_armed {
            self.announce_flush_armed = true;
            net.set_timer(ANN_FLUSH_DELAY_US, crate::daemon::TOK_ANN_FLUSH);
        }
    }

    pub(crate) fn flush_announcements(&mut self, net: &mut Ctx<'_>) {
        self.announce_flush_armed = false;
        if self.pending_announce_add.is_empty() && self.pending_announce_remove.is_empty() {
            return;
        }
        let add = std::mem::take(&mut self.pending_announce_add);
        let remove = std::mem::take(&mut self.pending_announce_remove);
        self.send_packet_broadcast(
            net,
            &Packet::SubAnnounce {
                host: self.host32,
                full: false,
                add,
                remove,
            },
        );
    }

    fn announce_remove(&mut self, net: &mut Ctx<'_>, filter: &SubjectFilter) {
        let now_zero = match self.my_filters.get_mut(filter.as_str()) {
            Some(count) => {
                *count -= 1;
                *count == 0
            }
            None => false,
        };
        if now_zero {
            self.my_filters.remove(filter.as_str());
            self.pending_announce_remove
                .push(filter.as_str().to_owned());
            self.arm_announce_flush(net);
        }
    }

    pub(crate) fn announce_full(&mut self, net: &mut Ctx<'_>) {
        let add: Vec<String> = self.my_filters.keys().cloned().collect();
        self.send_packet_broadcast(
            net,
            &Packet::SubAnnounce {
                host: self.host32,
                full: true,
                add,
                remove: vec![],
            },
        );
    }

    pub(crate) fn subscribe_app(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        filter: &SubjectFilter,
    ) -> SubscriptionId {
        let id = self.trie.insert(filter, SubTarget::App { app_idx });
        self.sub_times.insert(id, net.now());
        if let Some(Some(meta)) = self.app_meta.get_mut(app_idx) {
            meta.subs.push(id);
        }
        self.announce_add(net, filter);
        id
    }

    pub(crate) fn subscribe_internal(
        &mut self,
        net: &mut Ctx<'_>,
        filter: &SubjectFilter,
        target: SubTarget,
    ) -> SubscriptionId {
        let id = self.trie.insert(filter, target);
        self.sub_times.insert(id, net.now());
        self.announce_add(net, filter);
        id
    }

    pub(crate) fn unsubscribe(&mut self, net: &mut Ctx<'_>, id: SubscriptionId) {
        let mut filter: Option<SubjectFilter> = None;
        self.trie.for_each(|sid, f, _| {
            if sid == id {
                filter = Some(f.clone());
            }
        });
        if self.trie.remove(id).is_some() {
            self.sub_times.remove(&id);
            if let Some(f) = filter {
                self.announce_remove(net, &f);
            }
            for meta in self.app_meta.iter_mut().flatten() {
                meta.subs.retain(|s| *s != id);
            }
        }
    }

    pub(crate) fn known_subscriptions(&self) -> Vec<SubjectFilter> {
        let mut seen: HashSet<String> = HashSet::new();
        let mut out = Vec::new();
        for f in self.my_filters.keys() {
            if seen.insert(f.clone()) {
                if let Ok(filter) = SubjectFilter::new(f) {
                    out.push(filter);
                }
            }
        }
        for peers in self.peer_subs.values() {
            for (s, f) in peers {
                if seen.insert(s.clone()) {
                    out.push(f.clone());
                }
            }
        }
        out.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        out
    }

    /// The earliest creation time among local subscriptions matching
    /// `subject` (data, control, responder, or service entries alike).
    /// Feeds the engine's first-contact entitlement checks.
    pub(crate) fn earliest_matching_sub(&self, subject: &Subject) -> Option<Micros> {
        self.trie
            .matches(subject)
            .filter_map(|(id, _)| self.sub_times.get(&id).copied())
            .min()
    }

    pub(crate) fn handle_sub_announce(
        &mut self,
        host: u32,
        full: bool,
        add: Vec<String>,
        remove: Vec<String>,
    ) {
        if host == self.host32 {
            return;
        }
        let entry = self.peer_subs.entry(host).or_default();
        if full {
            entry.clear();
        }
        for f in add {
            if let Ok(filter) = SubjectFilter::new(&f) {
                entry.insert(f, filter);
            }
        }
        for f in remove {
            entry.remove(&f);
        }
    }
}
