//! Remote method invocation (§3.3): subject-named servers, discovery by
//! publication, point-to-point request/reply, fail-over, and server-side
//! deduplication.
//!
//! RMI is driver machinery rather than engine state: calls ride simulated
//! connections, windows ride dynamic timers, and only the counters live
//! in the engine's [`BusStats`](crate::engine::BusStats).

use std::collections::{HashMap, HashSet, VecDeque};

use infobus_netsim::{ConnId, Ctx, SockAddr};
use infobus_subject::{Subject, SubjectFilter, SubscriptionId};
use infobus_types::{wire, Value};

use crate::apps::{AppEvent, TimerTarget};
use crate::daemon::{BusDaemon, DaemonState, RMI_PORT};
use crate::engine::discovery::PendingDiscovery;
use crate::envelope::{Envelope, EnvelopeKind};
use crate::interest::SubTarget;
use crate::msg::RmiMsg;
use crate::rmi::{CallId, Offer, RetryMode, RmiError, SelectionPolicy, ServiceObject};
use crate::{BusError, QoS};

use crate::engine::Micros;

/// Cap on per-service RMI deduplication entries.
const DEDUP_CAP: usize = 1024;

pub(crate) enum CallPhase {
    Discover,
    Connecting { conn: ConnId },
    Done,
}

pub(crate) struct CallState {
    app_idx: usize,
    subject: Subject,
    op: String,
    args: Vec<Value>,
    policy: SelectionPolicy,
    retry: RetryMode,
    /// Virtual time the call was issued (feeds the latency histogram).
    started: Micros,
    attempts: u32,
    offers: Vec<Offer>,
    tried: HashSet<u32>,
    rediscovered: bool,
    pub(crate) phase: CallPhase,
    temp_sub: Option<SubscriptionId>,
    #[allow(dead_code)]
    timeout_timer: Option<u64>,
}

pub(crate) struct SvcMeta {
    pub(crate) subject: String,
    pub(crate) app_idx: usize,
    outstanding: i64,
    dedup: HashMap<(u32, String, u64), Vec<u8>>,
    dedup_order: VecDeque<(u32, String, u64)>,
}

impl DaemonState {
    // ----- discovery windows -----------------------------------------------

    pub(crate) fn discover(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        subject: &Subject,
        token: u64,
    ) -> Result<(), BusError> {
        let corr = self.next_corr;
        self.next_corr += 1;
        self.engine.stats.discovery_rounds += 1;
        let temp_sub =
            self.subscribe_internal(net, &SubjectFilter::exact(subject), SubTarget::Control);
        self.engine.discovery_start(
            corr,
            PendingDiscovery {
                app_idx,
                token,
                replies: Vec::new(),
                temp_sub,
            },
        );
        // "Who's out there?" is itself a publication on the subject.
        self.publish_payload(
            net,
            app_idx,
            subject,
            QoS::Reliable,
            EnvelopeKind::DiscoverQuery,
            corr,
            wire::marshal_value(&Value::Nil),
        )?;
        let window = self.engine.config().discovery_window_us;
        self.dyn_timer(net, window, TimerTarget::DiscoveryClose { corr });
        Ok(())
    }

    pub(crate) fn add_discovery_responder(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        filter: &SubjectFilter,
        info: Value,
    ) {
        self.subscribe_internal(net, filter, SubTarget::Responder { app_idx, info });
    }

    /// A "Who's out there?" query arrived: matching responders publish
    /// "I am" on the same subject.
    pub(crate) fn answer_discovery(&mut self, net: &mut Ctx<'_>, env: &Envelope) {
        let subject = &env.subject;
        let responders: Vec<(usize, Value)> = self
            .trie
            .matches(subject)
            .filter_map(|(_, t)| match t {
                SubTarget::Responder { app_idx, info } => Some((*app_idx, info.clone())),
                _ => None,
            })
            .collect();
        for (app_idx, info) in responders {
            let _ = self.publish_payload(
                net,
                app_idx,
                subject,
                QoS::Reliable,
                EnvelopeKind::DiscoverAnnounce,
                env.corr,
                wire::marshal_value(&info),
            );
        }
    }

    pub(crate) fn close_discovery(&mut self, net: &mut Ctx<'_>, corr: u64) {
        if let Some(d) = self.engine.discovery_close(corr) {
            self.unsubscribe(net, d.temp_sub);
            self.pending.push_back(AppEvent::Discovery {
                app_idx: d.app_idx,
                token: d.token,
                replies: d.replies,
            });
        }
    }

    // ----- RMI client ------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rmi_call(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        subject: &Subject,
        op: &str,
        args: Vec<Value>,
        policy: SelectionPolicy,
        retry: RetryMode,
    ) -> CallId {
        let call_id = self.next_corr;
        self.next_corr += 1;
        self.engine.stats.rmi_calls += 1;
        let temp_sub =
            self.subscribe_internal(net, &SubjectFilter::exact(subject), SubTarget::Control);
        self.calls.insert(
            call_id,
            CallState {
                app_idx,
                subject: subject.clone(),
                op: op.to_owned(),
                args,
                policy,
                retry,
                started: net.now(),
                attempts: 0,
                offers: Vec::new(),
                tried: HashSet::new(),
                rediscovered: false,
                phase: CallPhase::Discover,
                temp_sub: Some(temp_sub),
                timeout_timer: None,
            },
        );
        // The client searches for all servers by publishing a query
        // message on a subject specific to that service (§3.3, Figure 2).
        let _ = self.publish_payload(
            net,
            app_idx,
            subject,
            QoS::Reliable,
            EnvelopeKind::RmiQuery,
            call_id,
            wire::marshal_value(&Value::Nil),
        );
        let window = self.engine.config().offer_window_us;
        self.dyn_timer(net, window, TimerTarget::OfferWindowClose { call: call_id });
        CallId(call_id)
    }

    /// An RMI query arrived: local services matching the subject publish
    /// their point-to-point address.
    pub(crate) fn answer_rmi_query(&mut self, net: &mut Ctx<'_>, env: &Envelope) {
        let subject = &env.subject;
        let services: Vec<usize> = self
            .trie
            .matches(subject)
            .filter_map(|(_, t)| match t {
                SubTarget::Service { svc_idx } => Some(*svc_idx),
                _ => None,
            })
            .collect();
        for svc_idx in services {
            let Some(Some(meta)) = self.svc_meta.get(svc_idx) else {
                continue;
            };
            let offer = Value::List(vec![
                Value::I64(self.host32 as i64),
                Value::I64(RMI_PORT as i64),
                Value::I64(meta.outstanding),
            ]);
            let app_idx = meta.app_idx;
            let _ = self.publish_payload(
                net,
                app_idx,
                subject,
                QoS::Reliable,
                EnvelopeKind::RmiOffer,
                env.corr,
                wire::marshal_value(&offer),
            );
        }
    }

    pub(crate) fn collect_offer(&mut self, net: &mut Ctx<'_>, env: &Envelope) {
        let Some(call) = self.calls.get_mut(&env.corr) else {
            return;
        };
        if !matches!(call.phase, CallPhase::Discover) {
            return;
        }
        let Ok(value) = wire::unmarshal_value(&env.payload) else {
            return;
        };
        let Some(items) = value.as_list() else { return };
        if items.len() < 3 {
            return;
        }
        let (Some(host), Some(port), Some(load)) =
            (items[0].as_i64(), items[1].as_i64(), items[2].as_i64())
        else {
            return;
        };
        call.offers.push(Offer {
            host: host as u32,
            port: port as u16,
            load,
        });
        if matches!(call.policy, SelectionPolicy::First) {
            self.try_connect(net, env.corr);
        }
    }

    pub(crate) fn offer_window_closed(&mut self, net: &mut Ctx<'_>, call_id: u64) {
        let Some(call) = self.calls.get(&call_id) else {
            return;
        };
        if matches!(call.phase, CallPhase::Discover) {
            if call.offers.is_empty() {
                self.complete_call(net, call_id, Err(RmiError::NoServer));
            } else {
                self.try_connect(net, call_id);
            }
        }
    }

    fn try_connect(&mut self, net: &mut Ctx<'_>, call_id: u64) {
        let host32 = self.host32;
        let chosen: Option<Offer> = {
            let Some(call) = self.calls.get(&call_id) else {
                return;
            };
            let candidates: Vec<&Offer> = call
                .offers
                .iter()
                .filter(|o| !call.tried.contains(&o.host))
                .collect();
            match call.policy {
                SelectionPolicy::First => candidates.first().map(|o| (*o).clone()),
                SelectionPolicy::Random => {
                    if candidates.is_empty() {
                        None
                    } else {
                        let idx = (net.random() * candidates.len() as f64) as usize;
                        candidates
                            .get(idx.min(candidates.len() - 1))
                            .map(|o| (*o).clone())
                    }
                }
                SelectionPolicy::LeastLoaded => candidates
                    .iter()
                    .min_by_key(|o| o.load)
                    .map(|o| (*o).clone()),
            }
        };
        let Some(offer) = chosen else {
            self.complete_call(net, call_id, Err(RmiError::NoServer));
            return;
        };
        let (app_idx, subject, op, args) = {
            let Some(call) = self.calls.get_mut(&call_id) else {
                return;
            };
            call.tried.insert(offer.host);
            call.attempts += 1;
            (
                call.app_idx,
                call.subject.clone(),
                call.op.clone(),
                call.args.clone(),
            )
        };
        // Arguments travel self-describing so the server can handle
        // instances of types it has never seen.
        let args_bytes: Result<Vec<Vec<u8>>, _> = {
            let registry = self.registry.borrow();
            args.iter()
                .map(|v| wire::marshal_self_describing(v, &registry))
                .collect()
        };
        let args_bytes = match args_bytes {
            Ok(b) => b,
            Err(e) => {
                self.complete_call(net, call_id, Err(RmiError::App(format!("marshal: {e}"))));
                return;
            }
        };
        let conn = net.connect(SockAddr::new(
            infobus_netsim::HostId(offer.host),
            offer.port,
        ));
        let request = RmiMsg::Request {
            call: (host32, self.app_name(app_idx), call_id),
            service: subject.as_str().to_owned(),
            op,
            args: args_bytes,
        };
        let _ = net.conn_send(conn, request.encode());
        self.conn_calls.insert(conn, call_id);
        let timeout = self.engine.config().rmi_timeout_us;
        let timer = self.dyn_timer(net, timeout, TimerTarget::RmiTimeout { call: call_id });
        if let Some(call) = self.calls.get_mut(&call_id) {
            call.phase = CallPhase::Connecting { conn };
            call.timeout_timer = Some(timer);
        }
    }

    pub(crate) fn call_failed(&mut self, net: &mut Ctx<'_>, call_id: u64, error: RmiError) {
        // Presence of `call_id` is established here and nothing below
        // removes it, so the later `.expect("checked above")` lookups are
        // invariant re-borrows, not fallible wire-driven accesses.
        let (retry, attempts, max) = match self.calls.get(&call_id) {
            Some(c) => (c.retry, c.attempts, self.engine.config().rmi_max_attempts),
            None => return,
        };
        if retry == RetryMode::Failover && attempts < max {
            // Fail over to another offered server with the same call id.
            let has_candidates = self
                .calls
                .get(&call_id)
                .map(|c| c.offers.iter().any(|o| !c.tried.contains(&o.host)))
                .unwrap_or(false);
            if has_candidates {
                self.try_connect(net, call_id);
                return;
            }
            // No untried servers: rediscover once.
            let rediscover = {
                let call = self.calls.get_mut(&call_id).expect("checked above");
                if !call.rediscovered {
                    call.rediscovered = true;
                    call.phase = CallPhase::Discover;
                    call.offers.clear();
                    call.tried.clear();
                    true
                } else {
                    false
                }
            };
            if rediscover {
                let (subject, app_idx) = {
                    let call = self.calls.get(&call_id).expect("checked above");
                    (call.subject.clone(), call.app_idx)
                };
                let _ = self.publish_payload(
                    net,
                    app_idx,
                    &subject,
                    QoS::Reliable,
                    EnvelopeKind::RmiQuery,
                    call_id,
                    wire::marshal_value(&Value::Nil),
                );
                let window = self.engine.config().offer_window_us;
                self.dyn_timer(net, window, TimerTarget::OfferWindowClose { call: call_id });
                return;
            }
        }
        self.complete_call(net, call_id, Err(error));
    }

    pub(crate) fn complete_call(
        &mut self,
        net: &mut Ctx<'_>,
        call_id: u64,
        result: Result<Value, RmiError>,
    ) {
        let Some(mut call) = self.calls.remove(&call_id) else {
            return;
        };
        self.engine
            .stats
            .rmi_latency
            .record(net.now().saturating_sub(call.started));
        if let CallPhase::Connecting { conn } = call.phase {
            self.conn_calls.remove(&conn);
            net.conn_close(conn);
        }
        call.phase = CallPhase::Done;
        if let Some(sub) = call.temp_sub.take() {
            self.unsubscribe(net, sub);
        }
        self.pending.push_back(AppEvent::RmiReply {
            app_idx: call.app_idx,
            call: CallId(call_id),
            result,
        });
    }

    // ----- RMI server ------------------------------------------------------

    pub(crate) fn export_service(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        subject: &Subject,
        service: Box<dyn ServiceObject>,
    ) -> Result<(), BusError> {
        if self.services.contains_key(subject.as_str()) {
            return Err(BusError::Duplicate(subject.as_str().to_owned()));
        }
        let svc_idx = self.svc_meta.len();
        self.svc_meta.push(Some(SvcMeta {
            subject: subject.as_str().to_owned(),
            app_idx,
            outstanding: 0,
            dedup: HashMap::new(),
            dedup_order: VecDeque::new(),
        }));
        self.services.insert(subject.as_str().to_owned(), svc_idx);
        self.subscribe_internal(
            net,
            &SubjectFilter::exact(subject),
            SubTarget::Service { svc_idx },
        );
        self.pending_services.push((svc_idx, service));
        Ok(())
    }

    pub(crate) fn withdraw_service(
        &mut self,
        net: &mut Ctx<'_>,
        subject: &str,
    ) -> Result<(), BusError> {
        let Some(svc_idx) = self.services.remove(subject) else {
            return Err(BusError::NotFound(format!("service {subject}")));
        };
        self.svc_meta[svc_idx] = None;
        // Remove the trie entry pointing at this service.
        let mut to_remove = Vec::new();
        self.trie.for_each(|id, _, t| {
            if matches!(t, SubTarget::Service { svc_idx: s } if *s == svc_idx) {
                to_remove.push(id);
            }
        });
        for id in to_remove {
            self.unsubscribe(net, id);
        }
        self.dropped_services.push(svc_idx);
        Ok(())
    }

    /// Handles an incoming RMI request on a server connection.
    pub(crate) fn handle_rmi_request(
        &mut self,
        net: &mut Ctx<'_>,
        conn: ConnId,
        call: (u32, String, u64),
        service: String,
        op: String,
        args: Vec<Vec<u8>>,
    ) {
        let Some(&svc_idx) = self.services.get(&service) else {
            let reply = RmiMsg::Reply {
                call,
                ok: false,
                value: wire::marshal_value(&Value::Nil),
                error: format!("bad-operation: no service {service} here"),
            };
            let _ = net.conn_send(conn, reply.encode());
            return;
        };
        let Some(Some(meta)) = self.svc_meta.get_mut(svc_idx) else {
            return;
        };
        if let Some(cached) = meta.dedup.get(&call) {
            // The retry layer: duplicate requests get the cached reply,
            // so the operation executes at most once per server.
            self.engine.stats.rmi_deduped += 1;
            let bytes = cached.clone();
            let _ = net.conn_send(conn, bytes);
            return;
        }
        meta.outstanding += 1;
        self.pending.push_back(AppEvent::SvcInvoke {
            svc_idx,
            conn,
            call,
            op,
            args,
        });
    }
}

impl BusDaemon {
    pub(crate) fn invoke_service(
        &mut self,
        net: &mut Ctx<'_>,
        svc_idx: usize,
        conn: ConnId,
        call: (u32, String, u64),
        op: String,
        args: Vec<Vec<u8>>,
    ) {
        let Some(mut service) = self.services.get_mut(svc_idx).and_then(Option::take) else {
            return;
        };
        // Unmarshal the self-describing arguments, learning any carried
        // types into this daemon's registry.
        let args: Result<Vec<Value>, _> = {
            let mut registry = self.state.registry.borrow_mut();
            args.iter()
                .map(|b| wire::unmarshal(b, &mut registry))
                .collect()
        };
        let args = match args {
            Ok(a) => a,
            Err(e) => {
                let reply = RmiMsg::Reply {
                    call,
                    ok: false,
                    value: wire::marshal_value(&Value::Nil),
                    error: format!("bad-operation: malformed arguments: {e}"),
                };
                let _ = net.conn_send(conn, reply.encode());
                self.services[svc_idx] = Some(service);
                return;
            }
        };
        let app_idx = self
            .state
            .svc_meta
            .get(svc_idx)
            .and_then(|m| m.as_ref())
            .map(|m| m.app_idx)
            .unwrap_or(usize::MAX);
        // Validate the operation against the self-describing interface.
        let descriptor = service.descriptor();
        let known = descriptor.own_operation(&op);
        let result = match known {
            None => Err(RmiError::BadOperation(format!(
                "{op} is not in the interface"
            ))),
            Some(sig) if sig.params.len() != args.len() => Err(RmiError::BadOperation(format!(
                "{op} expects {} arguments, got {}",
                sig.params.len(),
                args.len()
            ))),
            Some(_) => {
                let mut bus = crate::app::BusCtx {
                    d: &mut self.state,
                    net,
                    app_idx,
                };
                service.invoke(&op, args, &mut bus)
            }
        };
        self.state.engine.stats.rmi_served += 1;
        let reply = match result {
            Ok(value) => {
                let bytes = wire::marshal_self_describing(&value, &self.state.registry.borrow())
                    .unwrap_or_else(|_| wire::marshal_value(&Value::Nil));
                RmiMsg::Reply {
                    call: call.clone(),
                    ok: true,
                    value: bytes,
                    error: String::new(),
                }
            }
            Err(e) => RmiMsg::Reply {
                call: call.clone(),
                ok: false,
                value: wire::marshal_value(&Value::Nil),
                error: match &e {
                    RmiError::BadOperation(m) => format!("bad-operation: {m}"),
                    other => format!("app: {other}"),
                },
            },
        };
        let bytes = reply.encode();
        if let Some(Some(meta)) = self.state.svc_meta.get_mut(svc_idx) {
            meta.outstanding -= 1;
            meta.dedup.insert(call.clone(), bytes.clone());
            meta.dedup_order.push_back(call);
            while meta.dedup_order.len() > DEDUP_CAP {
                if let Some(old) = meta.dedup_order.pop_front() {
                    meta.dedup.remove(&old);
                }
            }
        }
        let _ = net.conn_send(conn, bytes);
        // Put the service back if it was not withdrawn meanwhile.
        if self
            .state
            .svc_meta
            .get(svc_idx)
            .is_some_and(Option::is_some)
        {
            self.services[svc_idx] = Some(service);
        }
    }
}
