//! Protocol counters: the observability face of the engine.
//!
//! [`BusStats`] is maintained by the pure protocol engine and read by
//! drivers, tests, and the bench harness. A snapshot converts to a
//! self-describing [`DataObject`] with [`BusStats::to_object`]; the netsim
//! daemon publishes that object periodically on
//! `_INBUS.STATS.<host>.<daemon>` (see
//! [`STATS_SUBJECT_PREFIX`]).

use infobus_types::{DataObject, TypeDescriptor, TypeRegistry, Value, ValueType};

use super::Micros;

/// Reserved subject prefix of the observability plane: every daemon with
/// [`BusConfig::stats_period_us`](crate::BusConfig::stats_period_us) set
/// publishes its [`BusStats`] snapshot on `_INBUS.STATS.<host>.<daemon>`.
/// Subscribe to `_INBUS.STATS.>` to watch the whole bus.
pub const STATS_SUBJECT_PREFIX: &str = "_INBUS.STATS";

/// A small fixed-bucket histogram of RMI call latencies (request issue
/// to reply delivery, in microseconds).
///
/// Bucket upper bounds are [`RmiLatency::BOUNDS_US`]; the final bucket is
/// unbounded. The histogram also tracks count and sum, so the mean
/// survives the trip through a stats snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RmiLatency {
    buckets: [u64; 8],
    count: u64,
    sum_us: u64,
}

impl RmiLatency {
    /// Upper bounds (inclusive, µs) of the first seven buckets; the
    /// eighth bucket collects everything slower.
    pub const BOUNDS_US: [u64; 7] = [1_000, 2_000, 5_000, 10_000, 50_000, 200_000, 1_000_000];

    /// Records one completed call's latency.
    pub fn record(&mut self, us: Micros) {
        let idx = Self::BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(Self::BOUNDS_US.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us += us;
    }

    /// Per-bucket counts (aligned with [`RmiLatency::BOUNDS_US`] plus the
    /// overflow bucket).
    pub fn buckets(&self) -> &[u64; 8] {
        &self.buckets
    }

    /// Number of recorded calls.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean recorded latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Adds another histogram into this one, bucket by bucket. Because
    /// every shard uses the same [`RmiLatency::BOUNDS_US`], merging shard
    /// histograms loses nothing: counts, sums, and per-bucket tallies all
    /// add.
    pub fn merge_from(&mut self, other: &RmiLatency) {
        for (slot, add) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += add;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
    }
}

/// Counters exposed by a daemon (used by tests and the bench harness).
///
/// A snapshot converts to a self-describing [`DataObject`] with
/// [`BusStats::to_object`]; daemons with
/// [`BusConfig::stats_period_us`](crate::BusConfig::stats_period_us) set
/// publish that object periodically on `_INBUS.STATS.<host>.<daemon>`
/// (see [`STATS_SUBJECT_PREFIX`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Envelopes published by local applications.
    pub published: u64,
    /// Payload bytes published by local applications.
    pub published_bytes: u64,
    /// Messages delivered to local applications.
    pub delivered: u64,
    /// Payload bytes delivered to local applications.
    pub delivered_bytes: u64,
    /// Broadcast envelopes ignored because nothing local matched.
    pub filtered: u64,
    /// NAKs sent (gaps detected).
    pub naks_sent: u64,
    /// NAK packets received and answered as a publisher.
    pub naks_served: u64,
    /// Envelopes retransmitted in answer to NAKs.
    pub retransmitted: u64,
    /// Gap-skips issued (history no longer retained).
    pub gapskips_sent: u64,
    /// Sequences abandoned after a gap-skip (at-most-once path).
    pub gaps_skipped: u64,
    /// Duplicate envelopes dropped.
    pub dups_dropped: u64,
    /// Acks sent for guaranteed envelopes.
    pub acks_sent: u64,
    /// Acks received for guaranteed envelopes we published.
    pub gd_acks_received: u64,
    /// Guaranteed envelopes currently pending acknowledgment.
    pub gd_pending: u64,
    /// Guaranteed envelopes fully acknowledged and released.
    pub gd_completed: u64,
    /// Guaranteed retransmission rounds performed.
    pub gd_retries: u64,
    /// Envelopes whose payload failed to unmarshal.
    pub unmarshal_errors: u64,
    /// Batches flushed to the wire.
    pub batch_flushes: u64,
    /// Envelopes carried by those batches (mean occupancy =
    /// [`BusStats::mean_batch_occupancy`]).
    pub batch_envelopes: u64,
    /// Discovery rounds started by local applications.
    pub discovery_rounds: u64,
    /// RMI calls issued by local applications.
    pub rmi_calls: u64,
    /// RMI requests served.
    pub rmi_served: u64,
    /// RMI duplicate requests answered from the dedup cache.
    pub rmi_deduped: u64,
    /// Latency histogram of completed RMI calls.
    pub rmi_latency: RmiLatency,
    /// Envelopes forwarded over information-router links.
    pub router_forwarded: u64,
    /// Subscription summaries sent over router links.
    pub route_summaries_sent: u64,
    /// Subscription summaries received from router links.
    pub route_summaries_recv: u64,
    /// Forwarded publications dropped by the router's loop suppression
    /// (origin check, dedup window, hop exhaustion).
    pub route_loops_suppressed: u64,
    /// Route entries flushed because their summary aged out without a
    /// soft-state refresh.
    pub route_stale_aged: u64,
    /// Router tables rebuilt by the self-stabilization pass.
    pub route_stab_repairs: u64,
    /// Stats snapshots published on the observability plane.
    pub stats_published: u64,
    /// Messages currently queued across subscriber queues (a gauge,
    /// sampled when the snapshot is taken; real-thread drivers only).
    pub sub_queue_depth: u64,
    /// Messages evicted from full subscriber queues under the drop-oldest
    /// backpressure policy
    /// ([`BusConfig::subscriber_queue_cap`](crate::BusConfig::subscriber_queue_cap)).
    pub sub_queue_dropped: u64,
    /// Datagrams sent by a socket transport (UDP driver).
    pub net_tx_packets: u64,
    /// Bytes sent by a socket transport.
    pub net_tx_bytes: u64,
    /// Datagrams received by a socket transport.
    pub net_rx_packets: u64,
    /// Bytes received by a socket transport.
    pub net_rx_bytes: u64,
    /// Datagrams abandoned after send retries were exhausted.
    pub net_send_errors: u64,
    /// Send retries performed after transient socket errors.
    pub net_send_retries: u64,
    /// Received datagrams that failed frame/packet decoding (truncation,
    /// bad magic, version mismatch, garbage).
    pub net_decode_errors: u64,
    /// Received datagrams deliberately dropped by the transport's
    /// loss-injection knob (testing/fault drills).
    pub net_recv_dropped: u64,
    /// Thin-client sessions currently live on the edge session broker (a
    /// gauge, like `gd_pending`).
    pub sess_active: u64,
    /// Sessions admitted by a `bus-v1` hello handshake.
    pub sess_opened: u64,
    /// Hello frames rejected (wrong protocol, bad capability token, or a
    /// session already bound to the connection).
    pub sess_rejected: u64,
    /// Sessions closed by an explicit client `bye`.
    pub sess_closed: u64,
    /// Sessions evicted by the freshness scan after
    /// [`BusConfig::session_timeout_us`](crate::BusConfig::session_timeout_us)
    /// of silence.
    pub sess_evicted: u64,
    /// Heartbeat frames received from sessions.
    pub sess_heartbeats: u64,
    /// Publications accepted from sessions (edge fan-in).
    pub sess_published: u64,
    /// Deliveries sent to sessions (edge fan-out; one matched publication
    /// delivered to N sessions counts N).
    pub sess_delivered: u64,
    /// Deliveries buffered instead of sent because the session exceeded
    /// its unacknowledged cursor lag
    /// ([`BusConfig::session_cursor_lag`](crate::BusConfig::session_cursor_lag)).
    pub sess_paused: u64,
    /// Buffered deliveries dropped (oldest first) after a paused session's
    /// buffer overflowed its bound.
    pub sess_dropped: u64,
    /// Guaranteed envelopes appended to the durable ledger (drivers with
    /// [`BusConfig::durable_dir`](crate::BusConfig::durable_dir) set).
    pub gd_ledger_appends: u64,
    /// Bytes written to durable ledger segments (frames of both kinds).
    pub gd_ledger_bytes: u64,
    /// Ledger segment files currently on disk (a gauge, summed across
    /// shards).
    pub gd_ledger_segments: u64,
    /// Ledger compaction passes performed.
    pub gd_ledger_compactions: u64,
    /// Valid ledger frames replayed by open-time recovery.
    pub gd_ledger_recovered: u64,
    /// Torn or corrupt ledger tails truncated during recovery.
    pub gd_ledger_truncations: u64,
    /// Distinct subjects interned in the daemon's
    /// [`SubjectTable`](infobus_subject::SubjectTable) (a gauge, sampled
    /// at snapshot time).
    pub subj_interned: u64,
    /// Marshal buffers served by recycling a pooled allocation
    /// ([`BufPool`](crate::buf::BufPool) hits; real-thread drivers).
    pub buf_pool_hits: u64,
    /// Marshal buffers that required a fresh allocation (pool misses).
    pub buf_pool_misses: u64,
    /// Content-predicate evaluations performed (publish gate + delivery
    /// gate).
    pub filt_evals: u64,
    /// Publications suppressed at the publisher's daemon because every
    /// matching interest carried a rejecting predicate — never framed,
    /// never sequenced, never sent.
    pub filt_pub_suppressed: u64,
    /// Deliveries suppressed at the delivery gate (a matching
    /// subscription's own predicate rejected the payload).
    pub filt_delivery_suppressed: u64,
    /// Approximate payload bytes the publish gate kept off the wire
    /// (suppressed publications × approximate marshalled size).
    pub filt_suppressed_bytes: u64,
    /// Subjects and filters rewritten by the semantic
    /// [`SubjectMap`](infobus_router::SubjectMap) (synonym
    /// canonicalization at publish/subscribe boundaries).
    pub sem_canonicalized: u64,
    /// Extra trie insertions created by taxonomy broadening (one
    /// subscription fanning out to additional semantic filters).
    pub sem_expanded_filters: u64,
}

/// Attribute names of the `"BusStats"` descriptor, in declaration order.
/// One source of truth for registration, `to_object`, and `from_object`.
const STATS_COUNTERS: &[&str] = &[
    "published",
    "published_bytes",
    "delivered",
    "delivered_bytes",
    "filtered",
    "naks_sent",
    "naks_served",
    "retransmitted",
    "gapskips_sent",
    "gaps_skipped",
    "dups_dropped",
    "acks_sent",
    "gd_acks_received",
    "gd_pending",
    "gd_completed",
    "gd_retries",
    "unmarshal_errors",
    "batch_flushes",
    "batch_envelopes",
    "discovery_rounds",
    "rmi_calls",
    "rmi_served",
    "rmi_deduped",
    "router_forwarded",
    "route_summaries_sent",
    "route_summaries_recv",
    "route_loops_suppressed",
    "route_stale_aged",
    "route_stab_repairs",
    "stats_published",
    "sub_queue_depth",
    "sub_queue_dropped",
    "net_tx_packets",
    "net_tx_bytes",
    "net_rx_packets",
    "net_rx_bytes",
    "net_send_errors",
    "net_send_retries",
    "net_decode_errors",
    "net_recv_dropped",
    "sess_active",
    "sess_opened",
    "sess_rejected",
    "sess_closed",
    "sess_evicted",
    "sess_heartbeats",
    "sess_published",
    "sess_delivered",
    "sess_paused",
    "sess_dropped",
    "gd_ledger_appends",
    "gd_ledger_bytes",
    "gd_ledger_segments",
    "gd_ledger_compactions",
    "gd_ledger_recovered",
    "gd_ledger_truncations",
    "subj_interned",
    "buf_pool_hits",
    "buf_pool_misses",
    "filt_evals",
    "filt_pub_suppressed",
    "filt_delivery_suppressed",
    "filt_suppressed_bytes",
    "sem_canonicalized",
    "sem_expanded_filters",
];

impl BusStats {
    /// Adds every counter of `other` into this snapshot, including the
    /// RMI latency histogram. This is how per-shard snapshots combine
    /// into one daemon-level snapshot: monotonic counters sum, and the
    /// gauges (`gd_pending`, `sub_queue_depth`, `sess_active`) sum too
    /// because each shard (or broker) owns a disjoint slice of the
    /// pending set, the queues, and the sessions.
    pub fn merge_from(&mut self, other: &BusStats) {
        for name in STATS_COUNTERS {
            let add = other.counter(name);
            if let Some(slot) = self.counter_mut(name) {
                *slot += add;
            }
        }
        self.rmi_latency.merge_from(&other.rmi_latency);
    }

    /// Merges a set of snapshots (per-shard breakdowns, typically) into
    /// one combined snapshot.
    pub fn merged<'a>(snaps: impl IntoIterator<Item = &'a BusStats>) -> BusStats {
        let mut total = BusStats::default();
        for s in snaps {
            total.merge_from(s);
        }
        total
    }

    /// Mean envelopes per flushed batch (0 when batching never flushed).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batch_flushes == 0 {
            0.0
        } else {
            self.batch_envelopes as f64 / self.batch_flushes as f64
        }
    }

    fn counter(&self, name: &str) -> u64 {
        match name {
            "published" => self.published,
            "published_bytes" => self.published_bytes,
            "delivered" => self.delivered,
            "delivered_bytes" => self.delivered_bytes,
            "filtered" => self.filtered,
            "naks_sent" => self.naks_sent,
            "naks_served" => self.naks_served,
            "retransmitted" => self.retransmitted,
            "gapskips_sent" => self.gapskips_sent,
            "gaps_skipped" => self.gaps_skipped,
            "dups_dropped" => self.dups_dropped,
            "acks_sent" => self.acks_sent,
            "gd_acks_received" => self.gd_acks_received,
            "gd_pending" => self.gd_pending,
            "gd_completed" => self.gd_completed,
            "gd_retries" => self.gd_retries,
            "unmarshal_errors" => self.unmarshal_errors,
            "batch_flushes" => self.batch_flushes,
            "batch_envelopes" => self.batch_envelopes,
            "discovery_rounds" => self.discovery_rounds,
            "rmi_calls" => self.rmi_calls,
            "rmi_served" => self.rmi_served,
            "rmi_deduped" => self.rmi_deduped,
            "router_forwarded" => self.router_forwarded,
            "route_summaries_sent" => self.route_summaries_sent,
            "route_summaries_recv" => self.route_summaries_recv,
            "route_loops_suppressed" => self.route_loops_suppressed,
            "route_stale_aged" => self.route_stale_aged,
            "route_stab_repairs" => self.route_stab_repairs,
            "stats_published" => self.stats_published,
            "sub_queue_depth" => self.sub_queue_depth,
            "sub_queue_dropped" => self.sub_queue_dropped,
            "net_tx_packets" => self.net_tx_packets,
            "net_tx_bytes" => self.net_tx_bytes,
            "net_rx_packets" => self.net_rx_packets,
            "net_rx_bytes" => self.net_rx_bytes,
            "net_send_errors" => self.net_send_errors,
            "net_send_retries" => self.net_send_retries,
            "net_decode_errors" => self.net_decode_errors,
            "net_recv_dropped" => self.net_recv_dropped,
            "sess_active" => self.sess_active,
            "sess_opened" => self.sess_opened,
            "sess_rejected" => self.sess_rejected,
            "sess_closed" => self.sess_closed,
            "sess_evicted" => self.sess_evicted,
            "sess_heartbeats" => self.sess_heartbeats,
            "sess_published" => self.sess_published,
            "sess_delivered" => self.sess_delivered,
            "sess_paused" => self.sess_paused,
            "sess_dropped" => self.sess_dropped,
            "gd_ledger_appends" => self.gd_ledger_appends,
            "gd_ledger_bytes" => self.gd_ledger_bytes,
            "gd_ledger_segments" => self.gd_ledger_segments,
            "gd_ledger_compactions" => self.gd_ledger_compactions,
            "gd_ledger_recovered" => self.gd_ledger_recovered,
            "gd_ledger_truncations" => self.gd_ledger_truncations,
            "subj_interned" => self.subj_interned,
            "buf_pool_hits" => self.buf_pool_hits,
            "buf_pool_misses" => self.buf_pool_misses,
            "filt_evals" => self.filt_evals,
            "filt_pub_suppressed" => self.filt_pub_suppressed,
            "filt_delivery_suppressed" => self.filt_delivery_suppressed,
            "filt_suppressed_bytes" => self.filt_suppressed_bytes,
            "sem_canonicalized" => self.sem_canonicalized,
            "sem_expanded_filters" => self.sem_expanded_filters,
            _ => 0,
        }
    }

    fn counter_mut(&mut self, name: &str) -> Option<&mut u64> {
        Some(match name {
            "published" => &mut self.published,
            "published_bytes" => &mut self.published_bytes,
            "delivered" => &mut self.delivered,
            "delivered_bytes" => &mut self.delivered_bytes,
            "filtered" => &mut self.filtered,
            "naks_sent" => &mut self.naks_sent,
            "naks_served" => &mut self.naks_served,
            "retransmitted" => &mut self.retransmitted,
            "gapskips_sent" => &mut self.gapskips_sent,
            "gaps_skipped" => &mut self.gaps_skipped,
            "dups_dropped" => &mut self.dups_dropped,
            "acks_sent" => &mut self.acks_sent,
            "gd_acks_received" => &mut self.gd_acks_received,
            "gd_pending" => &mut self.gd_pending,
            "gd_completed" => &mut self.gd_completed,
            "gd_retries" => &mut self.gd_retries,
            "unmarshal_errors" => &mut self.unmarshal_errors,
            "batch_flushes" => &mut self.batch_flushes,
            "batch_envelopes" => &mut self.batch_envelopes,
            "discovery_rounds" => &mut self.discovery_rounds,
            "rmi_calls" => &mut self.rmi_calls,
            "rmi_served" => &mut self.rmi_served,
            "rmi_deduped" => &mut self.rmi_deduped,
            "router_forwarded" => &mut self.router_forwarded,
            "route_summaries_sent" => &mut self.route_summaries_sent,
            "route_summaries_recv" => &mut self.route_summaries_recv,
            "route_loops_suppressed" => &mut self.route_loops_suppressed,
            "route_stale_aged" => &mut self.route_stale_aged,
            "route_stab_repairs" => &mut self.route_stab_repairs,
            "stats_published" => &mut self.stats_published,
            "sub_queue_depth" => &mut self.sub_queue_depth,
            "sub_queue_dropped" => &mut self.sub_queue_dropped,
            "net_tx_packets" => &mut self.net_tx_packets,
            "net_tx_bytes" => &mut self.net_tx_bytes,
            "net_rx_packets" => &mut self.net_rx_packets,
            "net_rx_bytes" => &mut self.net_rx_bytes,
            "net_send_errors" => &mut self.net_send_errors,
            "net_send_retries" => &mut self.net_send_retries,
            "net_decode_errors" => &mut self.net_decode_errors,
            "net_recv_dropped" => &mut self.net_recv_dropped,
            "sess_active" => &mut self.sess_active,
            "sess_opened" => &mut self.sess_opened,
            "sess_rejected" => &mut self.sess_rejected,
            "sess_closed" => &mut self.sess_closed,
            "sess_evicted" => &mut self.sess_evicted,
            "sess_heartbeats" => &mut self.sess_heartbeats,
            "sess_published" => &mut self.sess_published,
            "sess_delivered" => &mut self.sess_delivered,
            "sess_paused" => &mut self.sess_paused,
            "sess_dropped" => &mut self.sess_dropped,
            "gd_ledger_appends" => &mut self.gd_ledger_appends,
            "gd_ledger_bytes" => &mut self.gd_ledger_bytes,
            "gd_ledger_segments" => &mut self.gd_ledger_segments,
            "gd_ledger_compactions" => &mut self.gd_ledger_compactions,
            "gd_ledger_recovered" => &mut self.gd_ledger_recovered,
            "gd_ledger_truncations" => &mut self.gd_ledger_truncations,
            "subj_interned" => &mut self.subj_interned,
            "buf_pool_hits" => &mut self.buf_pool_hits,
            "buf_pool_misses" => &mut self.buf_pool_misses,
            "filt_evals" => &mut self.filt_evals,
            "filt_pub_suppressed" => &mut self.filt_pub_suppressed,
            "filt_delivery_suppressed" => &mut self.filt_delivery_suppressed,
            "filt_suppressed_bytes" => &mut self.filt_suppressed_bytes,
            "sem_canonicalized" => &mut self.sem_canonicalized,
            "sem_expanded_filters" => &mut self.sem_expanded_filters,
            _ => return None,
        })
    }

    /// Registers the `"BusStats"` type descriptor (idempotent). Every
    /// daemon does this at start-up, so published snapshots travel
    /// self-describing and validate at any receiver.
    pub fn register_type(reg: &mut TypeRegistry) {
        if reg.contains("BusStats") {
            return;
        }
        let mut b = TypeDescriptor::builder("BusStats")
            .attribute("host", ValueType::Str)
            .attribute("daemon", ValueType::Str)
            .attribute("at_us", ValueType::I64);
        for name in STATS_COUNTERS {
            b = b.attribute(*name, ValueType::I64);
        }
        let b = b
            .attribute("rmi_latency_buckets", ValueType::list_of(ValueType::I64))
            .attribute("rmi_latency_count", ValueType::I64)
            .attribute("rmi_latency_sum_us", ValueType::I64);
        // Infallible: the descriptor is built from static attribute names
        // and the duplicate-registration case returned above already.
        reg.register(b.build())
            .expect("BusStats descriptor is well-formed");
    }

    /// Converts the snapshot into a self-describing `"BusStats"` object
    /// stamped with the daemon's identity and the snapshot time.
    pub fn to_object(&self, host: &str, daemon: &str, at_us: Micros) -> DataObject {
        let mut obj = DataObject::new("BusStats")
            .with("host", host)
            .with("daemon", daemon)
            .with("at_us", at_us as i64);
        for name in STATS_COUNTERS {
            obj.set(*name, self.counter(name) as i64);
        }
        obj.set(
            "rmi_latency_buckets",
            Value::List(
                self.rmi_latency
                    .buckets
                    .iter()
                    .map(|&c| Value::I64(c as i64))
                    .collect(),
            ),
        );
        obj.set("rmi_latency_count", self.rmi_latency.count as i64);
        obj.set("rmi_latency_sum_us", self.rmi_latency.sum_us as i64);
        obj
    }

    /// Reconstructs a snapshot from a `"BusStats"` object (the inverse of
    /// [`BusStats::to_object`]); `None` if the object is not one.
    pub fn from_object(obj: &DataObject) -> Option<BusStats> {
        if obj.type_name() != "BusStats" {
            return None;
        }
        let mut stats = BusStats::default();
        for name in STATS_COUNTERS {
            let v = obj.get(name)?.as_i64()?;
            *stats.counter_mut(name)? = v as u64;
        }
        if let Some(items) = obj.get("rmi_latency_buckets").and_then(Value::as_list) {
            for (slot, v) in stats.rmi_latency.buckets.iter_mut().zip(items) {
                *slot = v.as_i64()? as u64;
            }
        }
        stats.rmi_latency.count = obj.get("rmi_latency_count")?.as_i64()? as u64;
        stats.rmi_latency.sum_us = obj.get("rmi_latency_sum_us")?.as_i64()? as u64;
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A snapshot with every counter set to a distinct nonzero value and
    /// a populated latency histogram, so a lossy merge of any field shows
    /// up as an inequality.
    fn dense() -> BusStats {
        let mut s = BusStats::default();
        for (i, name) in STATS_COUNTERS.iter().enumerate() {
            *s.counter_mut(name).expect("known counter") = 100 + i as u64 * 7;
        }
        for us in [500, 1_500, 9_000, 40_000, 3_000_000] {
            s.rmi_latency.record(us);
        }
        s
    }

    /// Splits a snapshot into `k` shard-like parts whose counters sum
    /// back to the original: counter value `v` becomes `v / k` per part
    /// plus the remainder on part 0, and each histogram observation goes
    /// to one part round-robin.
    fn split(s: &BusStats, k: usize) -> Vec<BusStats> {
        let mut parts = vec![BusStats::default(); k];
        for name in STATS_COUNTERS {
            let v = s.counter(name);
            for (i, p) in parts.iter_mut().enumerate() {
                let share = v / k as u64 + if i == 0 { v % k as u64 } else { 0 };
                *p.counter_mut(name).expect("known counter") = share;
            }
        }
        for (b, &count) in s.rmi_latency.buckets().iter().enumerate() {
            // Reconstruct per-bucket observations at the bucket's bound
            // (anything past the last bound lands in the overflow bucket;
            // the sums are overwritten below).
            let us = RmiLatency::BOUNDS_US.get(b).copied().unwrap_or(2_000_000);
            for obs in 0..count {
                parts[obs as usize % k].rmi_latency.record(us);
            }
        }
        // record() re-derives sum_us from the reconstructed observations;
        // overwrite the parts' sums so they add up to the original
        // exactly (merge must preserve sums bit-for-bit).
        for p in parts.iter_mut() {
            p.rmi_latency.sum_us = s.rmi_latency.sum_us / k as u64;
        }
        parts[0].rmi_latency.sum_us += s.rmi_latency.sum_us % k as u64;
        parts
    }

    #[test]
    fn merge_of_split_is_identity() {
        let s = dense();
        for k in [1, 2, 4, 7] {
            let parts = split(&s, k);
            let merged = BusStats::merged(parts.iter());
            assert_eq!(merged, s, "merge(split(s, {k})) != s");
        }
    }

    #[test]
    fn merge_preserves_sums_and_histogram_buckets() {
        let a = dense();
        let mut b = dense();
        b.naks_sent = 3;
        b.sub_queue_depth = 999;
        b.rmi_latency.record(123);
        let merged = BusStats::merged([&a, &b]);
        for name in STATS_COUNTERS {
            assert_eq!(
                merged.counter(name),
                a.counter(name) + b.counter(name),
                "counter {name} did not sum"
            );
        }
        for (i, bucket) in merged.rmi_latency.buckets().iter().enumerate() {
            assert_eq!(
                *bucket,
                a.rmi_latency.buckets()[i] + b.rmi_latency.buckets()[i],
                "histogram bucket {i} did not sum"
            );
        }
        assert_eq!(
            merged.rmi_latency.count(),
            a.rmi_latency.count() + b.rmi_latency.count()
        );
    }

    #[test]
    fn merge_keeps_per_shard_max_depth_recoverable() {
        // The merged gauge is the *total* queue depth; the per-shard
        // breakdown (what ShardedEngine::shard_stats returns) is what
        // preserves the max. Verify both views agree on one dataset.
        let mut parts = vec![BusStats::default(); 4];
        for (i, p) in parts.iter_mut().enumerate() {
            p.sub_queue_depth = (i as u64 + 1) * 10;
        }
        let merged = BusStats::merged(parts.iter());
        assert_eq!(merged.sub_queue_depth, 10 + 20 + 30 + 40);
        let max = parts.iter().map(|p| p.sub_queue_depth).max().unwrap();
        assert_eq!(max, 40);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let s = dense();
        let mut m = s.clone();
        m.merge_from(&BusStats::default());
        assert_eq!(m, s);
    }
}
