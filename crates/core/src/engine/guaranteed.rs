//! Guaranteed delivery: the non-volatile ledger and retry rounds.
//!
//! "The message is logged to non-volatile storage *before* it is sent and
//! retransmitted until every interested daemon acknowledges" —
//! at-least-once, across publisher restarts. The ledger itself is pure
//! state: persistence happens through [`Action::Persist`] /
//! [`Action::Unpersist`], and the driver supplies the per-subject
//! interest snapshot (which hosts subscribe) at each retry round.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use infobus_subject::InternedSubject;

use crate::config::BusConfig;
use crate::envelope::Envelope;
use crate::msg::Packet;

use super::stats::BusStats;
use super::{Action, TimerKind};

struct GdEntry {
    env: Envelope,
    acked: HashSet<u32>,
    /// A co-resident subscriber received it (local delivery counts as
    /// acknowledgment).
    local_done: bool,
    /// Retry rounds already performed.
    rounds: u32,
}

/// Pending guaranteed envelopes, keyed (app, subject, seq) for a
/// deterministic retry order.
pub(super) struct GdLedger {
    pending: BTreeMap<(Arc<str>, InternedSubject, u64), GdEntry>,
    timer_armed: bool,
}

fn gd_key(env: &Envelope) -> (Arc<str>, InternedSubject, u64) {
    (env.stream.app.clone(), env.subject.clone(), env.seq)
}

/// The non-volatile storage key of a ledger entry.
pub(crate) fn gd_nv_key(env: &Envelope) -> String {
    format!("gd/{}/{}/{:016x}", env.stream.app, env.subject, env.seq)
}

impl GdLedger {
    pub(super) fn new() -> GdLedger {
        GdLedger {
            pending: BTreeMap::new(),
            timer_armed: false,
        }
    }

    /// Logs a freshly published guaranteed envelope. The returned actions
    /// write the ledger entry (before anything is sent) and arm the retry
    /// timer if idle.
    pub(super) fn persist(
        &mut self,
        env: &Envelope,
        cfg: &BusConfig,
        stats: &mut BusStats,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        // Log to non-volatile storage *before* the message is sent.
        let mut bytes = Vec::new();
        env.encode(&mut bytes);
        actions.push(Action::Persist {
            key: gd_nv_key(env),
            bytes,
        });
        self.pending.insert(
            gd_key(env),
            GdEntry {
                env: env.clone(),
                acked: HashSet::new(),
                local_done: false,
                rounds: 0,
            },
        );
        stats.gd_pending = self.pending.len() as u64;
        if !self.timer_armed {
            self.timer_armed = true;
            actions.push(Action::SetTimer {
                delay_us: cfg.gd_retry_us,
                timer: TimerKind::GdRetry,
            });
        }
        actions
    }

    /// Reloads ledger envelopes after a restart (the driver read them
    /// back from non-volatile storage). Entries are re-flagged as
    /// redeliveries; arms the retry timer if anything is pending.
    pub(super) fn load(
        &mut self,
        envs: Vec<Envelope>,
        cfg: &BusConfig,
        stats: &mut BusStats,
    ) -> Vec<Action> {
        for mut env in envs {
            env.redelivery = true;
            self.pending.insert(
                gd_key(&env),
                GdEntry {
                    env,
                    acked: HashSet::new(),
                    local_done: false,
                    rounds: 0,
                },
            );
        }
        stats.gd_pending = self.pending.len() as u64;
        let mut actions = Vec::new();
        if !self.pending.is_empty() && !self.timer_armed {
            self.timer_armed = true;
            actions.push(Action::SetTimer {
                delay_us: cfg.gd_retry_us,
                timer: TimerKind::GdRetry,
            });
        }
        actions
    }

    /// Records a remote acknowledgment. Completion is decided on the next
    /// retry round, which also gives late subscribers one window to
    /// appear.
    pub(super) fn ack_received(
        &mut self,
        stream: &crate::envelope::StreamKey,
        subject: &InternedSubject,
        seq: u64,
        from: u32,
        stats: &mut BusStats,
    ) {
        let key = (stream.app.clone(), subject.clone(), seq);
        stats.gd_acks_received += 1;
        if let Some(entry) = self.pending.get_mut(&key) {
            entry.acked.insert(from);
        }
    }

    /// Marks an entry as locally delivered.
    pub(super) fn local_done(&mut self, env: &Envelope) {
        if let Some(entry) = self.pending.get_mut(&gd_key(env)) {
            entry.local_done = true;
        }
    }

    /// The distinct subjects with pending entries (for the driver's
    /// interest computation).
    pub(super) fn subjects(&self) -> Vec<String> {
        let mut subjects: Vec<String> = Vec::new();
        for (_, subject, _) in self.pending.keys() {
            if subjects.last().map(String::as_str) != Some(subject.as_str()) {
                subjects.push(subject.as_str().to_owned());
            }
        }
        subjects.sort();
        subjects.dedup();
        subjects
    }

    /// One retry round. `interest` maps each pending subject to the
    /// hosts currently interested; a subject absent from the map is
    /// treated as invalid and its entries complete immediately.
    ///
    /// Emits, in order: broadcast retransmissions, local redeliveries
    /// ([`Action::DeliverGd`]), ledger deletions for completed entries,
    /// and the re-armed retry timer (while anything is still pending).
    pub(super) fn retry_round(
        &mut self,
        interest: &HashMap<String, Vec<u32>>,
        cfg: &BusConfig,
        stats: &mut BusStats,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut completed: Vec<(Arc<str>, InternedSubject, u64)> = Vec::new();
        let mut to_send: Vec<Envelope> = Vec::new();
        let mut to_deliver_locally: Vec<Envelope> = Vec::new();
        for (key, entry) in self.pending.iter_mut() {
            let Some(interested) = interest.get(entry.env.subject.as_str()) else {
                // Malformed subject: nobody can ever subscribe to it.
                completed.push(key.clone());
                continue;
            };
            let outstanding: Vec<u32> = interested
                .iter()
                .copied()
                .filter(|h| !entry.acked.contains(h))
                .collect();
            // The message is held "until a reply is received": completion
            // requires that *someone* took delivery (a local subscriber
            // or at least one remote ack) and that nobody currently
            // interested is still un-acked. With no interested party at
            // all the entry simply waits for one to appear.
            let someone_has_it = entry.local_done || !entry.acked.is_empty();
            if outstanding.is_empty() && entry.rounds > 0 && someone_has_it {
                completed.push(key.clone());
                continue;
            }
            entry.rounds += 1;
            if !outstanding.is_empty() || (!someone_has_it && !interested.is_empty()) {
                let mut env = entry.env.clone();
                // Every retransmission is flagged: a receiver daemon that
                // restarted since the original send must deliver it even
                // though its sequencing state says "duplicate". Healthy
                // receivers that merely lost an ack may see a duplicate —
                // exactly the at-least-once contract.
                env.redelivery = true;
                to_send.push(env);
            }
            if !entry.local_done {
                // A subscriber may have (re)attached on this very host
                // after the daemon reloaded its ledger.
                let mut env = entry.env.clone();
                env.redelivery = true;
                to_deliver_locally.push(env);
            }
        }
        for env in to_send {
            stats.gd_retries += 1;
            actions.push(Action::Broadcast(Packet::Data {
                envelopes: vec![env],
                retrans: true,
            }));
        }
        for env in to_deliver_locally {
            actions.push(Action::DeliverGd(env));
        }
        for key in completed {
            if let Some(entry) = self.pending.remove(&key) {
                actions.push(Action::Unpersist {
                    key: gd_nv_key(&entry.env),
                });
                stats.gd_completed += 1;
            }
        }
        stats.gd_pending = self.pending.len() as u64;
        if self.pending.is_empty() {
            self.timer_armed = false;
        } else {
            actions.push(Action::SetTimer {
                delay_us: cfg.gd_retry_us,
                timer: TimerKind::GdRetry,
            });
        }
        actions
    }
}
