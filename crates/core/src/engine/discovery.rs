//! Discovery correlation: collecting "I am" announcements per round.
//!
//! A discovery round is a publication ("Who's out there?") plus a
//! collection window. The engine only correlates announcements to open
//! rounds; opening the temporary subscription, issuing the query, and
//! timing the window are driver concerns.

use std::collections::HashMap;

use infobus_subject::SubscriptionId;
use infobus_types::wire;

use crate::app::DiscoveryReply;
use crate::envelope::Envelope;

/// One open discovery round: who asked, and the replies gathered so far.
pub struct PendingDiscovery {
    /// Index of the application that issued the query.
    pub app_idx: usize,
    /// Application-chosen token echoed back with the result set.
    pub token: u64,
    /// "I am" replies collected inside the window.
    pub replies: Vec<DiscoveryReply>,
    /// The transient control subscription held open for the window.
    pub temp_sub: SubscriptionId,
}

/// Open discovery rounds keyed by correlation id.
pub(super) struct Correlations {
    table: HashMap<u64, PendingDiscovery>,
}

impl Correlations {
    pub(super) fn new() -> Correlations {
        Correlations {
            table: HashMap::new(),
        }
    }

    /// Opens a round under `corr`.
    pub(super) fn start(&mut self, corr: u64, pending: PendingDiscovery) {
        self.table.insert(corr, pending);
    }

    /// Files an "I am" announcement with its round (ignored if the window
    /// already closed or the payload fails to unmarshal).
    pub(super) fn collect(&mut self, env: &Envelope) {
        if let Some(d) = self.table.get_mut(&env.corr) {
            if let Ok(info) = wire::unmarshal_value(&env.payload) {
                d.replies.push(DiscoveryReply { info });
            }
        }
    }

    /// Closes a round, returning what was gathered.
    pub(super) fn close(&mut self, corr: u64) -> Option<PendingDiscovery> {
        self.table.remove(&corr)
    }
}
