//! Content predicates: daemon-side filtering over self-describing
//! payloads.
//!
//! Subject-based addressing matches on hierarchical prefixes only; a
//! [`Predicate`] narrows a subscription further, by *content*. It is a
//! small AST — comparisons, set membership, and/or/not — over attribute
//! paths into the published [`Value`] (dotted slot names navigate nested
//! [`DataObject`](infobus_types::DataObject)s; the meta-object protocol
//! makes fields introspectable without application code). Because the AST serializes to a compact
//! byte form ([`Predicate::encode`]), predicates travel inside
//! subscription announcements, so the *publisher's* daemon can evaluate
//! them before marshalling and fan-out: a publication rejected by every
//! matching interest is never framed, never sequenced, and never sent.
//!
//! Evaluation is **total and panic-free** on arbitrary values: a missing
//! attribute, a type mismatch, or an incomparable pair makes the leaf
//! `false` (never an error), so a malformed or foreign payload simply
//! fails to match. `Not` inverts that as ordinary boolean negation —
//! `Not(Cmp)` over a missing field is `true`, which is the conservative
//! direction for a filter (deliver rather than silently drop).
//!
//! A [`CompiledPredicate`] is the per-subscription compiled form: paths
//! are split into elements once, and the compile step enforces the same
//! depth/size bounds the wire decoder does, so anything accepted locally
//! is announcéable and anything decoded off the wire is evaluable.

use std::fmt;
use std::sync::Arc;

use infobus_types::{wire, Value};

/// Maximum AST nesting depth accepted by [`Predicate::decode`] and
/// [`CompiledPredicate::compile`]. Deep towers of `Not` from a hostile
/// peer are rejected, not recursed.
pub const MAX_PREDICATE_DEPTH: usize = 16;
/// Maximum node count per predicate.
pub const MAX_PREDICATE_NODES: usize = 256;
/// Maximum encoded size in bytes (an announcement carries one predicate
/// per filter; this bounds the frame).
pub const MAX_PREDICATE_BYTES: usize = 8 * 1024;
/// Maximum elements in one attribute path.
pub const MAX_PATH_ELEMENTS: usize = 32;

/// Comparison operator of a [`Predicate::Cmp`] leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal (false when the attribute is missing — totality, not
    /// tri-valued logic).
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn tag(self) -> u8 {
        match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        }
    }

    fn from_tag(t: u8) -> Option<CmpOp> {
        Some(match t {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            5 => CmpOp::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A content predicate over a published value.
///
/// Attribute paths are dotted slot names (`"quote.price"` reads slot
/// `price` of the object in slot `quote`); an empty path addresses the
/// published value itself. Paths read declared slots first, then
/// dynamically attached properties, so a Keyword-Generator-style
/// annotation is filterable like any declared attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Compare the attribute at `path` with a constant.
    Cmp {
        /// Dotted attribute path into the published value.
        path: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand constant.
        value: Value,
    },
    /// True when the attribute at `path` equals any member of `set`.
    In {
        /// Dotted attribute path into the published value.
        path: String,
        /// Accepted constants.
        set: Vec<Value>,
    },
    /// True when every child is true (vacuously true when empty).
    All(Vec<Predicate>),
    /// True when at least one child is true (false when empty).
    Any(Vec<Predicate>),
    /// Boolean negation of the child.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `path == value`.
    pub fn eq(path: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            path: path.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `path != value`.
    pub fn ne(path: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            path: path.into(),
            op: CmpOp::Ne,
            value: value.into(),
        }
    }

    /// `path < value`.
    pub fn lt(path: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            path: path.into(),
            op: CmpOp::Lt,
            value: value.into(),
        }
    }

    /// `path <= value`.
    pub fn le(path: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            path: path.into(),
            op: CmpOp::Le,
            value: value.into(),
        }
    }

    /// `path > value`.
    pub fn gt(path: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            path: path.into(),
            op: CmpOp::Gt,
            value: value.into(),
        }
    }

    /// `path >= value`.
    pub fn ge(path: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            path: path.into(),
            op: CmpOp::Ge,
            value: value.into(),
        }
    }

    /// `path ∈ set`.
    pub fn is_in(path: impl Into<String>, set: Vec<Value>) -> Predicate {
        Predicate::In {
            path: path.into(),
            set,
        }
    }

    /// Conjunction.
    pub fn all(children: Vec<Predicate>) -> Predicate {
        Predicate::All(children)
    }

    /// Disjunction.
    pub fn any(children: Vec<Predicate>) -> Predicate {
        Predicate::Any(children)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(child: Predicate) -> Predicate {
        Predicate::Not(Box::new(child))
    }

    /// Number of AST nodes.
    pub fn node_count(&self) -> usize {
        match self {
            Predicate::Cmp { .. } | Predicate::In { .. } => 1,
            Predicate::All(cs) | Predicate::Any(cs) => {
                1 + cs.iter().map(Predicate::node_count).sum::<usize>()
            }
            Predicate::Not(c) => 1 + c.node_count(),
        }
    }

    /// Maximum nesting depth (a leaf is depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Predicate::Cmp { .. } | Predicate::In { .. } => 1,
            Predicate::All(cs) | Predicate::Any(cs) => {
                1 + cs.iter().map(Predicate::depth).max().unwrap_or(0)
            }
            Predicate::Not(c) => 1 + c.depth(),
        }
    }

    /// Serializes the predicate to its announcement byte form.
    ///
    /// Layout (all integers little-endian): each node is a tag byte —
    /// `1` Cmp, `2` In, `3` All, `4` Any, `5` Not — followed by its
    /// payload. Cmp: op byte, u16 path length + path bytes, u32 constant
    /// length + [`wire::marshal_value`] bytes. In: u16 path length +
    /// path, u16 member count, then per member a u32 length + marshalled
    /// value. All/Any: u16 child count + children. Not: the child.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            let len = s.len().min(u16::MAX as usize) as u16;
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&s.as_bytes()[..len as usize]);
        }
        fn put_value(out: &mut Vec<u8>, v: &Value) {
            let bytes = wire::marshal_value(v);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        match self {
            Predicate::Cmp { path, op, value } => {
                out.push(1);
                out.push(op.tag());
                put_str(out, path);
                put_value(out, value);
            }
            Predicate::In { path, set } => {
                out.push(2);
                put_str(out, path);
                let n = set.len().min(u16::MAX as usize) as u16;
                out.extend_from_slice(&n.to_le_bytes());
                for v in set.iter().take(n as usize) {
                    put_value(out, v);
                }
            }
            Predicate::All(cs) | Predicate::Any(cs) => {
                out.push(if matches!(self, Predicate::All(_)) {
                    3
                } else {
                    4
                });
                let n = cs.len().min(u16::MAX as usize) as u16;
                out.extend_from_slice(&n.to_le_bytes());
                for c in cs.iter().take(n as usize) {
                    c.encode_into(out);
                }
            }
            Predicate::Not(c) => {
                out.push(5);
                c.encode_into(out);
            }
        }
    }

    /// Decodes a predicate from its byte form, enforcing
    /// [`MAX_PREDICATE_BYTES`], [`MAX_PREDICATE_DEPTH`], and
    /// [`MAX_PREDICATE_NODES`]. Trailing bytes are an error: an
    /// announcement entry carries exactly one predicate.
    ///
    /// # Errors
    ///
    /// Returns a [`FilterError`] on truncation, unknown tags, malformed
    /// constants, or a predicate exceeding the bounds.
    pub fn decode(buf: &[u8]) -> Result<Predicate, FilterError> {
        if buf.len() > MAX_PREDICATE_BYTES {
            return Err(FilterError::TooLarge);
        }
        let mut cursor = buf;
        let mut nodes = 0usize;
        let p = Self::decode_node(&mut cursor, 1, &mut nodes)?;
        if !cursor.is_empty() {
            return Err(FilterError::TrailingBytes(cursor.len()));
        }
        Ok(p)
    }

    fn decode_node(
        buf: &mut &[u8],
        depth: usize,
        nodes: &mut usize,
    ) -> Result<Predicate, FilterError> {
        if depth > MAX_PREDICATE_DEPTH {
            return Err(FilterError::TooDeep);
        }
        *nodes += 1;
        if *nodes > MAX_PREDICATE_NODES {
            return Err(FilterError::TooManyNodes);
        }
        fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], FilterError> {
            if buf.len() < n {
                return Err(FilterError::Truncated);
            }
            let (head, tail) = buf.split_at(n);
            *buf = tail;
            Ok(head)
        }
        fn get_u8(buf: &mut &[u8]) -> Result<u8, FilterError> {
            Ok(take(buf, 1)?[0])
        }
        fn get_u16(buf: &mut &[u8]) -> Result<u16, FilterError> {
            let b = take(buf, 2)?;
            Ok(u16::from_le_bytes([b[0], b[1]]))
        }
        fn get_str(buf: &mut &[u8]) -> Result<String, FilterError> {
            let len = get_u16(buf)? as usize;
            let raw = take(buf, len)?;
            String::from_utf8(raw.to_vec()).map_err(|_| FilterError::BadPath)
        }
        fn get_value(buf: &mut &[u8]) -> Result<Value, FilterError> {
            let b = take(buf, 4)?;
            let len = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
            let raw = take(buf, len)?;
            wire::unmarshal_value(raw).map_err(|_| FilterError::BadConstant)
        }
        match get_u8(buf)? {
            1 => {
                let op = CmpOp::from_tag(get_u8(buf)?).ok_or(FilterError::BadTag(255))?;
                let path = get_str(buf)?;
                let value = get_value(buf)?;
                Ok(Predicate::Cmp { path, op, value })
            }
            2 => {
                let path = get_str(buf)?;
                let n = get_u16(buf)? as usize;
                let mut set = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    set.push(get_value(buf)?);
                }
                Ok(Predicate::In { path, set })
            }
            t @ (3 | 4) => {
                let n = get_u16(buf)? as usize;
                let mut cs = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    cs.push(Self::decode_node(buf, depth + 1, nodes)?);
                }
                Ok(if t == 3 {
                    Predicate::All(cs)
                } else {
                    Predicate::Any(cs)
                })
            }
            5 => Ok(Predicate::Not(Box::new(Self::decode_node(
                buf,
                depth + 1,
                nodes,
            )?))),
            other => Err(FilterError::BadTag(other)),
        }
    }
}

/// Errors from predicate decoding or compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FilterError {
    /// Nesting exceeds [`MAX_PREDICATE_DEPTH`].
    TooDeep,
    /// Node count exceeds [`MAX_PREDICATE_NODES`].
    TooManyNodes,
    /// Encoded form exceeds [`MAX_PREDICATE_BYTES`].
    TooLarge,
    /// The byte form ended mid-node.
    Truncated,
    /// Bytes remained after the predicate (count).
    TrailingBytes(usize),
    /// Unknown node or operator tag.
    BadTag(u8),
    /// A constant failed to unmarshal.
    BadConstant,
    /// A path was not valid UTF-8 or has too many elements
    /// ([`MAX_PATH_ELEMENTS`]).
    BadPath,
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::TooDeep => write!(f, "predicate nesting exceeds {MAX_PREDICATE_DEPTH}"),
            FilterError::TooManyNodes => {
                write!(f, "predicate exceeds {MAX_PREDICATE_NODES} nodes")
            }
            FilterError::TooLarge => {
                write!(f, "encoded predicate exceeds {MAX_PREDICATE_BYTES} bytes")
            }
            FilterError::Truncated => write!(f, "encoded predicate is truncated"),
            FilterError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after predicate")
            }
            FilterError::BadTag(t) => write!(f, "unknown predicate tag {t}"),
            FilterError::BadConstant => write!(f, "predicate constant failed to unmarshal"),
            FilterError::BadPath => write!(f, "predicate path is malformed"),
        }
    }
}

impl std::error::Error for FilterError {}

/// A predicate compiled for per-message evaluation: attribute paths are
/// split into elements once, and the size bounds are enforced at compile
/// time so every held predicate is announcéable.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPredicate {
    source: Predicate,
    root: Node,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Cmp {
        path: Vec<String>,
        op: CmpOp,
        value: Value,
    },
    In {
        path: Vec<String>,
        set: Vec<Value>,
    },
    All(Vec<Node>),
    Any(Vec<Node>),
    Not(Box<Node>),
}

impl CompiledPredicate {
    /// Compiles a predicate, validating the same bounds the wire decoder
    /// enforces.
    ///
    /// # Errors
    ///
    /// Returns a [`FilterError`] if the predicate exceeds the depth,
    /// node, byte, or path bounds.
    pub fn compile(p: &Predicate) -> Result<CompiledPredicate, FilterError> {
        if p.depth() > MAX_PREDICATE_DEPTH {
            return Err(FilterError::TooDeep);
        }
        if p.node_count() > MAX_PREDICATE_NODES {
            return Err(FilterError::TooManyNodes);
        }
        let root = Self::compile_node(p)?;
        Ok(CompiledPredicate {
            source: p.clone(),
            root,
        })
    }

    /// Compiles straight from the wire byte form (decode + compile).
    ///
    /// # Errors
    ///
    /// Returns a [`FilterError`] on malformed bytes or an out-of-bounds
    /// predicate.
    pub fn from_bytes(bytes: &[u8]) -> Result<CompiledPredicate, FilterError> {
        Self::compile(&Predicate::decode(bytes)?)
    }

    fn compile_node(p: &Predicate) -> Result<Node, FilterError> {
        fn split_path(path: &str) -> Result<Vec<String>, FilterError> {
            if path.is_empty() {
                return Ok(Vec::new());
            }
            let parts: Vec<String> = path.split('.').map(str::to_owned).collect();
            if parts.len() > MAX_PATH_ELEMENTS || parts.iter().any(String::is_empty) {
                return Err(FilterError::BadPath);
            }
            Ok(parts)
        }
        Ok(match p {
            Predicate::Cmp { path, op, value } => Node::Cmp {
                path: split_path(path)?,
                op: *op,
                value: value.clone(),
            },
            Predicate::In { path, set } => Node::In {
                path: split_path(path)?,
                set: set.clone(),
            },
            Predicate::All(cs) => Node::All(
                cs.iter()
                    .map(Self::compile_node)
                    .collect::<Result<_, _>>()?,
            ),
            Predicate::Any(cs) => Node::Any(
                cs.iter()
                    .map(Self::compile_node)
                    .collect::<Result<_, _>>()?,
            ),
            Predicate::Not(c) => Node::Not(Box::new(Self::compile_node(c)?)),
        })
    }

    /// The predicate this was compiled from.
    pub fn source(&self) -> &Predicate {
        &self.source
    }

    /// The announcement byte form (what crosses the wire).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.source.encode()
    }

    /// Evaluates the predicate against a published value. Total and
    /// panic-free: missing attributes, type mismatches, and incomparable
    /// pairs make the affected leaf `false`.
    pub fn eval(&self, value: &Value) -> bool {
        Self::eval_node(&self.root, value)
    }

    fn eval_node(node: &Node, value: &Value) -> bool {
        match node {
            Node::Cmp { path, op, value: c } => match lookup(value, path) {
                Some(v) => cmp_values(*op, v, c),
                None => false,
            },
            Node::In { path, set } => match lookup(value, path) {
                Some(v) => set.iter().any(|m| loose_eq(v, m)),
                None => false,
            },
            Node::All(cs) => cs.iter().all(|c| Self::eval_node(c, value)),
            Node::Any(cs) => cs.iter().any(|c| Self::eval_node(c, value)),
            Node::Not(c) => !Self::eval_node(c, value),
        }
    }
}

/// Walks a dotted attribute path: objects are read slot-first, then
/// dynamically attached properties; any other value ends the walk.
fn lookup<'a>(mut value: &'a Value, path: &[String]) -> Option<&'a Value> {
    for elem in path {
        let obj = value.as_object()?;
        value = obj.get(elem).or_else(|| obj.property(elem))?;
    }
    Some(value)
}

/// Loose equality: numbers compare across `I64`/`F64`; everything else
/// compares within its own kind.
fn loose_eq(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x == y,
        _ => a == b,
    }
}

fn cmp_values(op: CmpOp, lhs: &Value, rhs: &Value) -> bool {
    use std::cmp::Ordering;
    match op {
        CmpOp::Eq => loose_eq(lhs, rhs),
        CmpOp::Ne => !loose_eq(lhs, rhs),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let ord: Option<Ordering> = match (lhs, rhs) {
                (Value::Str(a), Value::Str(b)) => Some(a.as_str().cmp(b.as_str())),
                (Value::Bytes(a), Value::Bytes(b)) => Some(a.cmp(b)),
                _ => match (lhs.as_f64(), rhs.as_f64()) {
                    // NaN anywhere → incomparable → false.
                    (Some(x), Some(y)) => x.partial_cmp(&y),
                    _ => None,
                },
            };
            match ord {
                Some(o) => match op {
                    CmpOp::Lt => o == Ordering::Less,
                    CmpOp::Le => o != Ordering::Greater,
                    CmpOp::Gt => o == Ordering::Greater,
                    CmpOp::Ge => o != Ordering::Less,
                    _ => unreachable!("ordering ops only"),
                },
                None => false,
            }
        }
    }
}

/// Publisher-side gate over every *matching* interest entry.
///
/// Returns `true` when the publication must be sent: immediately on the
/// first predicate-free entry or the first accepting predicate. Returns
/// `false` only when at least one entry matched and **all** of them
/// carried rejecting predicates — suppressing on unanimous rejection is
/// the only safe direction. With *zero* matching interest the gate sends
/// (`true`): soft-state announcements race subscription creation, and
/// today's protocol already broadcasts into silence, so the gate never
/// tightens that.
///
/// `evals` counts predicate evaluations performed (feeds `filt_evals`).
pub fn interest_accepts<'a, I>(value: &Value, preds: I, evals: &mut u64) -> bool
where
    I: IntoIterator<Item = Option<&'a CompiledPredicate>>,
{
    let mut matched_any = false;
    for p in preds {
        matched_any = true;
        match p {
            None => return true,
            Some(p) => {
                *evals += 1;
                if p.eval(value) {
                    return true;
                }
            }
        }
    }
    !matched_any
}

/// A cheap estimate of a value's marshalled size, used to attribute
/// `filt_suppressed_bytes` when the publish gate suppresses a
/// publication *before* it was ever marshalled (so no exact wire length
/// exists). Lower-bound-ish and deliberately shallow for objects — the
/// counter is diagnostic, not billing.
pub fn approx_wire_bytes(value: &Value) -> usize {
    match value {
        Value::Nil | Value::Bool(_) => 8,
        Value::I64(_) | Value::F64(_) => 16,
        Value::Str(s) => 8 + s.len(),
        Value::Bytes(b) => 8 + b.len(),
        Value::List(xs) => 8 + xs.iter().map(approx_wire_bytes).sum::<usize>(),
        Value::Object(_) => 64,
    }
}

/// Driver-side filter/semantic counters, kept as atomics because the
/// gates run outside any engine lock (the publish gate fires before a
/// shard is even chosen). Folded into merged
/// [`BusStats`](super::BusStats) snapshots via
/// [`FilterCounters::fold_into`].
#[derive(Debug, Default)]
pub struct FilterCounters {
    /// Predicate evaluations performed (→ `filt_evals`).
    pub evals: std::sync::atomic::AtomicU64,
    /// Publications suppressed by the publish gate
    /// (→ `filt_pub_suppressed`).
    pub pub_suppressed: std::sync::atomic::AtomicU64,
    /// Deliveries suppressed by the delivery gate
    /// (→ `filt_delivery_suppressed`).
    pub delivery_suppressed: std::sync::atomic::AtomicU64,
    /// Approximate payload bytes kept off the wire
    /// (→ `filt_suppressed_bytes`).
    pub suppressed_bytes: std::sync::atomic::AtomicU64,
    /// Semantic rewrites applied (→ `sem_canonicalized`).
    pub sem_canonicalized: std::sync::atomic::AtomicU64,
    /// Extra semantic filter insertions (→ `sem_expanded_filters`).
    pub sem_expanded: std::sync::atomic::AtomicU64,
}

impl FilterCounters {
    /// Adds the counters into a merged stats snapshot.
    pub fn fold_into(&self, stats: &mut super::BusStats) {
        use std::sync::atomic::Ordering::Relaxed;
        stats.filt_evals += self.evals.load(Relaxed);
        stats.filt_pub_suppressed += self.pub_suppressed.load(Relaxed);
        stats.filt_delivery_suppressed += self.delivery_suppressed.load(Relaxed);
        stats.filt_suppressed_bytes += self.suppressed_bytes.load(Relaxed);
        stats.sem_canonicalized += self.sem_canonicalized.load(Relaxed);
        stats.sem_expanded_filters += self.sem_expanded.load(Relaxed);
    }

    /// Records the result of a publish-gate decision: `evals`
    /// evaluations happened; when `sent` is false the publication was
    /// suppressed with `approx_bytes` payload bytes kept off the wire.
    pub fn record_publish_gate(&self, evals: u64, sent: bool, approx_bytes: usize) {
        use std::sync::atomic::Ordering::Relaxed;
        self.evals.fetch_add(evals, Relaxed);
        if !sent {
            self.pub_suppressed.fetch_add(1, Relaxed);
            self.suppressed_bytes
                .fetch_add(approx_bytes as u64, Relaxed);
        }
    }
}

/// Combines the predicates of every local subscription sharing one
/// filter text into the single predicate announced for that filter:
/// `None` (announce unfiltered) if any subscription is predicate-free,
/// otherwise the disjunction. The announced form is an
/// over-approximation of each individual subscription, so the remote
/// publish gate never starves a local subscriber; exact per-subscription
/// filtering happens again at the delivery gate.
pub fn announced_predicate(
    subs: &[Option<Arc<CompiledPredicate>>],
) -> Option<Arc<CompiledPredicate>> {
    if subs.is_empty() || subs.iter().any(Option::is_none) {
        return None;
    }
    if subs.len() == 1 {
        return subs[0].clone();
    }
    let children: Vec<Predicate> = subs.iter().flatten().map(|p| p.source().clone()).collect();
    CompiledPredicate::compile(&Predicate::Any(children))
        .ok()
        .map(Arc::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infobus_types::DataObject;

    fn quote(sym: &str, price: f64, size: i64) -> Value {
        Value::object(
            DataObject::new("Quote")
                .with("sym", sym)
                .with("price", price)
                .with("size", size),
        )
    }

    fn compiled(p: &Predicate) -> CompiledPredicate {
        CompiledPredicate::compile(p).expect("compiles")
    }

    #[test]
    fn comparisons_and_membership() {
        let v = quote("IBM", 101.5, 300);
        assert!(compiled(&Predicate::eq("sym", "IBM")).eval(&v));
        assert!(!compiled(&Predicate::eq("sym", "GM")).eval(&v));
        assert!(compiled(&Predicate::gt("price", 100.0)).eval(&v));
        assert!(compiled(&Predicate::le("size", 300i64)).eval(&v));
        assert!(compiled(&Predicate::ne("sym", "GM")).eval(&v));
        assert!(compiled(&Predicate::is_in(
            "sym",
            vec![Value::str("GM"), Value::str("IBM")]
        ))
        .eval(&v));
        assert!(!compiled(&Predicate::is_in("sym", vec![])).eval(&v));
    }

    #[test]
    fn numeric_widening_across_kinds() {
        let v = quote("IBM", 100.0, 300);
        // i64 constant against f64 attribute and vice versa.
        assert!(compiled(&Predicate::eq("price", 100i64)).eval(&v));
        assert!(compiled(&Predicate::lt("size", 300.5f64)).eval(&v));
    }

    #[test]
    fn missing_fields_and_type_mismatches_are_false_not_errors() {
        let v = quote("IBM", 101.5, 300);
        assert!(!compiled(&Predicate::eq("absent", 1i64)).eval(&v));
        assert!(!compiled(&Predicate::lt("sym", 10i64)).eval(&v));
        // Not over a missing field is true (boolean negation).
        assert!(compiled(&Predicate::not(Predicate::eq("absent", 1i64))).eval(&v));
        // Non-object payloads never match attribute paths…
        assert!(!compiled(&Predicate::eq("x", 1i64)).eval(&Value::I64(5)));
        // …but the empty path addresses the value itself.
        assert!(compiled(&Predicate::eq("", 5i64)).eval(&Value::I64(5)));
    }

    #[test]
    fn nested_paths_and_properties() {
        let inner = DataObject::new("Src").with("name", "Reuters");
        let mut story = DataObject::new("Story").with("source", inner);
        story.set_property("keywords", Value::List(vec![Value::str("auto")]));
        let v = Value::object(story);
        assert!(compiled(&Predicate::eq("source.name", "Reuters")).eval(&v));
        assert!(!compiled(&Predicate::eq("source.name.deeper", "x")).eval(&v));
        // Properties resolve like slots.
        assert!(compiled(&Predicate::ne("keywords", "unused")).eval(&v));
    }

    #[test]
    fn boolean_composition() {
        let v = quote("IBM", 101.5, 300);
        let p = Predicate::all(vec![
            Predicate::eq("sym", "IBM"),
            Predicate::any(vec![
                Predicate::gt("price", 200.0),
                Predicate::ge("size", 100i64),
            ]),
        ]);
        assert!(compiled(&p).eval(&v));
        assert!(
            compiled(&Predicate::All(vec![])).eval(&v),
            "empty All is true"
        );
        assert!(
            !compiled(&Predicate::Any(vec![])).eval(&v),
            "empty Any is false"
        );
    }

    #[test]
    fn nan_never_matches_orderings() {
        let v = quote("IBM", f64::NAN, 1);
        for p in [
            Predicate::lt("price", 1.0),
            Predicate::gt("price", 1.0),
            Predicate::le("price", 1.0),
            Predicate::ge("price", 1.0),
        ] {
            assert!(!compiled(&p).eval(&v), "{p:?}");
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = Predicate::all(vec![
            Predicate::eq("sym", "IBM"),
            Predicate::not(Predicate::is_in(
                "venue",
                vec![Value::str("dark"), Value::I64(9)],
            )),
            Predicate::any(vec![Predicate::lt("price", 10.25f64)]),
        ]);
        let bytes = p.encode();
        assert_eq!(Predicate::decode(&bytes).expect("decodes"), p);
        // Compile-from-bytes agrees with compile-from-AST.
        let a = CompiledPredicate::from_bytes(&bytes).expect("compiles");
        let b = compiled(&p);
        let v = quote("IBM", 5.0, 1);
        assert_eq!(a.eval(&v), b.eval(&v));
    }

    #[test]
    fn decode_rejects_garbage_and_bounds() {
        assert!(Predicate::decode(&[]).is_err());
        assert!(Predicate::decode(&[9, 9, 9]).is_err());
        let mut deep = Predicate::eq("x", 1i64);
        for _ in 0..MAX_PREDICATE_DEPTH + 1 {
            deep = Predicate::not(deep);
        }
        assert_eq!(Predicate::decode(&deep.encode()), Err(FilterError::TooDeep));
        assert_eq!(
            CompiledPredicate::compile(&deep).err(),
            Some(FilterError::TooDeep)
        );
        let wide = Predicate::All(vec![Predicate::eq("x", 1i64); MAX_PREDICATE_NODES]);
        assert!(Predicate::decode(&wide.encode()).is_err());
        // Truncation at every prefix length is an error, never a panic.
        let bytes = Predicate::eq("sym", "IBM").encode();
        for n in 0..bytes.len() {
            assert!(Predicate::decode(&bytes[..n]).is_err(), "prefix {n}");
        }
        // Trailing bytes are rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            Predicate::decode(&padded),
            Err(FilterError::TrailingBytes(1))
        );
    }

    #[test]
    fn compile_rejects_bad_paths() {
        assert_eq!(
            CompiledPredicate::compile(&Predicate::eq("a..b", 1i64)).err(),
            Some(FilterError::BadPath)
        );
        let long = vec!["x"; MAX_PATH_ELEMENTS + 1].join(".");
        assert_eq!(
            CompiledPredicate::compile(&Predicate::eq(long, 1i64)).err(),
            Some(FilterError::BadPath)
        );
    }

    #[test]
    fn interest_gate_rules() {
        let v = quote("IBM", 101.5, 300);
        let hit = compiled(&Predicate::eq("sym", "IBM"));
        let miss = compiled(&Predicate::eq("sym", "GM"));
        let mut evals = 0;
        // Zero interest → send.
        assert!(interest_accepts(&v, std::iter::empty(), &mut evals));
        // Any predicate-free entry → send without evaluating the rest.
        assert!(interest_accepts(&v, vec![None, Some(&miss)], &mut evals));
        assert_eq!(evals, 0);
        // Unanimous rejection → suppress.
        assert!(!interest_accepts(
            &v,
            vec![Some(&miss), Some(&miss)],
            &mut evals
        ));
        assert_eq!(evals, 2);
        // One acceptance is enough.
        assert!(interest_accepts(
            &v,
            vec![Some(&miss), Some(&hit)],
            &mut evals
        ));
        assert_eq!(evals, 4);
    }

    #[test]
    fn announced_predicate_over_approximates() {
        let v_ibm = quote("IBM", 1.0, 1);
        let v_gm = quote("GM", 1.0, 1);
        let a = Arc::new(compiled(&Predicate::eq("sym", "IBM")));
        let b = Arc::new(compiled(&Predicate::eq("sym", "GM")));
        // Mixed with a predicate-free sub → unfiltered.
        assert!(announced_predicate(&[Some(a.clone()), None]).is_none());
        assert!(announced_predicate(&[]).is_none());
        // Single predicate passes through by pointer.
        let single = announced_predicate(&[Some(a.clone())]).expect("some");
        assert!(Arc::ptr_eq(&single, &a));
        // Two predicates announce their disjunction.
        let both = announced_predicate(&[Some(a), Some(b)]).expect("some");
        assert!(both.eval(&v_ibm) && both.eval(&v_gm));
        assert!(!both.eval(&quote("T", 1.0, 1)));
    }
}
