//! The sans-I/O protocol engine.
//!
//! Everything the bus *protocol* does — per-stream sequencing, NAK-based
//! retransmission, guaranteed-delivery ledgers, batching, discovery
//! correlation, counters — lives here as pure state machines. The engine
//! never touches a socket, a timer wheel, or a simulator: it consumes
//! `(now_us, `[`Event`]`)` pairs and emits [`Action`]s that a *driver*
//! performs. Two drivers ship with this crate and run the same engine:
//!
//! * the netsim daemon ([`BusDaemon`](crate::BusDaemon)), which performs
//!   actions against the discrete-event simulator in virtual time, and
//! * the real-thread [`InprocBus`](crate::inproc::InprocBus), which loops
//!   broadcast actions straight back into the engine and hands deliveries
//!   to mpsc channels in wall-clock time.
//!
//! The split is the classic sans-I/O layering: because the state machines
//! are pure, they can be driven directly by tests with arbitrary loss,
//! duplication, and reordering — no simulator in the loop (see the
//! `engine_prop` integration tests) — and new transports (real sockets,
//! async runtimes, shards) only need to implement [`Transport`].
//!
//! # Event/Action contract
//!
//! [`Engine::handle`] is deterministic: the same sequence of
//! `(now, event)` inputs produces the same actions and the same internal
//! state. Actions must be performed **in order** — the engine encodes
//! protocol ordering requirements (for example "persist the guaranteed
//! envelope before broadcasting it") in the order of the returned vector.
//! [`run_actions`] performs a batch against any [`Transport`].

pub mod batch;
pub mod discovery;
pub mod filter;
pub mod guaranteed;
pub mod reliable;
pub mod sharded;
pub mod stats;

use crate::buf::Bytes;
use crate::config::BusConfig;
use crate::envelope::{Envelope, EnvelopeKind, StreamKey};
use crate::msg::{Packet, SyncEntry};
use crate::QoS;

use infobus_subject::{InternedSubject, SubjectTable};

use std::collections::HashMap;
use std::sync::Arc;

pub use sharded::{
    run_sharded_actions, shard_of_subject, ShardId, ShardTransport, ShardedEngine, ShardedStats,
};
pub use stats::{BusStats, RmiLatency, STATS_SUBJECT_PREFIX};

/// Microseconds of protocol time. The engine does not read clocks: every
/// entry point takes `now` from the driver (virtual time under the
/// simulator, a monotonic counter for the in-process bus).
pub type Micros = u64;

/// Identity of the publishing application within its daemon: the stream
/// namespace is `(host, app, incarnation)` and the engine supplies the
/// host half itself.
/// The name is a shared `Arc<str>`: drivers build one `PubSource` per
/// application and clone it per publish as a reference-count bump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubSource {
    /// Application name (or a reserved name like `"router"`).
    pub app: Arc<str>,
    /// Incarnation number distinguishing restarts of the same name.
    pub inc: u64,
    /// Federation stamp to carry on the envelope. Always `None` for
    /// application publishers; a routing daemon republishing a forwarded
    /// publication sets the stamp so the copy keeps its loop-suppression
    /// identity (and so NAK repairs and ledger redeliveries keep it too).
    pub route: Option<infobus_router::RouteStamp>,
}

/// Protocol timers the engine asks its driver to arm.
///
/// Timers are one-shot: when one fires, the driver reports it back as
/// [`Event::Timer`] (or [`Event::GdRetry`] for [`TimerKind::GdRetry`],
/// which needs a fresh interest snapshot) and the engine re-arms it if
/// still needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Flush a partially filled batch.
    Batch,
    /// Scan in-streams for aged sequence gaps (NAK generation).
    NakScan,
    /// Run a guaranteed-delivery retry round.
    GdRetry,
    /// Broadcast idle-stream digests.
    Sync,
}

/// An input to the protocol engine.
#[derive(Debug, Clone)]
pub enum Event {
    /// A local application published. The payload is already marshalled;
    /// the engine sequences it and queues or emits the wire packet.
    ///
    /// Drivers that must interleave their own work between sequencing and
    /// transmission (the daemon routes control envelopes to co-resident
    /// responders in between) call [`Engine::publish`] and
    /// [`Engine::enqueue`] separately instead.
    Publish {
        /// The publishing application.
        source: PubSource,
        /// Subject, interned by the driver in the engine's table.
        subject: InternedSubject,
        /// Requested delivery quality of service.
        qos: QoS,
        /// Payload interpretation (data or a control publication).
        kind: EnvelopeKind,
        /// Correlation id for control envelopes (0 for data).
        corr: u64,
        /// Marshalled payload bytes.
        payload: Bytes,
    },
    /// A data envelope arrived from the wire. `entitled` is the driver's
    /// first-contact verdict: `true` if this receiver's earliest matching
    /// subscription predates the stream's start (so it is owed the stream
    /// from sequence 1). Consulted only on first contact with a stream.
    Envelope {
        /// The received envelope.
        env: Envelope,
        /// First-contact entitlement, computed by the driver.
        entitled: bool,
    },
    /// A NAK arrived: a receiver is missing sequences of one of our
    /// streams.
    Nak {
        /// The stream being repaired.
        stream: StreamKey,
        /// The stream's subject.
        subject: InternedSubject,
        /// Host asking for the retransmission.
        requester: u32,
        /// The missing sequence numbers.
        missing: Vec<u64>,
    },
    /// A gap-skip arrived: the publisher no longer retains sequences up
    /// to `through`; stop waiting for them.
    GapSkip {
        /// The stream being skipped forward.
        stream: StreamKey,
        /// The stream's subject.
        subject: InternedSubject,
        /// Last unavailable sequence number.
        through: u64,
    },
    /// An acknowledgment of a guaranteed envelope we published.
    Ack {
        /// The acknowledged stream.
        stream: StreamKey,
        /// The acknowledged subject.
        subject: InternedSubject,
        /// The acknowledged sequence number.
        seq: u64,
        /// The acknowledging host.
        from_host: u32,
    },
    /// One entry of a received `SeqSync` digest. `sub_at` is the creation
    /// time of this receiver's earliest subscription matching the entry's
    /// subject (`None` if nothing local matches — the entry is ignored).
    Digest {
        /// The digest entry.
        entry: SyncEntry,
        /// Earliest matching local subscription time, from the driver.
        sub_at: Option<Micros>,
    },
    /// A protocol timer armed via [`Action::SetTimer`] fired. The
    /// [`TimerKind::GdRetry`] timer must be reported as
    /// [`Event::GdRetry`] instead (it needs an interest snapshot).
    Timer(TimerKind),
    /// The guaranteed-delivery retry timer fired. `interest` maps each
    /// subject with pending guaranteed envelopes (see
    /// [`Engine::gd_subjects`]) to the hosts currently interested in it;
    /// a subject *absent* from the map is treated as invalid and its
    /// entries are completed.
    GdRetry {
        /// Per-subject interested hosts, computed by the driver.
        interest: HashMap<String, Vec<u32>>,
    },
}

/// An effect the engine asks its driver to perform. Perform actions in
/// the order given.
#[derive(Debug, Clone)]
pub enum Action {
    /// Send a packet to every daemon on the segment.
    Broadcast(Packet),
    /// Send a packet to one daemon.
    Unicast {
        /// Destination host.
        host: u32,
        /// The packet to send.
        packet: Packet,
    },
    /// Arm a one-shot protocol timer.
    SetTimer {
        /// Delay from now, in microseconds.
        delay_us: Micros,
        /// Which timer to arm.
        timer: TimerKind,
    },
    /// An envelope became deliverable in sender order: route it to local
    /// subscribers (and, for control envelopes, the protocol handlers).
    Deliver(Envelope),
    /// A guaranteed envelope is being redelivered locally during a retry
    /// round. If any local subscriber takes it, the driver must report
    /// back via [`Engine::gd_local_done`].
    DeliverGd(Envelope),
    /// Write to non-volatile storage (guaranteed-delivery ledger).
    Persist {
        /// Storage key.
        key: String,
        /// Encoded ledger entry.
        bytes: Vec<u8>,
    },
    /// Delete a non-volatile ledger entry.
    Unpersist {
        /// Storage key.
        key: String,
    },
}

/// The driver side of the engine: performs [`Action`]s against a real
/// substrate (simulator, threads, sockets).
pub trait Transport {
    /// Send a packet to every daemon on the segment.
    fn broadcast(&mut self, packet: Packet);
    /// Send a packet to one daemon.
    fn unicast(&mut self, host: u32, packet: Packet);
    /// Arm a one-shot protocol timer.
    fn set_timer(&mut self, delay_us: Micros, timer: TimerKind);
    /// Route an in-order envelope to local subscribers.
    fn deliver(&mut self, env: Envelope);
    /// Redeliver a guaranteed envelope locally (report successful
    /// deliveries back via [`Engine::gd_local_done`]).
    fn deliver_gd(&mut self, env: Envelope);
    /// Write a guaranteed-delivery ledger entry.
    fn persist(&mut self, key: String, bytes: Vec<u8>);
    /// Delete a guaranteed-delivery ledger entry.
    fn unpersist(&mut self, key: &str);
}

/// Performs a batch of actions, in order, against a transport.
pub fn run_actions(actions: Vec<Action>, t: &mut impl Transport) {
    for action in actions {
        match action {
            Action::Broadcast(packet) => t.broadcast(packet),
            Action::Unicast { host, packet } => t.unicast(host, packet),
            Action::SetTimer { delay_us, timer } => t.set_timer(delay_us, timer),
            Action::Deliver(env) => t.deliver(env),
            Action::DeliverGd(env) => t.deliver_gd(env),
            Action::Persist { key, bytes } => t.persist(key, bytes),
            Action::Unpersist { key } => t.unpersist(&key),
        }
    }
}

/// The protocol engine: reliable delivery, guaranteed delivery, batching,
/// discovery correlation, and counters, behind one event-driven facade.
///
/// One engine instance embodies one daemon's protocol state. It is `Send`
/// (no interior pointers, no I/O handles), so thread-based drivers can
/// put it behind a mutex.
pub struct Engine {
    cfg: BusConfig,
    host32: u32,
    loopback: bool,
    table: SubjectTable,
    out: reliable::Publisher,
    inb: reliable::Receiver,
    batch: batch::Batcher,
    gd: guaranteed::GdLedger,
    discovery: discovery::Correlations,
    /// Protocol counters. Public so drivers can account driver-side
    /// events (deliveries, RMI traffic, router forwards) in the same
    /// snapshot.
    pub stats: BusStats,
}

impl Engine {
    /// Creates an engine for the daemon on `host32`, with its own
    /// private intern table.
    pub fn new(cfg: BusConfig, host32: u32) -> Engine {
        Engine::with_table(cfg, host32, SubjectTable::new())
    }

    /// Creates an engine sharing `table` — shards of one daemon share a
    /// single table so a [`SubjectId`](infobus_subject::SubjectId) means
    /// the same thing on every shard.
    pub fn with_table(cfg: BusConfig, host32: u32, table: SubjectTable) -> Engine {
        Engine {
            cfg,
            host32,
            loopback: false,
            table,
            out: reliable::Publisher::new(),
            inb: reliable::Receiver::new(),
            batch: batch::Batcher::new(),
            gd: guaranteed::GdLedger::new(),
            discovery: discovery::Correlations::new(),
            stats: BusStats::default(),
        }
    }

    /// Creates a loopback engine: envelopes from its own host are
    /// accepted rather than dropped. Used by single-node transports (the
    /// in-process bus) that feed their own broadcasts back in.
    pub fn new_loopback(cfg: BusConfig, host32: u32) -> Engine {
        let mut engine = Engine::new(cfg, host32);
        engine.loopback = true;
        engine
    }

    /// The host id this engine publishes under.
    pub fn host32(&self) -> u32 {
        self.host32
    }

    /// Sets the host id. Drivers that learn their address after
    /// construction (the simulated daemon binds at start-up) call this
    /// once, before any traffic flows.
    pub fn set_host(&mut self, host32: u32) {
        self.host32 = host32;
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// The daemon's subject intern table. Drivers intern subjects here
    /// once (at the API or frame boundary) and hand the engine
    /// [`InternedSubject`] values.
    pub fn table(&self) -> &SubjectTable {
        &self.table
    }

    /// Handles one event, returning the actions to perform (in order).
    pub fn handle(&mut self, now: Micros, event: Event) -> Vec<Action> {
        let mut out = Vec::new();
        self.handle_into(now, event, &mut out);
        out
    }

    /// Handles one event, appending the actions (in order) to `out`.
    ///
    /// This is the allocation-disciplined entry point: drivers that
    /// process events in a loop keep one scratch `Vec<Action>` and clear
    /// it between events, so the steady state allocates nothing for
    /// action plumbing.
    pub fn handle_into(&mut self, now: Micros, event: Event, out: &mut Vec<Action>) {
        match event {
            Event::Publish {
                source,
                subject,
                qos,
                kind,
                corr,
                payload,
            } => {
                let env = self.publish_into(now, &source, &subject, qos, kind, corr, payload, out);
                self.enqueue_into(&env, out);
            }
            Event::Envelope { env, entitled } => {
                if !self.loopback && env.stream.host == self.host32 {
                    // Our own broadcast looped back; locals were already
                    // served on the publish path.
                    return;
                }
                self.inb
                    .accept(now, env, entitled, self.host32, &mut self.stats, out);
            }
            Event::Nak {
                stream,
                subject,
                requester,
                missing,
            } => out.extend(self.out.handle_nak(
                now,
                stream,
                subject,
                requester,
                missing,
                &mut self.stats,
            )),
            Event::GapSkip {
                stream,
                subject,
                through,
            } => self.inb.handle_gapskip(
                now,
                stream,
                subject,
                through,
                self.host32,
                &mut self.stats,
                out,
            ),
            Event::Ack {
                stream,
                subject,
                seq,
                from_host,
            } => {
                self.gd
                    .ack_received(&stream, &subject, seq, from_host, &mut self.stats);
            }
            Event::Digest { entry, sub_at } => {
                self.inb
                    .handle_digest(now, entry, sub_at, self.host32, self.loopback);
            }
            Event::Timer(TimerKind::Batch) => out.extend(self.batch.timer_fired(&mut self.stats)),
            Event::Timer(TimerKind::NakScan) => {
                out.extend(
                    self.inb
                        .scan_gaps(now, self.host32, &self.cfg, &mut self.stats),
                );
            }
            Event::Timer(TimerKind::Sync) => {
                out.extend(self.out.sync_round(now, self.host32, &self.cfg));
            }
            // GdRetry needs the interest snapshot; drivers report it via
            // Event::GdRetry. A bare timer event is a no-op.
            Event::Timer(TimerKind::GdRetry) => {}
            Event::GdRetry { interest } => {
                out.extend(self.gd.retry_round(&interest, &self.cfg, &mut self.stats));
            }
        }
    }

    /// Sequences a publication into an envelope, without transmitting it.
    ///
    /// Returns the envelope plus the actions of the *pre-send* protocol
    /// obligations (persisting a guaranteed envelope before it goes out).
    /// The driver routes the envelope to co-resident subscribers itself,
    /// then hands it back to [`Engine::enqueue`] for transmission.
    /// [`Event::Publish`] composes the two for drivers with no in-between
    /// work.
    #[allow(clippy::too_many_arguments)]
    pub fn publish(
        &mut self,
        now: Micros,
        source: &PubSource,
        subject: &InternedSubject,
        qos: QoS,
        kind: EnvelopeKind,
        corr: u64,
        payload: Bytes,
    ) -> (Envelope, Vec<Action>) {
        let mut actions = Vec::new();
        let env = self.publish_into(now, source, subject, qos, kind, corr, payload, &mut actions);
        (env, actions)
    }

    /// [`Engine::publish`] with the pre-send actions appended to `out`
    /// instead of freshly allocated — the hot-path form (a reliable
    /// publish appends nothing, so the caller's scratch vector is all
    /// the plumbing there is).
    #[allow(clippy::too_many_arguments)]
    pub fn publish_into(
        &mut self,
        now: Micros,
        source: &PubSource,
        subject: &InternedSubject,
        qos: QoS,
        kind: EnvelopeKind,
        corr: u64,
        payload: Bytes,
        out: &mut Vec<Action>,
    ) -> Envelope {
        let env = self.out.sequence(
            now,
            self.host32,
            source,
            subject,
            qos,
            kind,
            corr,
            payload,
            &self.cfg,
            &mut self.stats,
        );
        if qos == QoS::Guaranteed {
            out.extend(self.gd.persist(&env, &self.cfg, &mut self.stats));
        }
        env
    }

    /// Queues a sequenced envelope for transmission: appends to the
    /// current batch (flushing or arming the flush timer as needed) or
    /// emits an immediate broadcast when batching is off.
    pub fn enqueue(&mut self, env: &Envelope) -> Vec<Action> {
        let mut out = Vec::new();
        self.enqueue_into(env, &mut out);
        out
    }

    /// [`Engine::enqueue`], appending to the caller's scratch vector.
    pub fn enqueue_into(&mut self, env: &Envelope, out: &mut Vec<Action>) {
        if self.cfg.batch_enabled {
            out.extend(self.batch.push(env, &self.cfg, &mut self.stats));
        } else {
            out.push(Action::Broadcast(Packet::Data {
                envelopes: vec![env.clone()],
                retrans: false,
            }));
        }
    }

    // ----- guaranteed-delivery hooks for drivers ----------------------------

    /// Marks a pending guaranteed envelope as locally delivered (the
    /// driver's response to a successful [`Action::DeliverGd`], or to a
    /// local delivery on the publish path).
    pub fn gd_local_done(&mut self, env: &Envelope) {
        self.gd.local_done(env);
    }

    /// The distinct subjects with pending guaranteed envelopes. The
    /// driver computes per-subject interest from these before reporting
    /// [`Event::GdRetry`].
    pub fn gd_subjects(&self) -> Vec<String> {
        self.gd.subjects()
    }

    /// Loads ledger envelopes read back from non-volatile storage after a
    /// restart. Entries are re-flagged as redeliveries; returns the
    /// actions (re-arming the retry timer) to perform.
    pub fn gd_load(&mut self, envs: Vec<Envelope>) -> Vec<Action> {
        self.gd.load(envs, &self.cfg, &mut self.stats)
    }

    // ----- discovery correlation hooks --------------------------------------

    /// Opens a discovery correlation window (the driver has already
    /// published the query and armed the window timer).
    pub fn discovery_start(&mut self, corr: u64, pending: discovery::PendingDiscovery) {
        self.discovery.start(corr, pending);
    }

    /// Collects an "I am" announcement into its correlation window (a
    /// no-op for unknown or already-closed correlation ids).
    pub fn discovery_collect(&mut self, env: &Envelope) {
        self.discovery.collect(env);
    }

    /// Closes a correlation window, returning the collected replies.
    pub fn discovery_close(&mut self, corr: u64) -> Option<discovery::PendingDiscovery> {
        self.discovery.close(corr)
    }
}
