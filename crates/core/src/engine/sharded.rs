//! The sharded engine: N independent [`Engine`] instances behind the
//! same `(now_us, Event) → actions` contract.
//!
//! One [`Engine`] serializes every subject through a single state
//! machine; at trading-floor fan-in that single engine becomes the
//! bottleneck even though independent subjects share no protocol state.
//! [`ShardedEngine`] splits the daemon into `shards` engines and routes
//! each event to the shard that owns its subject, chosen by a **stable
//! hash of the subject's first segment** ([`shard_of_subject`]).
//!
//! # Why the first segment
//!
//! Subjects are hierarchical (`equity.ibm.trade`): the first segment
//! names the category, and category is how real installations partition
//! load. Hashing only the first segment keeps whole categories on one
//! shard, so wildcard subscriptions like `equity.>` still see every
//! matching stream repaired by one engine, and a publisher's related
//! subjects stay adjacent.
//!
//! # Ordering contract
//!
//! Every `(publisher, subject)` stream lives entirely inside one shard:
//! sequencing, holdback, NAK repair, and guaranteed-delivery retries for
//! a stream never cross shards. Per-sender-per-subject order is
//! therefore exactly what the single engine guaranteed. Ordering
//! *between* subjects on different shards is unconstrained — they are
//! independent state machines, as the bus never promised inter-subject
//! order anyway.
//!
//! # Timers carry a shard tag
//!
//! The NAK-scan and sync timers re-arm themselves: each firing returns a
//! `SetTimer` that keeps the scan alive. If timer firings were fanned
//! out to every shard untagged, each shard's re-arm would multiply —
//! N shards × N re-arms per firing is a timer storm. Actions from a
//! sharded engine are therefore `(ShardId, Action)` pairs, drivers arm
//! timers per shard ([`ShardTransport::set_shard_timer`]), and a firing
//! is reported back to exactly the shard that armed it via
//! [`ShardedEngine::handle_timer`].
//!
//! # What fans out (and what it costs)
//!
//! * **Discovery** correlation state is subject-independent (keyed by
//!   correlation id), so it lives on shard 0 — no fan-out at all.
//! * **Stats** snapshots fan *in*: [`ShardedEngine::merged_stats`] sums
//!   the per-shard [`BusStats`] (cost: O(shards) counter adds per
//!   snapshot), and [`ShardedEngine::sharded_stats`] keeps the
//!   per-shard breakdown so depth/occupancy maxima survive the merge.
//! * **Guaranteed-delivery retry rounds** fan out: the driver computes
//!   one interest map for the union of [`ShardedEngine::gd_subjects`]
//!   and every shard scans its own ledger slice against it (a shard
//!   only consults subjects it owns, so the shared map is safe).
//! * An *untagged* [`Event::Timer`] fans out to all shards as a
//!   documented fallback — correct (each shard ignores timers it has no
//!   state for, and any re-arms come back tagged) but N× the work of a
//!   tagged firing.
//!
//! With `shards = 1` (the default) every subject maps to shard 0, every
//! action is tagged `(0, _)`, and the produced action sequence is
//! exactly the single engine's — the paper-figure configurations are
//! reproduced byte-for-byte.

use std::collections::HashMap;

use infobus_subject::{InternedSubject, SubjectTable};

use crate::buf::Bytes;
use crate::config::BusConfig;
use crate::envelope::{Envelope, EnvelopeKind};
use crate::QoS;

use super::discovery::PendingDiscovery;
use super::{Action, BusStats, Engine, Event, Micros, PubSource, TimerKind, Transport};

/// Index of one shard within a [`ShardedEngine`] (`0..shard_count`).
pub type ShardId = usize;

/// Maps a subject to the shard that owns it: an FNV-1a hash of the
/// subject's **first segment** (the text before the first `.`), modulo
/// the shard count.
///
/// The hash is deliberately fixed — no per-process seed — so the same
/// subject lands on the same shard across restarts, across hosts, and
/// across drivers. That stability is what lets a restarted publisher
/// reload only its own shards' ledger slices and keep every stream's
/// repair state on the engine that sequenced it.
pub fn shard_of_subject(subject: &str, shards: usize) -> ShardId {
    if shards <= 1 {
        return 0;
    }
    let first = match subject.find('.') {
        Some(dot) => &subject[..dot],
        None => subject,
    };
    // FNV-1a, 64-bit: tiny, allocation-free, and stable by construction.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in first.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as ShardId
}

/// A merged [`BusStats`] snapshot plus the per-shard breakdown it was
/// merged from, so aggregate-destroying views (maximum queue depth,
/// per-shard batch occupancy) remain available after the fan-in.
#[derive(Debug, Clone)]
pub struct ShardedStats {
    /// All shards (plus the driver's shared counters) summed into one
    /// snapshot — what the observability plane publishes.
    pub merged: BusStats,
    /// One snapshot per shard, in shard order.
    pub per_shard: Vec<BusStats>,
}

impl ShardedStats {
    /// The deepest per-shard subscriber-queue gauge (the merged snapshot
    /// only has the sum).
    pub fn max_sub_queue_depth(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.sub_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// The largest per-shard count of guaranteed envelopes still pending
    /// acknowledgment.
    pub fn max_gd_pending(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.gd_pending)
            .max()
            .unwrap_or(0)
    }

    /// Per-shard mean batch occupancy, in shard order.
    pub fn batch_occupancy(&self) -> Vec<f64> {
        self.per_shard
            .iter()
            .map(BusStats::mean_batch_occupancy)
            .collect()
    }
}

/// The driver side of a sharded engine: a [`Transport`] that can also
/// arm per-shard timers. When a shard-tagged timer fires, the driver
/// reports it back to that shard alone via
/// [`ShardedEngine::handle_timer`] (or
/// [`ShardedEngine::handle_gd_retry`] for [`TimerKind::GdRetry`]).
pub trait ShardTransport: Transport {
    /// Arm a one-shot protocol timer owned by `shard`.
    fn set_shard_timer(&mut self, shard: ShardId, delay_us: Micros, timer: TimerKind);

    /// Write a ledger entry on behalf of `shard`. Drivers with a
    /// per-shard durable ledger override this to route the write to the
    /// owning shard's segment files; the default forwards to the
    /// shard-agnostic [`Transport::persist`].
    fn persist_shard(&mut self, shard: ShardId, key: String, bytes: Vec<u8>) {
        let _ = shard;
        self.persist(key, bytes);
    }

    /// Delete a ledger entry on behalf of `shard` (see
    /// [`ShardTransport::persist_shard`]).
    fn unpersist_shard(&mut self, shard: ShardId, key: &str) {
        let _ = shard;
        self.unpersist(key);
    }
}

/// Performs a batch of shard-tagged actions, in order, against a
/// transport. Timer arms go to [`ShardTransport::set_shard_timer`];
/// every other action is shard-agnostic at the wire and routes to the
/// base [`Transport`] methods.
pub fn run_sharded_actions(actions: Vec<(ShardId, Action)>, t: &mut impl ShardTransport) {
    for (shard, action) in actions {
        match action {
            Action::Broadcast(packet) => t.broadcast(packet),
            Action::Unicast { host, packet } => t.unicast(host, packet),
            Action::SetTimer { delay_us, timer } => t.set_shard_timer(shard, delay_us, timer),
            Action::Deliver(env) => t.deliver(env),
            Action::DeliverGd(env) => t.deliver_gd(env),
            Action::Persist { key, bytes } => t.persist_shard(shard, key, bytes),
            Action::Unpersist { key } => t.unpersist_shard(shard, &key),
        }
    }
}

/// N independent protocol engines routed by subject hash — the sharded
/// face of [`Engine`], consumed the same way: feed it
/// `(now, `[`Event`]`)` pairs, perform the returned actions in order.
/// The only contract difference is that each action carries the
/// [`ShardId`] that produced it, so timer arms stay attributable.
pub struct ShardedEngine {
    shards: Vec<Engine>,
    /// Counters for driver-side events that are not attributable to one
    /// shard (RMI bookkeeping, router forwards, socket totals). Merged
    /// with every shard's own counters by [`ShardedEngine::merged_stats`].
    pub stats: BusStats,
}

impl ShardedEngine {
    /// Creates `cfg.shards` engines (at least one) for the daemon on
    /// `host32`.
    pub fn new(cfg: BusConfig, host32: u32) -> ShardedEngine {
        Self::build(cfg, host32, false)
    }

    /// Creates a loopback sharded engine (every shard accepts envelopes
    /// from its own host; see [`Engine::new_loopback`]).
    pub fn new_loopback(cfg: BusConfig, host32: u32) -> ShardedEngine {
        Self::build(cfg, host32, true)
    }

    fn build(cfg: BusConfig, host32: u32, loopback: bool) -> ShardedEngine {
        let n = cfg.shards.max(1);
        // One intern table for the whole daemon: a SubjectId assigned on
        // any shard (or at the driver boundary) is valid on every shard.
        let table = SubjectTable::new();
        let shards = (0..n)
            .map(|_| {
                let mut e = Engine::with_table(cfg.clone(), host32, table.clone());
                e.loopback = loopback;
                e
            })
            .collect();
        ShardedEngine {
            shards,
            stats: BusStats::default(),
        }
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `subject`.
    pub fn shard_of(&self, subject: &str) -> ShardId {
        shard_of_subject(subject, self.shards.len())
    }

    /// Borrows one shard's engine (tests and benches).
    pub fn shard(&self, id: ShardId) -> &Engine {
        &self.shards[id]
    }

    /// Mutably borrows one shard's engine (tests and benches).
    pub fn shard_mut(&mut self, id: ShardId) -> &mut Engine {
        &mut self.shards[id]
    }

    /// Decomposes into the per-shard engines. Drivers that want
    /// independent per-shard locking (the in-process bus puts each shard
    /// behind its own mutex so publishers on different subjects stop
    /// contending) flatten the sharded engine with this and route with
    /// [`shard_of_subject`] themselves.
    pub fn into_shards(self) -> Vec<Engine> {
        self.shards
    }

    /// The host id the shards publish under.
    pub fn host32(&self) -> u32 {
        self.shards[0].host32()
    }

    /// Sets the host id on every shard (drivers that learn their address
    /// after construction call this once, before traffic flows).
    pub fn set_host(&mut self, host32: u32) {
        for s in &mut self.shards {
            s.set_host(host32);
        }
    }

    /// The configuration the engines were built with.
    pub fn config(&self) -> &BusConfig {
        self.shards[0].config()
    }

    /// The daemon-wide subject intern table (shared by every shard).
    pub fn table(&self) -> &SubjectTable {
        self.shards[0].table()
    }

    /// Handles one event, returning shard-tagged actions to perform in
    /// order.
    ///
    /// Subject-bearing events go to the owning shard. An untagged
    /// [`Event::Timer`] fans out to every shard (prefer
    /// [`ShardedEngine::handle_timer`] when the driver knows which shard
    /// armed it); [`Event::GdRetry`] fans out by design — each shard
    /// scans its own ledger slice against the shared interest map.
    pub fn handle(&mut self, now: Micros, event: Event) -> Vec<(ShardId, Action)> {
        let owner = match &event {
            Event::Publish { subject, .. }
            | Event::Nak { subject, .. }
            | Event::GapSkip { subject, .. }
            | Event::Ack { subject, .. } => Some(self.shard_of(subject.as_str())),
            Event::Envelope { env, .. } => Some(self.shard_of(env.subject.as_str())),
            Event::Digest { entry, .. } => Some(self.shard_of(entry.subject.as_str())),
            Event::Timer(_) | Event::GdRetry { .. } => None,
        };
        if let Some(shard) = owner {
            return self.route(now, shard, event);
        }
        let mut out = Vec::new();
        match event {
            Event::Timer(kind) => {
                for shard in 0..self.shards.len() {
                    out.extend(self.handle_timer(now, shard, kind));
                }
            }
            Event::GdRetry { interest } => {
                for shard in 0..self.shards.len() {
                    out.extend(self.handle_gd_retry(now, shard, interest.clone()));
                }
            }
            // Every subject-bearing event returned through `owner` above.
            _ => unreachable!("subject-bearing events are routed above"),
        }
        out
    }

    /// Reports a shard-tagged timer firing to the shard that armed it.
    pub fn handle_timer(
        &mut self,
        now: Micros,
        shard: ShardId,
        kind: TimerKind,
    ) -> Vec<(ShardId, Action)> {
        self.route(now, shard, Event::Timer(kind))
    }

    /// Runs one shard's guaranteed-delivery retry round. `interest` may
    /// cover the union of all shards' pending subjects
    /// ([`ShardedEngine::gd_subjects`]): the shard only consults the
    /// subjects its own ledger slice holds.
    pub fn handle_gd_retry(
        &mut self,
        now: Micros,
        shard: ShardId,
        interest: HashMap<String, Vec<u32>>,
    ) -> Vec<(ShardId, Action)> {
        self.route(now, shard, Event::GdRetry { interest })
    }

    fn route(&mut self, now: Micros, shard: ShardId, event: Event) -> Vec<(ShardId, Action)> {
        self.shards[shard]
            .handle(now, event)
            .into_iter()
            .map(|a| (shard, a))
            .collect()
    }

    /// Sequences a publication on the owning shard without transmitting
    /// it — the split entry point mirroring [`Engine::publish`] for
    /// drivers that interleave local routing between sequencing and
    /// transmission.
    #[allow(clippy::too_many_arguments)]
    pub fn publish(
        &mut self,
        now: Micros,
        source: &PubSource,
        subject: &InternedSubject,
        qos: QoS,
        kind: EnvelopeKind,
        corr: u64,
        payload: Bytes,
    ) -> (Envelope, Vec<(ShardId, Action)>) {
        let shard = self.shard_of(subject.as_str());
        let (env, actions) =
            self.shards[shard].publish(now, source, subject, qos, kind, corr, payload);
        (env, actions.into_iter().map(|a| (shard, a)).collect())
    }

    /// Queues a sequenced envelope for transmission on its owning shard
    /// (the second half of the split publish path; see
    /// [`Engine::enqueue`]).
    pub fn enqueue(&mut self, env: &Envelope) -> Vec<(ShardId, Action)> {
        let shard = self.shard_of(env.subject.as_str());
        self.shards[shard]
            .enqueue(env)
            .into_iter()
            .map(|a| (shard, a))
            .collect()
    }

    // ----- guaranteed-delivery hooks ----------------------------------------

    /// Marks a pending guaranteed envelope as locally delivered on its
    /// owning shard.
    pub fn gd_local_done(&mut self, env: &Envelope) {
        let shard = self.shard_of(env.subject.as_str());
        self.shards[shard].gd_local_done(env);
    }

    /// The distinct subjects with pending guaranteed envelopes, across
    /// all shards (sorted, deduplicated). The driver computes interest
    /// for this union once and hands the same map to every shard's retry
    /// round.
    pub fn gd_subjects(&self) -> Vec<String> {
        let mut subjects: Vec<String> = self.shards.iter().flat_map(Engine::gd_subjects).collect();
        subjects.sort();
        subjects.dedup();
        subjects
    }

    /// Loads ledger envelopes read back after a restart, each onto the
    /// shard that owns its subject. Because [`shard_of_subject`] is
    /// stable across restarts, a driver replaying a single shard's
    /// persist map touches only that shard's state.
    pub fn gd_load(&mut self, envs: Vec<Envelope>) -> Vec<(ShardId, Action)> {
        let mut by_shard: Vec<Vec<Envelope>> = vec![Vec::new(); self.shards.len()];
        for env in envs {
            by_shard[self.shard_of(env.subject.as_str())].push(env);
        }
        let mut out = Vec::new();
        for (shard, batch) in by_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            out.extend(
                self.shards[shard]
                    .gd_load(batch)
                    .into_iter()
                    .map(|a| (shard, a)),
            );
        }
        out
    }

    // ----- discovery correlation hooks --------------------------------------
    //
    // Correlation windows are keyed by correlation id, not subject, so
    // they live on shard 0: discovery costs nothing extra under
    // sharding (queries and replies are ordinary publications that route
    // by their own subjects).

    /// Opens a discovery correlation window (on shard 0).
    pub fn discovery_start(&mut self, corr: u64, pending: PendingDiscovery) {
        self.shards[0].discovery_start(corr, pending);
    }

    /// Collects an "I am" announcement into its correlation window.
    pub fn discovery_collect(&mut self, env: &Envelope) {
        self.shards[0].discovery_collect(env);
    }

    /// Closes a correlation window, returning the collected replies.
    pub fn discovery_close(&mut self, corr: u64) -> Option<PendingDiscovery> {
        self.shards[0].discovery_close(corr)
    }

    // ----- stats fan-in ------------------------------------------------------

    /// One merged snapshot: the driver-side shared counters plus every
    /// shard's protocol counters summed (histograms included).
    pub fn merged_stats(&self) -> BusStats {
        let mut total = self.stats.clone();
        for s in &self.shards {
            total.merge_from(&s.stats);
        }
        total
    }

    /// Per-shard snapshots, in shard order (protocol counters only — the
    /// driver's shared counters are not per-shard).
    pub fn shard_stats(&self) -> Vec<BusStats> {
        self.shards.iter().map(|s| s.stats.clone()).collect()
    }

    /// The merged snapshot together with its per-shard breakdown.
    pub fn sharded_stats(&self) -> ShardedStats {
        ShardedStats {
            merged: self.merged_stats(),
            per_shard: self.shard_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_first_segment_keyed() {
        for shards in [1, 2, 4, 7] {
            for subject in ["equity.ibm.trade", "bond.t30.quote", "x", "a.b"] {
                let s1 = shard_of_subject(subject, shards);
                let s2 = shard_of_subject(subject, shards);
                assert_eq!(s1, s2, "unstable hash for {subject}");
                assert!(s1 < shards);
            }
        }
        // Same first segment → same shard, regardless of the tail.
        for shards in [2, 4, 16] {
            assert_eq!(
                shard_of_subject("equity.ibm.trade", shards),
                shard_of_subject("equity.dec.quote", shards),
            );
        }
        // One shard degenerates to the unsharded engine.
        assert_eq!(shard_of_subject("anything.at.all", 1), 0);
        assert_eq!(shard_of_subject("anything.at.all", 0), 0);
    }

    #[test]
    fn distinct_categories_spread_across_shards() {
        // Not a uniformity proof — just that the hash is not degenerate:
        // 26 single-letter categories must touch every one of 4 shards.
        let mut hit = [false; 4];
        for c in b'a'..=b'z' {
            let subject = format!("{}.data", c as char);
            hit[shard_of_subject(&subject, 4)] = true;
        }
        assert!(
            hit.iter().all(|h| *h),
            "4 shards not all reachable: {hit:?}"
        );
    }

    #[test]
    fn sharded_stats_fan_in_preserves_breakdown() {
        let mut se = ShardedEngine::new(BusConfig::default().with_shards(3), 9);
        se.stats.rmi_calls = 5;
        se.shard_mut(0).stats.published = 10;
        se.shard_mut(1).stats.published = 20;
        se.shard_mut(2).stats.sub_queue_depth = 7;
        let snap = se.sharded_stats();
        assert_eq!(snap.merged.published, 30);
        assert_eq!(snap.merged.rmi_calls, 5);
        assert_eq!(snap.merged.sub_queue_depth, 7);
        assert_eq!(snap.per_shard.len(), 3);
        assert_eq!(snap.max_sub_queue_depth(), 7);
    }
}
