//! Reliable delivery: per-(publisher, subject) sequencing with NAK-based
//! retransmission.
//!
//! "Under normal operation messages arrive exactly once, in the order
//! sent by each sender; after crashes or partitions, at most once."
//! `Publisher` owns the outbound side (sequence numbers, retention
//! rings, retransmission, idle-stream digests); `Receiver` owns the
//! inbound side (expected sequence, holdback reassembly, gap detection,
//! NAK generation, gap-skips). Both are pure: inputs are
//! `(now, event data)`, outputs are [`Action`]s.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use infobus_subject::InternedSubject;

use crate::buf::Bytes;
use crate::config::BusConfig;
use crate::envelope::{Envelope, EnvelopeKind, StreamKey};
use crate::msg::{Packet, SyncEntry};
use crate::QoS;

use super::stats::BusStats;
use super::{Action, Micros, PubSource, TimerKind};

struct OutStream {
    inc: u64,
    next_seq: u64,
    /// Sequences retransmitted recently (suppresses duplicate repairs
    /// when several receivers NAK the same loss): seq → time sent.
    recent_retrans: HashMap<u64, Micros>,
    /// Time of the stream's first publication.
    started: Micros,
    /// Time of the most recent publication.
    last_pub_at: Micros,
    /// Idle-digest rounds remaining (reset on every publication).
    digests_left: u32,
    retain: VecDeque<Envelope>,
}

struct InStream {
    expected: u64,
    /// Highest sequence number known to exist (seen or digested).
    known_top: u64,
    holdback: BTreeMap<u64, Envelope>,
    /// When the current gap was first observed (None = no gap).
    gap_since: Option<Micros>,
}

/// How long a retransmitted sequence suppresses further repairs of the
/// same loss (several receivers NAKing one collision).
const RETRANS_SUPPRESS_US: Micros = 20_000;

/// The outbound half of reliable delivery.
pub(super) struct Publisher {
    /// Keyed by (application, subject). Both halves are shared handles
    /// (`Arc<str>` / interned subject), so building a lookup key per
    /// publish is two reference-count bumps, never a string copy.
    streams: HashMap<(Arc<str>, InternedSubject), OutStream>,
}

impl Publisher {
    pub(super) fn new() -> Publisher {
        Publisher {
            streams: HashMap::new(),
        }
    }

    /// Stamps a publication with the next sequence number of its
    /// (application, subject) stream, retaining a copy for
    /// retransmission.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn sequence(
        &mut self,
        now: Micros,
        host32: u32,
        source: &PubSource,
        subject: &InternedSubject,
        qos: QoS,
        kind: EnvelopeKind,
        corr: u64,
        payload: Bytes,
        cfg: &BusConfig,
        stats: &mut BusStats,
    ) -> Envelope {
        let key = (source.app.clone(), subject.clone());
        let sync_rounds = cfg.sync_rounds;
        let stream = self.streams.entry(key).or_insert(OutStream {
            inc: source.inc,
            next_seq: 1,
            recent_retrans: HashMap::new(),
            started: now,
            last_pub_at: now,
            digests_left: sync_rounds,
            retain: VecDeque::new(),
        });
        stream.last_pub_at = now;
        stream.digests_left = sync_rounds;
        let env = Envelope {
            stream: StreamKey {
                host: host32,
                app: source.app.clone(),
                inc: stream.inc,
            },
            seq: stream.next_seq,
            stream_start: stream.started,
            subject: subject.clone(),
            qos,
            kind,
            corr,
            redelivery: false,
            route: source.route,
            payload,
        };
        stream.next_seq += 1;
        // Steady-state alloc-free: once the deque has grown past the
        // retention cap its capacity is never shrunk, so this push/pop
        // cycle recycles the same ring.
        stream.retain.push_back(env.clone());
        while stream.retain.len() > cfg.retain_per_stream {
            stream.retain.pop_front();
        }
        stats.published += 1;
        stats.published_bytes += env.payload.len() as u64;
        env
    }

    /// Answers a NAK: broadcasts retained envelopes (one repair serves
    /// every receiver that lost the frame), suppresses repairs already in
    /// flight, and gap-skips sequences no longer retained or belonging to
    /// an earlier incarnation.
    pub(super) fn handle_nak(
        &mut self,
        now: Micros,
        stream: StreamKey,
        subject: InternedSubject,
        requester: u32,
        missing: Vec<u64>,
        stats: &mut BusStats,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        stats.naks_served += 1;
        let key = (stream.app.clone(), subject.clone());
        let known = self
            .streams
            .get(&key)
            .is_some_and(|out| out.inc == stream.inc);
        if !known {
            // Unknown stream (for example, we restarted): tell the
            // receiver to skip everything it asked for.
            let through = missing.iter().copied().max().unwrap_or(0);
            stats.gapskips_sent += 1;
            actions.push(Action::Unicast {
                host: requester,
                packet: Packet::GapSkip {
                    stream,
                    subject,
                    through,
                },
            });
            return actions;
        }
        // Infallible: `known` above proved the key is present.
        let out = self.streams.get_mut(&key).expect("checked above");
        if std::env::var("IB_NAK_DEBUG").is_ok() {
            let lo = out.retain.front().map(|e| e.seq).unwrap_or(0);
            let hi = out.retain.back().map(|e| e.seq).unwrap_or(0);
            eprintln!(
                "NAK from {requester}: stream inc {} (out inc {}), missing {:?}, retention [{lo},{hi}]",
                stream.inc, out.inc, &missing[..missing.len().min(5)]
            );
        }
        out.recent_retrans
            .retain(|_, at| now.saturating_sub(*at) < RETRANS_SUPPRESS_US);
        let mut found: Vec<Envelope> = Vec::new();
        let mut lost_max: u64 = 0;
        for seq in &missing {
            if out.recent_retrans.contains_key(seq) {
                // Another receiver already triggered this repair; the
                // broadcast retransmission serves everyone.
                continue;
            }
            match out.retain.iter().find(|e| e.seq == *seq) {
                Some(e) => {
                    found.push(e.clone());
                    out.recent_retrans.insert(*seq, now);
                }
                None => lost_max = lost_max.max(*seq),
            }
        }
        if !found.is_empty() {
            stats.retransmitted += found.len() as u64;
            // Retransmissions are *broadcast*: when several receivers
            // lost the same frame (a collision corrupts it for everyone),
            // one retransmission repairs them all; receivers that already
            // have the sequence drop it as a duplicate.
            actions.push(Action::Broadcast(Packet::Data {
                envelopes: found,
                retrans: true,
            }));
        }
        if lost_max > 0 {
            stats.gapskips_sent += 1;
            actions.push(Action::Unicast {
                host: requester,
                packet: Packet::GapSkip {
                    stream,
                    subject,
                    through: lost_max,
                },
            });
        }
        actions
    }

    /// Broadcasts top-sequence digests for streams idle since the last
    /// sync period, so receivers can detect tail losses, then re-arms the
    /// sync timer.
    pub(super) fn sync_round(&mut self, now: Micros, host32: u32, cfg: &BusConfig) -> Vec<Action> {
        let mut actions = Vec::new();
        let period = cfg.sync_period_us;
        let mut entries = Vec::new();
        for ((app, subject), stream) in self.streams.iter_mut() {
            if stream.digests_left == 0
                || stream.next_seq == 1
                || now.saturating_sub(stream.last_pub_at) < period
            {
                continue;
            }
            stream.digests_left -= 1;
            entries.push(SyncEntry {
                stream: StreamKey {
                    host: host32,
                    app: app.clone(),
                    inc: stream.inc,
                },
                subject: subject.clone(),
                top_seq: stream.next_seq - 1,
                stream_start: stream.started,
            });
            if entries.len() >= 256 {
                break;
            }
        }
        if !entries.is_empty() {
            actions.push(Action::Broadcast(Packet::SeqSync { entries }));
        }
        actions.push(Action::SetTimer {
            delay_us: cfg.sync_period_us,
            timer: TimerKind::Sync,
        });
        actions
    }
}

/// The inbound half of reliable delivery.
pub(super) struct Receiver {
    streams: HashMap<(StreamKey, InternedSubject), InStream>,
}

impl Receiver {
    pub(super) fn new() -> Receiver {
        Receiver {
            streams: HashMap::new(),
        }
    }

    /// Accepts an envelope from the wire: dedups, acknowledges guaranteed
    /// envelopes, delivers in sender order, and holds back out-of-order
    /// arrivals until the gap fills (or a gap-skip abandons it).
    pub(super) fn accept(
        &mut self,
        now: Micros,
        env: Envelope,
        entitled: bool,
        host32: u32,
        stats: &mut BusStats,
        actions: &mut Vec<Action>,
    ) {
        let skey = (env.stream.clone(), env.subject.clone());
        // First contact with a stream: if it began after our earliest
        // matching subscription, we are entitled to it from sequence 1
        // (losses of early messages are NAKed); otherwise we are a late
        // subscriber and take it from here.
        let st = self.streams.entry(skey).or_insert_with(|| InStream {
            expected: if entitled { 1 } else { env.seq },
            known_top: 0,
            holdback: BTreeMap::new(),
            gap_since: None,
        });
        st.known_top = st.known_top.max(env.seq);
        if env.seq < st.expected {
            if env.qos == QoS::Guaranteed {
                actions.push(ack_action(&env, host32, stats));
                if env.redelivery {
                    // A guaranteed redelivery (ledger replay / repeated
                    // retry): the consumer's delivery state may have been
                    // lost with a restart, so deliver out of band rather
                    // than dedup. At-least-once permits the duplicate.
                    actions.push(Action::Deliver(env));
                    return;
                }
            }
            stats.dups_dropped += 1;
            return;
        }
        if env.seq == st.expected {
            // Saturating: `seq` is wire data, and `expected` can be
            // pinned at `u64::MAX` by a (hostile) GapSkip.
            st.expected = st.expected.saturating_add(1);
            // The in-order envelope goes straight onto the action list —
            // no intermediate `ready` vector, so the common case (no
            // holdback) touches the heap only through the caller's
            // reusable scratch vector.
            if env.qos == QoS::Guaranteed {
                actions.push(ack_action(&env, host32, stats));
            }
            actions.push(Action::Deliver(env));
            // Drain any consecutive held-back envelopes.
            loop {
                if let Some(e) = st.holdback.remove(&st.expected) {
                    st.expected = st.expected.saturating_add(1);
                    if e.qos == QoS::Guaranteed {
                        actions.push(ack_action(&e, host32, stats));
                    }
                    actions.push(Action::Deliver(e));
                } else {
                    let gap = !st.holdback.is_empty() || st.expected <= st.known_top;
                    st.gap_since = if gap { Some(now) } else { None };
                    break;
                }
            }
        } else {
            if st.gap_since.is_none() {
                st.gap_since = Some(now);
            }
            st.holdback.insert(env.seq, env);
        }
    }

    /// Handles a gap-skip from the publisher: abandons unavailable
    /// sequences and drains whatever became deliverable.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn handle_gapskip(
        &mut self,
        now: Micros,
        stream: StreamKey,
        subject: InternedSubject,
        through: u64,
        host32: u32,
        stats: &mut BusStats,
        actions: &mut Vec<Action>,
    ) {
        let key = (stream, subject);
        let Some(st) = self.streams.get_mut(&key) else {
            return;
        };
        // `through` rides in from the wire; saturate so a hostile
        // `u64::MAX` can't overflow the +1 (it pins `expected` at MAX,
        // which just means "skip everything").
        let new_expected = through.saturating_add(1);
        if new_expected > st.expected {
            stats.gaps_skipped += new_expected - st.expected;
            st.expected = new_expected;
        }
        // Drain anything now deliverable.
        let mut ready = Vec::new();
        while let Some(e) = st.holdback.remove(&st.expected) {
            st.expected = st.expected.saturating_add(1);
            ready.push(e);
        }
        let gap = !st.holdback.is_empty() || st.expected <= st.known_top;
        st.gap_since = if gap { Some(now) } else { None };
        for e in ready {
            if e.qos == QoS::Guaranteed {
                actions.push(ack_action(&e, host32, stats));
            }
            actions.push(Action::Deliver(e));
        }
    }

    /// Handles one received stream digest: opens/extends gap detection
    /// for tail losses. `sub_at` is the driver's earliest matching local
    /// subscription time (`None` = nothing local cares).
    pub(super) fn handle_digest(
        &mut self,
        now: Micros,
        entry: SyncEntry,
        sub_at: Option<Micros>,
        host32: u32,
        loopback: bool,
    ) {
        if !loopback && entry.stream.host == host32 {
            return;
        }
        let Some(sub_at) = sub_at else {
            return;
        };
        let skey = (entry.stream.clone(), entry.subject.clone());
        // If we never saw any message of this stream and it predates our
        // subscription, the digest implies nothing owed to us.
        if !self.streams.contains_key(&skey) && entry.stream_start < sub_at {
            return;
        }
        let st = self.streams.entry(skey).or_insert_with(|| InStream {
            expected: 1,
            known_top: 0,
            holdback: BTreeMap::new(),
            gap_since: None,
        });
        st.known_top = st.known_top.max(entry.top_seq);
        if st.expected <= st.known_top && st.gap_since.is_none() {
            st.gap_since = Some(now);
        }
    }

    /// Scans in-streams for aged gaps, emits NAKs, and re-arms the scan
    /// timer.
    pub(super) fn scan_gaps(
        &mut self,
        now: Micros,
        host32: u32,
        cfg: &BusConfig,
        stats: &mut BusStats,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut naks: Vec<Packet> = Vec::new();
        for ((stream, subject), st) in self.streams.iter_mut() {
            let Some(since) = st.gap_since else { continue };
            if now.saturating_sub(since) < cfg.nak_delay_us {
                continue;
            }
            let first_held = st.holdback.keys().next().copied();
            let end = match first_held {
                Some(k) => k,
                // `known_top` is learned from peer digests (wire data):
                // saturate rather than trust it not to be `u64::MAX`.
                None => st.known_top.saturating_add(1),
            };
            let missing: Vec<u64> = (st.expected..end).take(64).collect();
            if missing.is_empty() {
                st.gap_since = None;
                continue;
            }
            st.gap_since = Some(now); // re-NAK next period if still missing
            naks.push(Packet::Nak {
                stream: stream.clone(),
                subject: subject.clone(),
                requester: host32,
                missing,
            });
        }
        for nak in naks {
            if let Packet::Nak { ref stream, .. } = nak {
                let host = stream.host;
                stats.naks_sent += 1;
                actions.push(Action::Unicast { host, packet: nak });
            }
        }
        actions.push(Action::SetTimer {
            delay_us: cfg.nak_check_us,
            timer: TimerKind::NakScan,
        });
        actions
    }
}

/// Builds the unicast acknowledgment for a guaranteed envelope.
fn ack_action(env: &Envelope, host32: u32, stats: &mut BusStats) -> Action {
    stats.acks_sent += 1;
    Action::Unicast {
        host: env.stream.host,
        packet: Packet::Ack {
            stream: env.stream.clone(),
            subject: env.subject.clone(),
            seq: env.seq,
            from_host: host32,
        },
    }
}
