//! Batching: the paper's batch parameter.
//!
//! "The Information Bus has a batch parameter that increases throughput
//! by delaying small messages, and gathering them together." Sequenced
//! envelopes accumulate until either the byte threshold trips (flush
//! immediately) or the delay timer fires (flush whatever gathered).

use crate::config::BusConfig;
use crate::envelope::Envelope;
use crate::msg::Packet;

use super::stats::BusStats;
use super::{Action, TimerKind};

/// The outbound batch of one daemon.
pub(super) struct Batcher {
    queue: Vec<Envelope>,
    payload: usize,
    timer_armed: bool,
}

impl Batcher {
    pub(super) fn new() -> Batcher {
        Batcher {
            queue: Vec::new(),
            payload: 0,
            timer_armed: false,
        }
    }

    /// Appends a sequenced envelope; flushes when the byte threshold is
    /// reached, otherwise arms the flush timer.
    ///
    /// Framing is MTU-aware: if appending would push the gathered
    /// payload past the frame budget of [`BusConfig::path_mtu`], the
    /// current batch is flushed *first*, so every emitted `Data` packet
    /// fits one datagram on the configured path. (A single envelope
    /// larger than the budget still goes out alone — envelopes are the
    /// unit of retransmission and cannot be split.)
    pub(super) fn push(
        &mut self,
        env: &Envelope,
        cfg: &BusConfig,
        stats: &mut BusStats,
    ) -> Vec<Action> {
        let size = env.wire_size();
        let mut out = Vec::new();
        if !self.queue.is_empty() && self.payload + size > cfg.max_batch_payload() {
            out.extend(self.flush(stats));
        }
        self.payload += size;
        self.queue.push(env.clone());
        if self.payload >= cfg.batch_bytes {
            out.extend(self.flush(stats));
        } else if !self.timer_armed {
            self.timer_armed = true;
            out.push(Action::SetTimer {
                delay_us: cfg.batch_delay_us,
                timer: TimerKind::Batch,
            });
        }
        out
    }

    /// The flush timer fired: send whatever gathered.
    pub(super) fn timer_fired(&mut self, stats: &mut BusStats) -> Vec<Action> {
        self.timer_armed = false;
        self.flush(stats)
    }

    fn flush(&mut self, stats: &mut BusStats) -> Vec<Action> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        let envelopes = std::mem::take(&mut self.queue);
        self.payload = 0;
        stats.batch_flushes += 1;
        stats.batch_envelopes += envelopes.len() as u64;
        vec![Action::Broadcast(Packet::Data {
            envelopes,
            retrans: false,
        })]
    }
}
