//! Information routers: splicing bus segments into one logical bus.
//!
//! "Our implementation uses application-level 'information routers' …
//! Messages are received by one router using a subscription, transmitted
//! to another router, and then re-published on another bus. The router is
//! intelligent about which messages are sent to which routers: messages
//! are only re-published on buses for which there exists a subscription on
//! that subject; the router can also perform other functions, such as
//! transforming subjects … Thus, the overall effect is to create the
//! illusion of a single, large bus." (§3.1)
//!
//! In this implementation the router is a facility of the bus daemon: the
//! driver links two daemons with
//! [`BusFabric::link_buses`](crate::BusFabric::link_buses), which opens a
//! point-to-point connection between them (their hosts must share a
//! segment — typically a dedicated "WAN" link segment). Each side
//! periodically sends its bus's aggregate subscription table over the
//! link (with split-horizon aggregation, so chains of buses work), and
//! forwards exactly the publications the remote side has subscribers for.
//! Re-published messages appear on the remote bus as fresh publications
//! from the router — producers and consumers notice nothing (P4).
//!
//! Cyclic router topologies are not supported (split horizon prevents
//! two-bus echo and makes trees safe, but not rings); this matches the
//! paper's tree-of-buses deployments.

/// A subject-rewriting rule applied to publications crossing a link.
///
/// If a forwarded subject starts with `from_prefix` (element-wise), that
/// prefix is replaced with `to_prefix`. For example,
/// `{ from_prefix: "fab5", to_prefix: "hq.fab5" }` republishes
/// `fab5.cc.litho8` as `hq.fab5.cc.litho8` on the remote bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteRule {
    /// Element-wise subject prefix to match.
    pub from_prefix: String,
    /// Replacement prefix.
    pub to_prefix: String,
}

impl RewriteRule {
    /// Applies the rule to a subject string; returns the rewritten
    /// subject, or `None` if the prefix does not match.
    pub fn apply(&self, subject: &str) -> Option<String> {
        if subject == self.from_prefix {
            return Some(self.to_prefix.clone());
        }
        let rest = subject.strip_prefix(&self.from_prefix)?;
        if !rest.starts_with('.') {
            return None;
        }
        Some(format!("{}{}", self.to_prefix, rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrites_on_element_boundaries() {
        let r = RewriteRule {
            from_prefix: "fab5".into(),
            to_prefix: "hq.fab5".into(),
        };
        assert_eq!(r.apply("fab5.cc.litho8"), Some("hq.fab5.cc.litho8".into()));
        assert_eq!(r.apply("fab5"), Some("hq.fab5".into()));
        assert_eq!(r.apply("fab55.cc"), None, "no partial-element match");
        assert_eq!(r.apply("news.fab5"), None);
    }

    #[test]
    fn multi_element_prefix() {
        let r = RewriteRule {
            from_prefix: "news.equity".into(),
            to_prefix: "ny.equity".into(),
        };
        assert_eq!(r.apply("news.equity.gmc"), Some("ny.equity.gmc".into()));
        assert_eq!(r.apply("news.bond.gmc"), None);
    }
}
