//! Information routers: splicing bus segments into one logical bus.
//!
//! "Our implementation uses application-level 'information routers' …
//! Messages are received by one router using a subscription, transmitted
//! to another router, and then re-published on another bus. The router is
//! intelligent about which messages are sent to which routers: messages
//! are only re-published on buses for which there exists a subscription on
//! that subject; the router can also perform other functions, such as
//! transforming subjects … Thus, the overall effect is to create the
//! illusion of a single, large bus." (§3.1)
//!
//! In this implementation the router is a facility of the bus daemon: the
//! driver links two daemons with
//! [`BusFabric::link_buses`](crate::BusFabric::link_buses), which opens a
//! point-to-point connection between them (their hosts must share a
//! segment — typically a dedicated "WAN" link segment). The routing state
//! machine itself lives in the [`infobus_router`] crate as a sans-I/O
//! [`infobus_router::RouterEngine`]; the daemon drives it.
//! Each side periodically exchanges an aggregated subscription *summary*
//! (subject-prefix filters, never raw subscriber lists; split-horizon
//! aggregation makes chains of buses work), and forwards exactly the
//! publications the remote side has subscribers for. Re-published
//! messages appear on the remote bus as fresh publications from the
//! router — producers and consumers notice nothing (P4).
//!
//! Cyclic router topologies are supported. Split horizon alone only makes
//! trees safe, so every publication crossing its first link is stamped
//! with a [`RouteStamp`] — `(origin router, epoch, sequence)` plus a hop
//! budget — and every router suppresses copies it has already routed
//! (dedup window), copies it stamped itself (ring returns), and refuses
//! to forward a copy whose hop budget is spent. Route summaries age out
//! unless refreshed (soft state), and a periodic self-stabilization pass
//! revalidates every table against locally-derivable truth, rebuilding
//! whatever fails. See `DESIGN.md` §Routers for the full contract.

pub use infobus_router::{
    ForwardTarget, LinkId, RewriteRule, RouteDecision, RouteStamp, RouteStats, RouterAction,
    RouterConfig, RouterEngine, RouterEvent, RouterTimer,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrites_on_element_boundaries() {
        let r = RewriteRule {
            from_prefix: "fab5".into(),
            to_prefix: "hq.fab5".into(),
        };
        assert_eq!(r.apply("fab5.cc.litho8"), Some("hq.fab5.cc.litho8".into()));
        assert_eq!(r.apply("fab5"), Some("hq.fab5".into()));
        assert_eq!(r.apply("fab55.cc"), None, "no partial-element match");
        assert_eq!(r.apply("news.fab5"), None);
    }

    #[test]
    fn multi_element_prefix() {
        let r = RewriteRule {
            from_prefix: "news.equity".into(),
            to_prefix: "ny.equity".into(),
        };
        assert_eq!(r.apply("news.equity.gmc"), Some("ny.equity.gmc".into()));
        assert_eq!(r.apply("news.bond.gmc"), None);
    }
}
