//! The driver-side non-volatile store behind `Persist`/`Unpersist`.
//!
//! The engine logs every guaranteed envelope *before* it is sent by
//! emitting [`Action::Persist`](crate::engine::Action) and releases it
//! with `Unpersist` once acknowledged; what those actions land on is the
//! driver's choice. [`NvStore`] is that choice, shared by every
//! wall-clock driver:
//!
//! * **`Mem`** — the historical in-memory map. Guaranteed delivery
//!   survives engine restarts (tests hand the map back to
//!   [`Engine::gd_load`](crate::engine::Engine::gd_load)) but not
//!   process death.
//! * **`Durable`** — one [`WalLedger`] per engine shard under
//!   [`BusConfig::durable_dir`], laid out as `<dir>/shard-<n>`. Because
//!   [`shard_of_subject`](crate::engine::shard_of_subject) is stable
//!   across restarts, a restarted daemon replays each shard's ledger
//!   directory onto exactly the shard that wrote it.
//!
//! Ledger I/O failures on the write path are fail-stop (a panic): a
//! daemon that cannot log a guaranteed message must not pretend it can
//! guarantee it.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use infobus_subject::SubjectTable;
use infobus_wal::{LedgerOptions, LedgerStats, WalLedger};

use crate::config::BusConfig;
use crate::engine::{BusStats, ShardId};
use crate::envelope::Envelope;

/// The non-volatile store a driver performs ledger actions against.
/// See the module docs.
pub enum NvStore {
    /// In-memory stand-in for the paper's non-volatile store (the
    /// default, when [`BusConfig::durable_dir`] is unset).
    Mem(BTreeMap<String, Vec<u8>>),
    /// Per-shard write-ahead ledgers, indexed by [`ShardId`].
    Durable(Vec<WalLedger>),
}

/// The per-shard ledger directory under a durable root.
pub fn shard_dir(root: &Path, shard: ShardId) -> std::path::PathBuf {
    root.join(format!("shard-{shard}"))
}

impl NvStore {
    /// Opens the store `cfg` asks for: in-memory when
    /// [`BusConfig::durable_dir`] is unset, otherwise one recovered
    /// [`WalLedger`] per engine shard.
    ///
    /// # Errors
    ///
    /// Propagates ledger I/O failures (corrupt content is recovered,
    /// not an error).
    pub fn open(cfg: &BusConfig) -> io::Result<NvStore> {
        let Some(root) = &cfg.durable_dir else {
            return Ok(NvStore::Mem(BTreeMap::new()));
        };
        let opts = LedgerOptions::default()
            .with_segment_bytes(cfg.segment_bytes)
            .with_fsync(cfg.fsync)
            .with_mem_bytes(cfg.durable_mem_bytes);
        let ledgers = (0..cfg.shards.max(1))
            .map(|shard| WalLedger::open(shard_dir(root, shard), opts))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(NvStore::Durable(ledgers))
    }

    /// Whether this store writes to disk.
    pub fn is_durable(&self) -> bool {
        matches!(self, NvStore::Durable(_))
    }

    /// Records `key → bytes` on behalf of `shard` (the `Persist`
    /// action).
    ///
    /// # Panics
    ///
    /// Panics on ledger I/O failure — see the module docs on fail-stop.
    pub fn persist(&mut self, shard: ShardId, key: &str, bytes: &[u8]) {
        match self {
            NvStore::Mem(map) => {
                map.insert(key.to_owned(), bytes.to_vec());
            }
            NvStore::Durable(ledgers) => ledgers[shard]
                .append(key, bytes)
                .expect("guaranteed-delivery ledger append failed"),
        }
    }

    /// Releases `key` on behalf of `shard` (the `Unpersist` action).
    ///
    /// # Panics
    ///
    /// Panics on ledger I/O failure — see the module docs on fail-stop.
    pub fn unpersist(&mut self, shard: ShardId, key: &str) {
        match self {
            NvStore::Mem(map) => {
                map.remove(key);
            }
            NvStore::Durable(ledgers) => {
                ledgers[shard]
                    .remove(key)
                    .expect("guaranteed-delivery ledger tombstone failed");
            }
        }
    }

    /// Decodes every stored entry back into an envelope — the restart
    /// replay input for
    /// [`ShardedEngine::gd_load`](crate::engine::ShardedEngine::gd_load).
    /// Entries whose payload no longer decodes (version skew across a
    /// restart) are skipped rather than fatal.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures reading spilled ledger entries.
    pub fn recovered_envelopes(&self, table: &SubjectTable) -> io::Result<Vec<Envelope>> {
        let mut envs = Vec::new();
        match self {
            NvStore::Mem(map) => {
                for bytes in map.values() {
                    if let Ok(env) = Envelope::decode(&mut bytes.as_slice(), table) {
                        envs.push(env);
                    }
                }
            }
            NvStore::Durable(ledgers) => {
                for ledger in ledgers {
                    for (_, bytes) in ledger.entries()? {
                        if let Ok(env) = Envelope::decode(&mut bytes.as_slice(), table) {
                            envs.push(env);
                        }
                    }
                }
            }
        }
        Ok(envs)
    }

    /// Total live entries across shards.
    pub fn len(&self) -> usize {
        match self {
            NvStore::Mem(map) => map.len(),
            NvStore::Durable(ledgers) => ledgers.iter().map(WalLedger::len).sum(),
        }
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ledger counters summed across shards (all zero for the
    /// in-memory store).
    pub fn ledger_stats(&self) -> LedgerStats {
        let mut total = LedgerStats::default();
        if let NvStore::Durable(ledgers) = self {
            for ledger in ledgers {
                total.merge_from(&ledger.stats());
            }
        }
        total
    }

    /// Stamps the `gd_ledger_*` counters of a stats snapshot from this
    /// store (drivers call this when assembling their merged view).
    pub fn stamp_stats(&self, stats: &mut BusStats) {
        let ls = self.ledger_stats();
        stats.gd_ledger_appends = ls.appends;
        stats.gd_ledger_bytes = ls.bytes;
        stats.gd_ledger_segments = ls.segments;
        stats.gd_ledger_compactions = ls.compactions;
        stats.gd_ledger_recovered = ls.recovered;
        stats.gd_ledger_truncations = ls.truncations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buf::Bytes;
    use crate::engine::{Engine, Event};
    use crate::{QoS, StreamKey};
    use infobus_wal::scratch::ScratchDir;

    fn env(subject: &str, seq: u64) -> Envelope {
        Envelope {
            stream: StreamKey {
                app: "t".into(),
                host: 1,
                inc: 1,
            },
            subject: SubjectTable::new().intern(subject).unwrap(),
            seq,
            qos: QoS::Guaranteed,
            kind: crate::EnvelopeKind::Data,
            corr: 0,
            stream_start: 0,
            redelivery: false,
            route: None,
            payload: Bytes::from_vec(vec![1, 2, 3]),
        }
    }

    #[test]
    fn mem_store_round_trips_envelopes() {
        let mut nv = NvStore::open(&BusConfig::default()).unwrap();
        assert!(!nv.is_durable());
        let mut bytes = Vec::new();
        env("a.b", 1).encode(&mut bytes);
        nv.persist(0, "gd/t/a.b/1", &bytes);
        assert_eq!(nv.len(), 1);
        let envs = nv.recovered_envelopes(&SubjectTable::new()).unwrap();
        assert_eq!(envs.len(), 1);
        assert_eq!(envs[0].subject, "a.b");
        nv.unpersist(0, "gd/t/a.b/1");
        assert!(nv.is_empty());
    }

    #[test]
    fn durable_store_replays_across_reopen_per_shard() {
        let dir = ScratchDir::new("nv-replay");
        let cfg = BusConfig::default()
            .with_shards(4)
            .with_durable_dir(dir.path());
        {
            let mut nv = NvStore::open(&cfg).unwrap();
            assert!(nv.is_durable());
            for (shard, subject) in [(0, "a.x"), (1, "b.x"), (2, "c.x"), (3, "d.x")] {
                let mut bytes = Vec::new();
                env(subject, 1).encode(&mut bytes);
                nv.persist(shard, &format!("gd/t/{subject}/1"), &bytes);
            }
        }
        // Each shard's entries landed in that shard's directory.
        for shard in 0..4 {
            assert!(shard_dir(dir.path(), shard).is_dir());
        }
        let nv = NvStore::open(&cfg).unwrap();
        assert_eq!(nv.len(), 4);
        let mut subjects: Vec<String> = nv
            .recovered_envelopes(&SubjectTable::new())
            .unwrap()
            .into_iter()
            .map(|e| e.subject.as_str().to_owned())
            .collect();
        subjects.sort();
        assert_eq!(subjects, ["a.x", "b.x", "c.x", "d.x"]);
        assert_eq!(nv.ledger_stats().recovered, 4);
    }

    /// The full restart loop: a publisher engine persists guaranteed
    /// envelopes through a durable store, "dies", and a fresh engine
    /// reloads the store's envelopes as pending redeliveries.
    #[test]
    fn engine_restart_replays_durable_ledger() {
        let dir = ScratchDir::new("nv-engine");
        let cfg = BusConfig::default().with_durable_dir(dir.path());
        let mut nv = NvStore::open(&cfg).unwrap();
        {
            let mut eng = Engine::new(cfg.clone(), 7);
            let source = crate::engine::PubSource {
                app: "t".into(),
                inc: 1,
                route: None,
            };
            let subject = eng.table().intern("g.x").unwrap();
            let (env, actions) = eng.publish(
                0,
                &source,
                &subject,
                QoS::Guaranteed,
                crate::EnvelopeKind::Data,
                0,
                Bytes::from_vec(vec![9]),
            );
            let mut found_persist = false;
            for a in actions.into_iter().chain(eng.enqueue(&env)) {
                if let crate::engine::Action::Persist { key, bytes } = a {
                    nv.persist(0, &key, &bytes);
                    found_persist = true;
                }
            }
            assert!(found_persist, "guaranteed publish must persist");
        }
        drop(nv);
        let nv = NvStore::open(&cfg).unwrap();
        let mut eng = Engine::new(cfg, 7);
        let envs = nv.recovered_envelopes(eng.table()).unwrap();
        assert_eq!(envs.len(), 1);
        eng.gd_load(envs);
        assert_eq!(eng.stats.gd_pending, 1);
        assert_eq!(eng.gd_subjects(), vec!["g.x".to_string()]);
        // The reloaded entry retries as a redelivery.
        let mut interest = std::collections::HashMap::new();
        interest.insert("g.x".to_string(), vec![2u32]);
        let actions = eng.handle(1_000_000, Event::GdRetry { interest });
        let resent = actions.iter().any(|a| {
            matches!(a, crate::engine::Action::Broadcast(crate::msg::Packet::Data { envelopes, .. })
                if envelopes.iter().any(|e| e.redelivery))
        });
        assert!(resent, "reloaded entry must retransmit flagged");
    }
}
