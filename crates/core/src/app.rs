//! The application-facing API: [`BusApp`] and [`BusCtx`].

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

use infobus_netsim::{Ctx, Micros};
use infobus_subject::{Subject, SubjectFilter, SubscriptionId};
use infobus_types::{DataObject, TypeRegistry, Value};

use crate::daemon::DaemonState;
use crate::rmi::{CallId, RetryMode, RmiError, SelectionPolicy, ServiceObject};
use crate::{BusError, QoS};

/// A publication delivered to a subscriber.
///
/// Communication is anonymous (P4): the message carries the subject and
/// the self-describing value, but not the producer's identity or location.
#[derive(Debug, Clone, PartialEq)]
pub struct BusMessage {
    /// The subject the object was published under.
    pub subject: Subject,
    /// The unmarshalled value (usually an object).
    pub value: Value,
    /// The publication's quality of service.
    pub qos: QoS,
    /// `true` if this may be a repeat (guaranteed-delivery redelivery
    /// after a publisher restart).
    pub redelivery: bool,
}

/// One "I am" answer collected by a discovery request.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryReply {
    /// The self-description the responder published.
    pub info: Value,
}

/// A handle for one active subscription, returned by
/// [`BusCtx::subscribe`] and consumed by [`BusCtx::unsubscribe`].
///
/// The handle is opaque: it identifies the subscription within its
/// daemon and carries no other meaning. It deliberately wraps the trie's
/// raw [`SubscriptionId`] so application code cannot confuse a data
/// subscription with the daemon's internal control subscriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionHandle(pub(crate) SubscriptionId);

impl SubscriptionHandle {
    /// The underlying trie id (diagnostics only — cannot be turned back
    /// into a handle).
    pub fn id(&self) -> u64 {
        self.0 .0
    }

    /// Wraps a raw trie [`SubscriptionId`] in a handle.
    ///
    /// Driver-facing: bus drivers living outside this crate (the UDP
    /// transport, the edge reactor) allocate subscriptions in their own
    /// [`SubjectTrie`](infobus_subject::SubjectTrie) and hand the id out
    /// through the unified [`Bus`](crate::bus::Bus) surface. Application
    /// code never needs this — handles come from `subscribe`.
    pub fn from_raw(id: SubscriptionId) -> SubscriptionHandle {
        SubscriptionHandle(id)
    }

    /// The raw trie [`SubscriptionId`] this handle wraps.
    ///
    /// Driver-facing counterpart of [`SubscriptionHandle::from_raw`]:
    /// drivers need the trie id back to honour an unsubscribe.
    pub fn raw(&self) -> SubscriptionId {
        self.0
    }
}

/// An application attached to a bus daemon.
///
/// Applications are event handlers, like processes in the network
/// simulator: the daemon invokes at most one handler at a time. All
/// default implementations do nothing.
pub trait BusApp: Any {
    /// Called once when the application attaches to the daemon.
    fn on_start(&mut self, bus: &mut BusCtx<'_, '_>) {
        let _ = bus;
    }

    /// Called for each publication matching one of this application's
    /// subscriptions.
    fn on_message(&mut self, bus: &mut BusCtx<'_, '_>, msg: &BusMessage) {
        let _ = (bus, msg);
    }

    /// Called when an application timer set with [`BusCtx::set_timer`]
    /// fires.
    fn on_timer(&mut self, bus: &mut BusCtx<'_, '_>, token: u64) {
        let _ = (bus, token);
    }

    /// Called when the driver injects a command with
    /// [`BusFabric::send_app_command`](crate::BusFabric::send_app_command).
    ///
    /// This is the driver-side escape hatch: unlike
    /// [`BusFabric::with_app`](crate::BusFabric::with_app), the handler
    /// runs with a live [`BusCtx`], so it can publish, subscribe, or set
    /// timers in response.
    fn on_command(&mut self, bus: &mut BusCtx<'_, '_>, cmd: Box<dyn Any>) {
        let _ = (bus, cmd);
    }

    /// Called when a discovery window started with [`BusCtx::discover`]
    /// closes, with every reply collected.
    fn on_discovery(&mut self, bus: &mut BusCtx<'_, '_>, token: u64, replies: Vec<DiscoveryReply>) {
        let _ = (bus, token, replies);
    }

    /// Called when an RMI call completes (successfully or not).
    fn on_rmi_reply(
        &mut self,
        bus: &mut BusCtx<'_, '_>,
        call: CallId,
        result: Result<Value, RmiError>,
    ) {
        let _ = (bus, call, result);
    }
}

/// The capability handle applications use to talk to their daemon.
///
/// A `BusCtx` is valid for the duration of one handler invocation.
pub struct BusCtx<'a, 'b> {
    pub(crate) d: &'a mut DaemonState,
    pub(crate) net: &'a mut Ctx<'b>,
    pub(crate) app_idx: usize,
}

impl BusCtx<'_, '_> {
    /// Current virtual time, in microseconds.
    pub fn now(&self) -> Micros {
        self.net.now()
    }

    /// The name of the host this application runs on.
    pub fn host_name(&self) -> String {
        self.net.host_name()
    }

    /// The name this application was attached under.
    pub fn app_name(&self) -> String {
        self.d.app_name(self.app_idx)
    }

    /// The daemon's shared type registry. `defclass` in TDL, incoming
    /// self-describing messages, and Rust code all feed the same registry.
    pub fn registry(&self) -> Rc<RefCell<TypeRegistry>> {
        self.d.registry()
    }

    /// Publishes a value under a subject.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for malformed subjects or
    /// [`BusError::Marshal`] if the value references unregistered types.
    pub fn publish(&mut self, subject: &str, value: &Value, qos: QoS) -> Result<(), BusError> {
        let subject = Subject::new(subject)?;
        self.d.publish(self.net, self.app_idx, &subject, value, qos)
    }

    /// Publishes a data object (convenience wrapper over
    /// [`BusCtx::publish`]).
    ///
    /// # Errors
    ///
    /// Same as [`BusCtx::publish`].
    pub fn publish_object(
        &mut self,
        subject: &str,
        object: &DataObject,
        qos: QoS,
    ) -> Result<(), BusError> {
        self.publish(subject, &Value::Object(Box::new(object.clone())), qos)
    }

    /// Subscribes this application to a subject filter. Matching
    /// publications arrive via [`BusApp::on_message`]. The returned
    /// [`SubscriptionHandle`] cancels the subscription when passed to
    /// [`BusCtx::unsubscribe`].
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for malformed filters.
    pub fn subscribe(&mut self, filter: &str) -> Result<SubscriptionHandle, BusError> {
        Ok(SubscriptionHandle(self.d.subscribe_app_expanded(
            self.net,
            self.app_idx,
            filter,
            None,
        )?))
    }

    /// Subscribes with a content predicate: only matching publications
    /// whose payload satisfies `pred` are delivered, and the predicate
    /// travels to *publishing* daemons so unanimously rejected
    /// publications are suppressed before they are marshalled or sent.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for malformed filters or
    /// [`BusError::Filter`] if the predicate exceeds the compile bounds.
    pub fn subscribe_filtered(
        &mut self,
        filter: &str,
        pred: &crate::engine::filter::Predicate,
    ) -> Result<SubscriptionHandle, BusError> {
        let compiled =
            std::sync::Arc::new(crate::engine::filter::CompiledPredicate::compile(pred)?);
        Ok(SubscriptionHandle(self.d.subscribe_app_expanded(
            self.net,
            self.app_idx,
            filter,
            Some(compiled),
        )?))
    }

    /// Cancels a subscription made with [`BusCtx::subscribe`].
    pub fn unsubscribe(&mut self, handle: SubscriptionHandle) {
        self.d.unsubscribe(self.net, handle.0);
    }

    /// Starts a "Who's out there?" discovery (§3.2): publishes a query on
    /// `subject` and collects "I am" announcements for the configured
    /// window; results arrive via [`BusApp::on_discovery`] with `token`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for malformed subjects.
    pub fn discover(&mut self, subject: &str, token: u64) -> Result<(), BusError> {
        let subject = Subject::new(subject)?;
        self.d.discover(self.net, self.app_idx, &subject, token)
    }

    /// Registers this application as a discovery responder: any query on
    /// a subject matching `filter` is answered with `info` ("I am", plus
    /// state describing the responder).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for malformed filters.
    pub fn respond_to_discovery(&mut self, filter: &str, info: Value) -> Result<(), BusError> {
        let filter = SubjectFilter::new(filter)?;
        self.d
            .add_discovery_responder(self.net, self.app_idx, &filter, info);
        Ok(())
    }

    /// Exports a service object under a subject name (§3.3). Servers are
    /// named by subjects; clients find them with [`BusCtx::rmi_call`].
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Duplicate`] if this daemon already exports a
    /// service under the subject.
    pub fn export_service(
        &mut self,
        subject: &str,
        service: Box<dyn ServiceObject>,
    ) -> Result<(), BusError> {
        let subject = Subject::new(subject)?;
        self.d
            .export_service(self.net, self.app_idx, &subject, service)
    }

    /// Withdraws a service previously exported under `subject` (an old
    /// server going off-line after a live upgrade).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::NotFound`] if no such service is exported here.
    pub fn withdraw_service(&mut self, subject: &str) -> Result<(), BusError> {
        self.d.withdraw_service(self.net, subject)
    }

    /// Invokes `op` on a server object named by `subject`. Discovery,
    /// server selection, connection, and fail-over are handled by the
    /// daemon; the result arrives via [`BusApp::on_rmi_reply`].
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Subject`] for malformed subjects.
    pub fn rmi_call(
        &mut self,
        subject: &str,
        op: &str,
        args: Vec<Value>,
        policy: SelectionPolicy,
        retry: RetryMode,
    ) -> Result<CallId, BusError> {
        let subject = Subject::new(subject)?;
        Ok(self
            .d
            .rmi_call(self.net, self.app_idx, &subject, op, args, policy, retry))
    }

    /// Sets an application timer; fires via [`BusApp::on_timer`] with
    /// `token`.
    pub fn set_timer(&mut self, delay: Micros, token: u64) {
        self.d.set_app_timer(self.net, self.app_idx, delay, token);
    }

    /// The aggregate set of subject filters known to be subscribed
    /// anywhere on this bus segment (local applications plus peer-daemon
    /// announcements). Information routers use this to decide what to
    /// forward.
    pub fn known_subscriptions(&self) -> Vec<SubjectFilter> {
        self.d.known_subscriptions()
    }

    /// Writes to this host's non-volatile storage (survives crashes and
    /// restarts of the node). Applications that must not lose state —
    /// persistent repositories, guaranteed-delivery consumers — keep
    /// their recovery data here.
    pub fn nv_put(&mut self, key: &str, value: Vec<u8>) {
        self.net.nv_put(key, value);
    }

    /// Reads from this host's non-volatile storage.
    pub fn nv_get(&self, key: &str) -> Option<Vec<u8>> {
        self.net.nv_get(key)
    }

    /// Deletes a non-volatile value; returns `true` if it existed.
    pub fn nv_delete(&mut self, key: &str) -> bool {
        self.net.nv_delete(key)
    }

    /// Lists non-volatile keys with the given prefix, sorted.
    pub fn nv_keys(&self, prefix: &str) -> Vec<String> {
        self.net.nv_keys(prefix)
    }

    /// Appends a line to the simulation trace (when tracing is enabled).
    pub fn trace(&mut self, line: impl FnOnce() -> String) {
        self.net.trace(line);
    }

    /// Draws a uniformly random `f64` in `[0, 1)` from the simulation's
    /// deterministic RNG.
    pub fn random(&mut self) -> f64 {
        self.net.random()
    }
}
