//! Hot-path buffer discipline: shared byte slices ([`Bytes`]) and a
//! recycling marshal-buffer pool ([`BufPool`]).
//!
//! Before this module every publish marshalled into a fresh `Vec<u8>`,
//! cloned it into each envelope hop, and wrapped it in a new `Arc` for
//! every subscriber fan-out — three allocations per message that the
//! paper's sub-microsecond latency budget cannot afford. The discipline
//! here is:
//!
//! * a payload is written **once**, into a buffer borrowed from a
//!   [`BufPool`] ([`BufPool::take`] → [`PooledBuf`]);
//! * freezing the buffer ([`PooledBuf::freeze`]) produces a [`Bytes`]
//!   handle — a reference-counted slice that clones by pointer bump —
//!   and simultaneously parks the allocation back in the pool;
//! * once every `Bytes` clone is dropped the parked allocation becomes
//!   the sole owner again and the next [`BufPool::take`] reuses it
//!   **without allocating** — the pool never calls `Arc::new` on a hit,
//!   it recycles the same `Arc<Vec<u8>>` end to end.
//!
//! The pool tracks hits and misses; drivers surface them as the
//! `buf_pool_hits`/`buf_pool_misses`-backed `BusStats` counters.

use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, Range};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

fn empty_arc() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new())).clone()
}

/// A cheaply cloneable, immutable byte slice: a reference-counted
/// buffer plus an offset/length window into it.
///
/// Cloning bumps a reference count; no bytes are copied. Equality and
/// hashing follow the visible bytes, so `Bytes` drops into maps and
/// assertions exactly like the `Vec<u8>` payloads it replaces.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty slice. Does not allocate after first use.
    pub fn new() -> Bytes {
        Bytes {
            data: empty_arc(),
            off: 0,
            len: 0,
        }
    }

    /// Wraps an owned vector without copying.
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }

    /// Wraps an already-shared vector without copying.
    pub fn from_arc(data: Arc<Vec<u8>>) -> Bytes {
        let len = data.len();
        Bytes { data, off: 0, len }
    }

    /// Copies `b` into a fresh allocation.
    pub fn copy_from_slice(b: &[u8]) -> Bytes {
        Bytes::from_vec(b.to_vec())
    }

    /// A sub-window of this slice, sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len);
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    /// The visible bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the visible bytes into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Bytes {
        Bytes::copy_from_slice(b)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len)
    }
}

/// A recycling pool of marshal buffers.
///
/// The pool is a cloneable handle; all clones share the same slots and
/// counters. See the module docs for the take → write → freeze → reuse
/// lifecycle. Buffers whose every [`Bytes`] reference has been dropped
/// are reused in place; buffers still referenced stay parked (the pool
/// holds at most [`BufPool::DEFAULT_SLOTS`] unless built
/// [`with_slots`](BufPool::with_slots)).
#[derive(Clone)]
pub struct BufPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    /// Parked allocations in park order (oldest in front). A slot whose
    /// `Arc` strong count is back to 1 has no outstanding `Bytes`
    /// references and may be recycled. Because references are released
    /// roughly in park order (the retransmission window rolls oldest
    /// first), the front of the deque is the most likely free slot —
    /// [`BufPool::take`] probes only the first few entries, keeping the
    /// hit path O(1) regardless of pool size.
    slots: Mutex<VecDeque<Arc<Vec<u8>>>>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufPool {
    /// Default number of parked buffers a pool retains.
    pub const DEFAULT_SLOTS: usize = 32;

    /// A pool retaining up to [`BufPool::DEFAULT_SLOTS`] buffers.
    pub fn new() -> BufPool {
        BufPool::with_slots(BufPool::DEFAULT_SLOTS)
    }

    /// A pool retaining up to `cap` parked buffers.
    ///
    /// Size `cap` to cover the references that pin frozen buffers —
    /// drivers use the engine's retransmission window plus slack — so
    /// that at steady state there is always a released slot to recycle.
    pub fn with_slots(cap: usize) -> BufPool {
        BufPool {
            inner: Arc::new(PoolInner {
                slots: Mutex::new(VecDeque::with_capacity(cap)),
                cap,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// How many parked slots [`BufPool::take`] probes before giving up
    /// and allocating. Frees happen roughly in park order, so the free
    /// slot is almost always at the front; a small probe bounds the
    /// worst case without losing the common one.
    const TAKE_PROBES: usize = 8;

    /// Borrows an empty, writable buffer — recycled if a parked
    /// allocation near the front of the pool is free, freshly allocated
    /// otherwise.
    pub fn take(&self) -> PooledBuf {
        let mut slots = self.inner.slots.lock().unwrap_or_else(|e| e.into_inner());
        let mut found = None;
        for _ in 0..Self::TAKE_PROBES.min(slots.len()) {
            let arc = slots.pop_front().expect("probe bounded by len");
            if Arc::strong_count(&arc) == 1 {
                found = Some(arc);
                break;
            }
            // Still referenced: re-park behind the newer slots; it will
            // be free well before it reaches the front again.
            slots.push_back(arc);
        }
        let buf = match found {
            Some(mut arc) => {
                // We hold the only reference, so the vector is writable
                // in place: clear it (keeping capacity) and hand it out.
                Arc::get_mut(&mut arc)
                    .expect("sole owner after strong_count==1 check")
                    .clear();
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                arc
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Arc::new(Vec::new())
            }
        };
        drop(slots);
        PooledBuf {
            buf: Some(buf),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Buffers served from a parked allocation (no heap allocation).
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Buffers that had to be freshly allocated.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }
}

impl Default for BufPool {
    fn default() -> BufPool {
        BufPool::new()
    }
}

impl fmt::Debug for BufPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BufPool(hits={}, misses={})", self.hits(), self.misses())
    }
}

/// A writable buffer checked out of a [`BufPool`].
///
/// Write through [`vec_mut`](PooledBuf::vec_mut), then
/// [`freeze`](PooledBuf::freeze) into an immutable
/// [`Bytes`]. Dropping without freezing parks the buffer for reuse.
pub struct PooledBuf {
    buf: Option<Arc<Vec<u8>>>,
    pool: Arc<PoolInner>,
}

impl PooledBuf {
    /// The underlying vector, for writing.
    pub fn vec_mut(&mut self) -> &mut Vec<u8> {
        Arc::get_mut(self.buf.as_mut().expect("buffer present until freeze/drop"))
            .expect("PooledBuf is sole owner until frozen")
    }

    /// Freezes the written bytes into a shared [`Bytes`] slice and
    /// parks the allocation back in the pool. No allocation happens
    /// here: the returned `Bytes` and the parked slot share the same
    /// `Arc`, and once every `Bytes` clone drops the slot is recyclable.
    pub fn freeze(mut self) -> Bytes {
        let arc = self.buf.take().expect("buffer present until freeze/drop");
        let out = Bytes::from_arc(Arc::clone(&arc));
        park(&self.pool, arc);
        out
    }
}

impl Deref for PooledBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.buf.as_ref().expect("buffer present until freeze/drop")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(arc) = self.buf.take() {
            park(&self.pool, arc);
        }
    }
}

fn park(pool: &PoolInner, arc: Arc<Vec<u8>>) {
    let mut slots = pool.slots.lock().unwrap_or_else(|e| e.into_inner());
    if slots.len() < pool.cap {
        slots.push_back(arc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_window_and_equality() {
        let b = Bytes::from_vec(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let mid2 = mid.slice(1..2);
        assert_eq!(&mid2[..], &[3]);
        assert_eq!(mid, Bytes::from_vec(vec![2, 3, 4]));
        assert_eq!(b, vec![1, 2, 3, 4, 5]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn pool_recycles_once_bytes_drop() {
        let pool = BufPool::with_slots(4);

        let mut pb = pool.take();
        pb.vec_mut().extend_from_slice(b"hello");
        let frozen = pool_ptr(&pb);
        let bytes = pb.freeze();
        assert_eq!(&bytes[..], b"hello");
        assert_eq!(pool.misses(), 1);

        // Still referenced: a second take must allocate fresh.
        let pb2 = pool.take();
        assert_eq!(pool.misses(), 2);
        drop(pb2);

        // Dropping the last Bytes frees the slot; the next take reuses
        // the exact same allocation.
        drop(bytes);
        let pb3 = pool.take();
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool_ptr(&pb3), frozen);
        assert!(pb3.is_empty());
    }

    fn pool_ptr(pb: &PooledBuf) -> *const Vec<u8> {
        Arc::as_ptr(pb.buf.as_ref().unwrap())
    }

    #[test]
    fn steady_state_take_freeze_never_allocates_new_arcs() {
        let pool = BufPool::with_slots(2);
        // Warm up: one miss.
        let b = {
            let mut pb = pool.take();
            pb.vec_mut().push(7);
            pb.freeze()
        };
        drop(b);
        assert_eq!(pool.misses(), 1);
        // Steady state: consumer drops the payload before the next
        // publish, so every take is a hit.
        for i in 0..100u8 {
            let mut pb = pool.take();
            pb.vec_mut().push(i);
            let frozen = pb.freeze();
            assert_eq!(frozen[0], i);
        }
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 100);
    }

    #[test]
    fn drop_without_freeze_parks_buffer() {
        let pool = BufPool::with_slots(2);
        {
            let mut pb = pool.take();
            pb.vec_mut().extend_from_slice(&[1, 2, 3]);
        }
        assert_eq!(pool.misses(), 1);
        let pb = pool.take();
        assert_eq!(pool.hits(), 1);
        assert!(pb.is_empty());
    }

    #[test]
    fn pool_cap_bounds_parked_buffers() {
        let pool = BufPool::with_slots(1);
        let a = pool.take();
        let b = pool.take();
        drop(a);
        drop(b); // second park is discarded, not retained
        let slots = pool.inner.slots.lock().unwrap();
        assert_eq!(slots.len(), 1);
    }
}
