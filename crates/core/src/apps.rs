//! Application hosting: slot bookkeeping, the queued-event drain loop,
//! and dynamic (per-app / per-call) timers.
//!
//! Applications run *inside* the daemon process (the paper's library
//! model); the drain loop is what lets a handler publish, subscribe, or
//! export services re-entrantly without aliasing the app box.

use std::any::Any;
use std::collections::VecDeque;

use infobus_netsim::{ConnId, Ctx};
use infobus_subject::SubscriptionId;
use infobus_types::Value;

use crate::app::{BusApp, BusCtx, BusMessage, DiscoveryReply};
use crate::daemon::{BusDaemon, DaemonState};
use crate::engine::Micros;
use crate::rmi::{CallId, RmiError};

/// Cap on queued app deliveries drained per network event (guards against
/// publish loops between co-located applications).
const DRAIN_CAP: usize = 10_000;

pub(crate) struct AppMeta {
    pub(crate) name: String,
    pub(crate) inc: u64,
    pub(crate) subs: Vec<SubscriptionId>,
}

pub(crate) struct AppSlot {
    pub(crate) app: Box<dyn BusApp>,
}

pub(crate) enum TimerTarget {
    App {
        app_idx: usize,
        token: u64,
    },
    DiscoveryClose {
        corr: u64,
    },
    OfferWindowClose {
        call: u64,
    },
    RmiTimeout {
        call: u64,
    },
    /// Redial a router link this daemon initiated, after its connection
    /// broke (partition, peer crash). The rewrite rule is looked up in
    /// `link_rules` at fire time.
    LinkRedial {
        peer: u32,
    },
}

/// Work queued for delivery to applications or services.
pub(crate) enum AppEvent {
    Start {
        app_idx: usize,
    },
    Msg {
        app_idx: usize,
        msg: BusMessage,
    },
    Timer {
        app_idx: usize,
        token: u64,
    },
    Command {
        app_idx: usize,
        cmd: Box<dyn Any>,
    },
    Discovery {
        app_idx: usize,
        token: u64,
        replies: Vec<DiscoveryReply>,
    },
    RmiReply {
        app_idx: usize,
        call: CallId,
        result: Result<Value, RmiError>,
    },
    SvcInvoke {
        svc_idx: usize,
        conn: ConnId,
        call: (u32, String, u64),
        op: String,
        args: Vec<Vec<u8>>,
    },
}

/// Type alias kept local: the daemon's queue of pending app events.
pub(crate) type AppQueue = VecDeque<AppEvent>;

impl DaemonState {
    pub(crate) fn app_name(&self, app_idx: usize) -> String {
        self.app_meta
            .get(app_idx)
            .and_then(|m| m.as_ref())
            .map(|m| m.name.clone())
            .unwrap_or_else(|| "?".to_owned())
    }

    pub(crate) fn dyn_timer(
        &mut self,
        net: &mut Ctx<'_>,
        delay: Micros,
        target: TimerTarget,
    ) -> u64 {
        let token = self.next_dyn_token;
        self.next_dyn_token += 1;
        self.timer_targets.insert(token, target);
        net.set_timer(delay, token);
        token
    }

    /// Application timer (public to `BusCtx`).
    pub(crate) fn set_app_timer(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        delay: Micros,
        token: u64,
    ) {
        self.dyn_timer(net, delay, TimerTarget::App { app_idx, token });
    }
}

impl BusDaemon {
    /// Runs `f` against a named application's concrete state (driver-side
    /// inspection via `Sim::with_proc`).
    pub fn with_app<T: BusApp, R>(&mut self, name: &str, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let idx = self.app_idx(name)?;
        let slot = self.apps.get_mut(idx)?.as_mut()?;
        let any: &mut dyn Any = slot.app.as_mut();
        any.downcast_mut::<T>().map(f)
    }

    pub(crate) fn app_idx(&self, name: &str) -> Option<usize> {
        self.state
            .app_meta
            .iter()
            .position(|m| m.as_ref().is_some_and(|m| m.name == name))
    }

    /// Attaches an application (normally done via
    /// [`BusFabric`](crate::BusFabric)).
    pub fn attach(&mut self, net: &mut Ctx<'_>, name: &str, app: Box<dyn BusApp>) {
        let app_idx = self.apps.len();
        self.apps.push(Some(AppSlot { app }));
        self.state.app_meta.push(Some(AppMeta {
            name: name.to_owned(),
            inc: net.now().max(1),
            subs: Vec::new(),
        }));
        self.state.pending.push_back(AppEvent::Start { app_idx });
        self.drain(net);
    }

    /// Detaches (crashes) an application: volatile state is dropped, its
    /// subscriptions are removed.
    pub fn detach(&mut self, net: &mut Ctx<'_>, name: &str) {
        let Some(idx) = self.app_idx(name) else {
            return;
        };
        self.apps[idx] = None;
        if let Some(meta) = self.state.app_meta[idx].take() {
            for sub in meta.subs {
                self.state.unsubscribe(net, sub);
            }
        }
        // Withdraw services exported by this application.
        let subjects: Vec<String> = self
            .state
            .svc_meta
            .iter()
            .flatten()
            .filter(|m| m.app_idx == idx)
            .map(|m| m.subject.clone())
            .collect();
        for s in subjects {
            let _ = self.state.withdraw_service(net, &s);
        }
        self.sync_services();
    }

    /// Moves newly exported service boxes into the daemon's table and
    /// drops withdrawn ones.
    fn sync_services(&mut self) {
        for (idx, svc) in self.state.pending_services.drain(..) {
            while self.services.len() <= idx {
                self.services.push(None);
            }
            self.services[idx] = Some(svc);
        }
        for idx in self.state.dropped_services.drain(..) {
            if idx < self.services.len() {
                self.services[idx] = None;
            }
        }
    }

    /// Drains queued application events, allowing handlers to enqueue
    /// more (up to a cap).
    pub(crate) fn drain(&mut self, net: &mut Ctx<'_>) {
        self.sync_services();
        let mut processed = 0usize;
        while let Some(event) = self.state.pending.pop_front() {
            processed += 1;
            if processed > DRAIN_CAP {
                net.trace(|| "bus daemon: delivery drain cap hit; dropping remainder".to_owned());
                self.state.pending.clear();
                break;
            }
            match event {
                AppEvent::Start { app_idx } => {
                    self.with_app_slot(net, app_idx, |app, bus| app.on_start(bus));
                }
                AppEvent::Msg { app_idx, msg } => {
                    self.with_app_slot(net, app_idx, |app, bus| app.on_message(bus, &msg));
                }
                AppEvent::Timer { app_idx, token } => {
                    self.with_app_slot(net, app_idx, |app, bus| app.on_timer(bus, token));
                }
                AppEvent::Command { app_idx, cmd } => {
                    self.with_app_slot(net, app_idx, |app, bus| app.on_command(bus, cmd));
                }
                AppEvent::Discovery {
                    app_idx,
                    token,
                    replies,
                } => {
                    self.with_app_slot(net, app_idx, |app, bus| {
                        app.on_discovery(bus, token, replies)
                    });
                }
                AppEvent::RmiReply {
                    app_idx,
                    call,
                    result,
                } => {
                    self.with_app_slot(net, app_idx, |app, bus| {
                        app.on_rmi_reply(bus, call, result)
                    });
                }
                AppEvent::SvcInvoke {
                    svc_idx,
                    conn,
                    call,
                    op,
                    args,
                } => {
                    self.invoke_service(net, svc_idx, conn, call, op, args);
                }
            }
            self.sync_services();
        }
    }

    fn with_app_slot(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        f: impl FnOnce(&mut dyn BusApp, &mut BusCtx<'_, '_>),
    ) {
        let Some(mut slot) = self.apps.get_mut(app_idx).and_then(Option::take) else {
            return;
        };
        {
            let mut bus = BusCtx {
                d: &mut self.state,
                net,
                app_idx,
            };
            f(slot.app.as_mut(), &mut bus);
        }
        if self.apps.get(app_idx).is_some_and(Option::is_none)
            && self
                .state
                .app_meta
                .get(app_idx)
                .is_some_and(Option::is_some)
        {
            self.apps[app_idx] = Some(slot);
        }
    }
}
