//! The unified, driver-independent bus surface: [`Bus`], [`Delivery`],
//! and [`Receiver`].
//!
//! Four drivers run the same sans-I/O protocol engine — the simulated
//! daemon, the in-process bus, the UDP bus, and the edge reactor — and
//! before this module each had drifted into its own front door: inproc
//! pinned QoS and returned `(SubscriptionHandle, InprocReceiver)`, the
//! UDP bus took QoS but returned its own `NetSubscription`, the netsim
//! daemon spoke only through [`BusApp`](crate::BusApp) callbacks. The
//! [`Bus`] trait is the convergence point: *one* way to subscribe, *one*
//! way to publish with an explicit [`QoS`], *one* message type on the
//! receive path. The cross-driver conformance suite and the benches are
//! written once against `&dyn Bus` and run unchanged on every driver.
//!
//! Design notes:
//!
//! * [`Delivery`] is driver-independent because every driver already
//!   hands subscribers the same thing: a subject string and the
//!   self-describing marshalled payload. Unmarshalling stays lazy (and
//!   fallible) at the subscriber, exactly as before.
//! * [`Receiver`] abstracts *blocking discipline*, not queueing policy:
//!   every implementation is a bounded drop-oldest
//!   [`SubReceiver`] today, but the trait lets
//!   a test double or a future driver substitute its own.
//! * [`Bus`] is object-safe on purpose — harnesses hold `Box<dyn Bus>`
//!   and iterate drivers.

use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};
use std::time::Duration;

use infobus_subject::InternedSubject;
use infobus_types::{wire, TypeRegistry, Value, WireError};

use crate::app::SubscriptionHandle;
use crate::buf::Bytes;
use crate::engine::BusStats;
use crate::queue::SubReceiver;
use crate::{BusError, QoS};

/// A publication delivered to a subscriber of a real-thread driver.
///
/// Communication is anonymous (the paper's P4): the delivery carries the
/// subject and the self-describing marshalled payload, never the
/// producer's identity or location. Both fields are shared handles — the
/// subject is interned ([`InternedSubject`], compares like its text) and
/// the payload is a reference-counted [`Bytes`] slice — because one
/// matched publication fans out to any number of subscriber queues
/// without copying a byte.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The subject the object was published under.
    pub subject: InternedSubject,
    /// The marshalled self-describing payload.
    pub payload: Bytes,
    /// `true` if this may be a repeat (guaranteed-delivery redelivery
    /// after a publisher restart). Always `false` on drivers without a
    /// redelivery path (the in-process bus).
    pub redelivery: bool,
    /// The publication's quality of service, preserved so a consumer
    /// re-publishing the message (an information router crossing
    /// segments) keeps its delivery contract.
    pub qos: QoS,
    /// Federation route stamp carried by a forwarded copy; `None` for
    /// ordinary intra-segment traffic. An information router feeding a
    /// delivery back into a
    /// [`RouterEngine`](infobus_router::RouterEngine) passes it along so
    /// loop suppression survives the republish hop.
    pub route: Option<crate::router::RouteStamp>,
}

impl Delivery {
    /// Unmarshals the payload. The bus publishes self-describing
    /// messages, so any type descriptors travel with the data and no
    /// pre-shared registry is needed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the payload is malformed.
    pub fn value(&self) -> Result<Value, WireError> {
        let mut registry = TypeRegistry::with_fundamentals();
        wire::unmarshal(&self.payload, &mut registry)
    }

    /// Unmarshals the payload into an existing registry (types carried by
    /// the message are registered into it).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the payload is malformed or its schema
    /// conflicts with `registry`.
    pub fn value_into(&self, registry: &mut TypeRegistry) -> Result<Value, WireError> {
        wire::unmarshal(&self.payload, registry)
    }
}

/// The receiving half of a [`Bus`] subscription.
///
/// The blocking discipline of `std::sync::mpsc`, with the standard error
/// types, so existing call sites port without edits. Every current
/// implementation is a bounded drop-oldest
/// [`SubReceiver`]; the trait exists so
/// conformance code can hold `Box<dyn Receiver>` without caring.
pub trait Receiver: Send {
    /// Blocks until a delivery arrives or the bus side is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the queue is drained and disconnected.
    fn recv(&self) -> Result<Delivery, RecvError>;

    /// Takes a delivery if one is queued, without blocking (the
    /// non-blocking probe the reactor tier needs).
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] when nothing is queued, or
    /// [`TryRecvError::Disconnected`] once drained and disconnected.
    fn try_recv(&self) -> Result<Delivery, TryRecvError>;

    /// Blocks up to `timeout` for a delivery.
    ///
    /// # Errors
    ///
    /// Returns [`RecvTimeoutError::Timeout`] on expiry, or
    /// [`RecvTimeoutError::Disconnected`] once drained and disconnected.
    fn recv_timeout(&self, timeout: Duration) -> Result<Delivery, RecvTimeoutError>;
}

impl Receiver for SubReceiver<Delivery> {
    fn recv(&self) -> Result<Delivery, RecvError> {
        SubReceiver::recv(self)
    }

    fn try_recv(&self) -> Result<Delivery, TryRecvError> {
        SubReceiver::try_recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Delivery, RecvTimeoutError> {
        SubReceiver::recv_timeout(self, timeout)
    }
}

/// The queue type every in-tree driver hands back from
/// [`Bus::subscribe`]: a bounded drop-oldest subscriber queue of
/// [`Delivery`] messages.
pub type BusReceiver = SubReceiver<Delivery>;

/// One bus daemon, whatever drives it.
///
/// Implemented by the in-process bus, the UDP bus, the edge reactor, and
/// the netsim daemon shim. The trait is object-safe: conformance
/// harnesses and benches hold `Box<dyn Bus>` and run the same assertions
/// across every driver.
///
/// ```
/// use infobus_core::bus::Bus;
/// use infobus_core::inproc::InprocBus;
/// use infobus_core::QoS;
/// use infobus_types::Value;
///
/// let bus = InprocBus::new();
/// let (sub, rx) = Bus::subscribe(&bus, "market.>").unwrap();
/// Bus::publish(&bus, "market.nyse.ibm", &Value::I64(42), QoS::Reliable).unwrap();
/// bus.drain();
/// assert_eq!(rx.try_recv().unwrap().value().unwrap(), Value::I64(42));
/// Bus::unsubscribe(&bus, sub);
/// ```
pub trait Bus: Send + Sync {
    /// Subscribes to every subject matching `filter` and returns the
    /// subscription handle plus the delivery queue.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if the filter does not parse.
    fn subscribe(&self, filter: &str) -> Result<(SubscriptionHandle, BusReceiver), BusError>;

    /// Subscribes to every subject matching `filter` *and* whose payload
    /// satisfies `pred` (see
    /// [`Predicate`](crate::engine::filter::Predicate)).
    ///
    /// The predicate is compiled once here and enforced twice: at this
    /// daemon's delivery gate (exact per-subscription semantics), and —
    /// because it travels inside subscription announcements — at every
    /// *publisher's* daemon, where a publication rejected by all matching
    /// interest is suppressed before marshalling and fan-out
    /// (`filt_pub_suppressed`). The match set a subscriber observes is
    /// identical either way; only wire traffic differs.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if the filter does not parse or the
    /// predicate exceeds the compile bounds.
    fn subscribe_filtered(
        &self,
        filter: &str,
        pred: &crate::engine::filter::Predicate,
    ) -> Result<(SubscriptionHandle, BusReceiver), BusError>;

    /// Publishes `value` on `subject` with the requested delivery
    /// guarantee, returning how many local subscriber queues matched at
    /// the publishing daemon (remote matches are not knowable
    /// synchronously).
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if the subject is invalid or marshalling
    /// fails.
    fn publish(&self, subject: &str, value: &Value, qos: QoS) -> Result<usize, BusError>;

    /// Cancels a subscription; its queue disconnects.
    fn unsubscribe(&self, sub: SubscriptionHandle);

    /// Delivery barrier, as strong as the driver can make it: after
    /// `drain` returns, every publication this thread completed *through
    /// synchronous paths* has reached its subscriber queues. Drivers with
    /// asynchronous ingest (sockets, the simulator) additionally settle
    /// what they can — see each implementation's docs for the exact
    /// guarantee.
    fn drain(&self);

    /// A merged snapshot of the daemon's protocol counters.
    fn stats(&self) -> BusStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Object safety is part of the contract: harnesses hold `Box<dyn Bus>`.
    fn _assert_object_safe(_: &dyn Bus, _: &dyn Receiver) {}

    #[test]
    fn delivery_roundtrips_value() {
        let v = Value::str("tick");
        let reg = TypeRegistry::with_fundamentals();
        let bytes = wire::marshal_self_describing(&v, &reg).expect("marshal");
        let d = Delivery {
            subject: infobus_subject::SubjectTable::new().intern("a.b").unwrap(),
            payload: bytes.into(),
            redelivery: false,
            qos: QoS::Reliable,
            route: None,
        };
        assert_eq!(d.value().expect("unmarshal"), v);
        let mut reg2 = TypeRegistry::with_fundamentals();
        assert_eq!(d.value_into(&mut reg2).expect("unmarshal"), v);
    }
}
