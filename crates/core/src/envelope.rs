//! Envelopes: the unit of publication carried by the bus protocol.

use std::sync::Arc;

use infobus_router::RouteStamp;
use infobus_subject::{InternedSubject, SubjectTable};
use infobus_types::wire::{
    get_byte_vec, get_string, get_u32, get_u64, get_u8, put_bytes, put_string, put_u32, put_u64,
};
use infobus_types::WireError;

use crate::buf::Bytes;
use crate::QoS;

/// Identity of a publisher stream: one application incarnation on one
/// host. Sequence numbers are per `(stream, subject)`.
///
/// The incarnation number distinguishes restarts of the same application:
/// a restarted publisher begins a fresh stream, so receivers never confuse
/// its new sequence numbers with the old ones (at-most-once across
/// crashes). Stream identity is internal to the protocol — applications
/// never see who published (principle P4).
///
/// The application name is a shared `Arc<str>`: every envelope of one
/// stream aliases the same allocation, so cloning a key on the hot path
/// is a reference-count bump, not a string copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamKey {
    /// Numeric id of the publishing host.
    pub host: u32,
    /// Name of the publishing application on that host.
    pub app: Arc<str>,
    /// Incarnation (start counter) of the application.
    pub inc: u64,
}

/// What an envelope carries. Control envelopes implement the discovery
/// and RMI protocols *as publications on a subject*, exactly as §3.2–3.3
/// describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeKind {
    /// An application data object.
    Data,
    /// "Who's out there?" — a discovery query.
    DiscoverQuery,
    /// "I am" — a discovery announcement.
    DiscoverAnnounce,
    /// An RMI client looking for servers on this subject.
    RmiQuery,
    /// An RMI server publishing its point-to-point address.
    RmiOffer,
}

impl EnvelopeKind {
    fn to_u8(self) -> u8 {
        match self {
            EnvelopeKind::Data => 0,
            EnvelopeKind::DiscoverQuery => 1,
            EnvelopeKind::DiscoverAnnounce => 2,
            EnvelopeKind::RmiQuery => 3,
            EnvelopeKind::RmiOffer => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => EnvelopeKind::Data,
            1 => EnvelopeKind::DiscoverQuery,
            2 => EnvelopeKind::DiscoverAnnounce,
            3 => EnvelopeKind::RmiQuery,
            4 => EnvelopeKind::RmiOffer,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// Interns a subject string pulled off the wire, mapping validation
/// failure to a [`WireError`] (malformed frames must not panic).
pub(crate) fn intern_wire_subject(
    table: &SubjectTable,
    text: &str,
) -> Result<InternedSubject, WireError> {
    table
        .intern(text)
        .map_err(|_| WireError::BadSubject(text.to_owned()))
}

/// One publication in flight: subject, stream identity, sequence number,
/// quality of service, and the marshalled payload.
///
/// Both heavy fields are shared handles: the subject is an
/// [`InternedSubject`] (one validated `Subject` per distinct subject per
/// daemon, plus a dense per-daemon id for `u32`-keyed caches) and the
/// payload is a [`Bytes`] slice (reference-counted, usually borrowed
/// from a [`BufPool`](crate::buf::BufPool)). Cloning an envelope on the
/// hot path copies no subject text and no payload bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The publisher stream.
    pub stream: StreamKey,
    /// Sequence number within `(stream, subject)`, starting at 1.
    pub seq: u64,
    /// Virtual time at which this `(stream, subject)` began (its first
    /// publication). Receivers use it to decide whether they are entitled
    /// to the whole stream (it started after they subscribed) or only to
    /// messages from their first sighting onward.
    pub stream_start: u64,
    /// The subject this object was published under, interned in the
    /// owning daemon's [`SubjectTable`]. The id never crosses the wire —
    /// encode writes the text, decode re-interns on the receiving side.
    pub subject: InternedSubject,
    /// Delivery quality of service.
    pub qos: QoS,
    /// Envelope kind (data or protocol control).
    pub kind: EnvelopeKind,
    /// Correlation id for control envelopes (discovery / RMI).
    pub corr: u64,
    /// `true` when re-sent from a guaranteed-delivery ledger after a
    /// publisher restart (consumers may see such messages more than once).
    pub redelivery: bool,
    /// Federation stamp: present once the publication has crossed (or is
    /// about to cross) a router link. Routers deduplicate on it to keep
    /// cyclic topologies loop-free; plain daemons carry it untouched, so
    /// a republished copy keeps its identity through NAK repair and
    /// guaranteed-delivery ledgers.
    pub route: Option<RouteStamp>,
    /// Marshalled payload (see [`infobus_types::wire`]).
    pub payload: Bytes,
}

impl Envelope {
    /// Exact wire size of this envelope in bytes (the batcher's MTU
    /// budget depends on exactness).
    pub fn wire_size(&self) -> usize {
        4 // stream.host
            + 4 + self.stream.app.len() // length-prefixed app
            + 8 // stream.inc
            + 8 // seq
            + 8 // stream_start
            + 4 + self.subject.as_str().len() // length-prefixed subject
            + 1 // qos
            + 1 // kind
            + 8 // corr
            + 1 // redelivery
            + 1 + if self.route.is_some() { 21 } else { 0 } // route flag + stamp
            + 4 + self.payload.len() // length-prefixed payload
    }

    /// Encodes this envelope onto `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.stream.host);
        put_string(buf, &self.stream.app);
        put_u64(buf, self.stream.inc);
        put_u64(buf, self.seq);
        put_u64(buf, self.stream_start);
        put_string(buf, self.subject.as_str());
        buf.push(match self.qos {
            QoS::Reliable => 0,
            QoS::Guaranteed => 1,
        });
        buf.push(self.kind.to_u8());
        put_u64(buf, self.corr);
        buf.push(u8::from(self.redelivery));
        match &self.route {
            None => buf.push(0),
            Some(s) => {
                buf.push(1);
                put_u32(buf, s.origin);
                put_u64(buf, s.epoch);
                put_u64(buf, s.seq);
                buf.push(s.ttl);
            }
        }
        put_bytes(buf, &self.payload);
    }

    /// Decodes one envelope from `buf`, interning its subject into
    /// `table` (ids are per-daemon; the wire carries only text).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input, including a subject
    /// string that fails validation.
    pub fn decode(buf: &mut &[u8], table: &SubjectTable) -> Result<Self, WireError> {
        let host = get_u32(buf)?;
        let app = get_string(buf)?;
        let inc = get_u64(buf)?;
        let seq = get_u64(buf)?;
        let stream_start = get_u64(buf)?;
        let subject = get_string(buf)?;
        let subject = intern_wire_subject(table, &subject)?;
        let qos = match get_u8(buf)? {
            0 => QoS::Reliable,
            1 => QoS::Guaranteed,
            other => return Err(WireError::BadTag(other)),
        };
        let kind = EnvelopeKind::from_u8(get_u8(buf)?)?;
        let corr = get_u64(buf)?;
        let redelivery = get_u8(buf)? != 0;
        let route = match get_u8(buf)? {
            0 => None,
            1 => Some(RouteStamp {
                origin: get_u32(buf)?,
                epoch: get_u64(buf)?,
                seq: get_u64(buf)?,
                ttl: get_u8(buf)?,
            }),
            other => return Err(WireError::BadTag(other)),
        };
        let payload = Bytes::from_vec(get_byte_vec(buf)?);
        Ok(Envelope {
            stream: StreamKey {
                host,
                app: app.into(),
                inc,
            },
            seq,
            stream_start,
            subject,
            qos,
            kind,
            corr,
            redelivery,
            route,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        let table = SubjectTable::new();
        Envelope {
            stream: StreamKey {
                host: 3,
                app: "feed".into(),
                inc: 7,
            },
            seq: 42,
            stream_start: 1_000,
            subject: table.intern("news.equity.gmc").unwrap(),
            qos: QoS::Guaranteed,
            kind: EnvelopeKind::Data,
            corr: 0,
            redelivery: true,
            route: Some(RouteStamp {
                origin: 9,
                epoch: 17,
                seq: 4,
                ttl: 12,
            }),
            payload: Bytes::from_vec(vec![1, 2, 3, 4, 5]),
        }
    }

    #[test]
    fn round_trip() {
        let e = sample();
        let mut buf = Vec::new();
        e.encode(&mut buf);
        let mut slice = &buf[..];
        let back = Envelope::decode(&mut slice, &SubjectTable::new()).unwrap();
        assert_eq!(e, back);
        assert!(slice.is_empty());
    }

    #[test]
    fn unrouted_round_trip() {
        let mut e = sample();
        e.route = None;
        let mut buf = Vec::new();
        e.encode(&mut buf);
        assert_eq!(e.wire_size(), buf.len());
        let back = Envelope::decode(&mut &buf[..], &SubjectTable::new()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn decode_interns_into_receiver_table() {
        let e = sample();
        let mut buf = Vec::new();
        e.encode(&mut buf);
        let rx_table = SubjectTable::new();
        rx_table.intern("zz.skew").unwrap(); // receiver ids differ from sender's
        let back = Envelope::decode(&mut &buf[..], &rx_table).unwrap();
        assert_eq!(back.subject, "news.equity.gmc");
        assert_ne!(back.subject.id(), e.subject.id());
        assert_eq!(
            rx_table.get("news.equity.gmc").unwrap().id(),
            back.subject.id()
        );
    }

    #[test]
    fn kinds_round_trip() {
        for kind in [
            EnvelopeKind::Data,
            EnvelopeKind::DiscoverQuery,
            EnvelopeKind::DiscoverAnnounce,
            EnvelopeKind::RmiQuery,
            EnvelopeKind::RmiOffer,
        ] {
            let mut e = sample();
            e.kind = kind;
            let mut buf = Vec::new();
            e.encode(&mut buf);
            assert_eq!(
                Envelope::decode(&mut &buf[..], &SubjectTable::new())
                    .unwrap()
                    .kind,
                kind
            );
        }
    }

    #[test]
    fn truncation_errors() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        let table = SubjectTable::new();
        for cut in 0..buf.len() {
            assert!(Envelope::decode(&mut &buf[..cut], &table).is_err());
        }
    }

    #[test]
    fn bad_wire_subject_is_an_error_not_a_panic() {
        let e = sample();
        let mut buf = Vec::new();
        e.encode(&mut buf);
        // The subject text sits after host(4+4) + app(4+4) + inc/seq/start(24).
        // Corrupt its first byte into a separator, making it invalid.
        let subject_off = 4 + 4 + e.stream.app.len() + 8 + 8 + 8 + 4;
        buf[subject_off] = b'.';
        match Envelope::decode(&mut &buf[..], &SubjectTable::new()) {
            Err(WireError::BadSubject(_)) => {}
            other => panic!("expected BadSubject, got {other:?}"),
        }
    }

    #[test]
    fn wire_size_is_exact() {
        // The batcher's MTU budget depends on this being exact, not an
        // estimate: a frame must never exceed the configured path MTU.
        let e = sample();
        let mut buf = Vec::new();
        e.encode(&mut buf);
        assert_eq!(e.wire_size(), buf.len());
    }
}
