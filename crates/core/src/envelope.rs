//! Envelopes: the unit of publication carried by the bus protocol.

use infobus_types::wire::{
    get_byte_vec, get_string, get_u32, get_u64, get_u8, put_bytes, put_string, put_u32, put_u64,
};
use infobus_types::WireError;

use crate::QoS;

/// Identity of a publisher stream: one application incarnation on one
/// host. Sequence numbers are per `(stream, subject)`.
///
/// The incarnation number distinguishes restarts of the same application:
/// a restarted publisher begins a fresh stream, so receivers never confuse
/// its new sequence numbers with the old ones (at-most-once across
/// crashes). Stream identity is internal to the protocol — applications
/// never see who published (principle P4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamKey {
    /// Numeric id of the publishing host.
    pub host: u32,
    /// Name of the publishing application on that host.
    pub app: String,
    /// Incarnation (start counter) of the application.
    pub inc: u64,
}

/// What an envelope carries. Control envelopes implement the discovery
/// and RMI protocols *as publications on a subject*, exactly as §3.2–3.3
/// describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeKind {
    /// An application data object.
    Data,
    /// "Who's out there?" — a discovery query.
    DiscoverQuery,
    /// "I am" — a discovery announcement.
    DiscoverAnnounce,
    /// An RMI client looking for servers on this subject.
    RmiQuery,
    /// An RMI server publishing its point-to-point address.
    RmiOffer,
}

impl EnvelopeKind {
    fn to_u8(self) -> u8 {
        match self {
            EnvelopeKind::Data => 0,
            EnvelopeKind::DiscoverQuery => 1,
            EnvelopeKind::DiscoverAnnounce => 2,
            EnvelopeKind::RmiQuery => 3,
            EnvelopeKind::RmiOffer => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => EnvelopeKind::Data,
            1 => EnvelopeKind::DiscoverQuery,
            2 => EnvelopeKind::DiscoverAnnounce,
            3 => EnvelopeKind::RmiQuery,
            4 => EnvelopeKind::RmiOffer,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// One publication in flight: subject, stream identity, sequence number,
/// quality of service, and the marshalled payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The publisher stream.
    pub stream: StreamKey,
    /// Sequence number within `(stream, subject)`, starting at 1.
    pub seq: u64,
    /// Virtual time at which this `(stream, subject)` began (its first
    /// publication). Receivers use it to decide whether they are entitled
    /// to the whole stream (it started after they subscribed) or only to
    /// messages from their first sighting onward.
    pub stream_start: u64,
    /// The subject this object was published under.
    pub subject: String,
    /// Delivery quality of service.
    pub qos: QoS,
    /// Envelope kind (data or protocol control).
    pub kind: EnvelopeKind,
    /// Correlation id for control envelopes (discovery / RMI).
    pub corr: u64,
    /// `true` when re-sent from a guaranteed-delivery ledger after a
    /// publisher restart (consumers may see such messages more than once).
    pub redelivery: bool,
    /// Marshalled payload (see [`infobus_types::wire`]).
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Approximate wire size of this envelope in bytes.
    pub fn wire_size(&self) -> usize {
        4 + self.stream.app.len()
            + 8
            + 8
            + 8
            + 4
            + self.subject.len()
            + 1
            + 1
            + 8
            + 1
            + 4
            + self.payload.len()
    }

    /// Encodes this envelope onto `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.stream.host);
        put_string(buf, &self.stream.app);
        put_u64(buf, self.stream.inc);
        put_u64(buf, self.seq);
        put_u64(buf, self.stream_start);
        put_string(buf, &self.subject);
        buf.push(match self.qos {
            QoS::Reliable => 0,
            QoS::Guaranteed => 1,
        });
        buf.push(self.kind.to_u8());
        put_u64(buf, self.corr);
        buf.push(u8::from(self.redelivery));
        put_bytes(buf, &self.payload);
    }

    /// Decodes one envelope from `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let host = get_u32(buf)?;
        let app = get_string(buf)?;
        let inc = get_u64(buf)?;
        let seq = get_u64(buf)?;
        let stream_start = get_u64(buf)?;
        let subject = get_string(buf)?;
        let qos = match get_u8(buf)? {
            0 => QoS::Reliable,
            1 => QoS::Guaranteed,
            other => return Err(WireError::BadTag(other)),
        };
        let kind = EnvelopeKind::from_u8(get_u8(buf)?)?;
        let corr = get_u64(buf)?;
        let redelivery = get_u8(buf)? != 0;
        let payload = get_byte_vec(buf)?;
        Ok(Envelope {
            stream: StreamKey { host, app, inc },
            seq,
            stream_start,
            subject,
            qos,
            kind,
            corr,
            redelivery,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope {
            stream: StreamKey {
                host: 3,
                app: "feed".into(),
                inc: 7,
            },
            seq: 42,
            stream_start: 1_000,
            subject: "news.equity.gmc".into(),
            qos: QoS::Guaranteed,
            kind: EnvelopeKind::Data,
            corr: 0,
            redelivery: true,
            payload: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn round_trip() {
        let e = sample();
        let mut buf = Vec::new();
        e.encode(&mut buf);
        let mut slice = &buf[..];
        let back = Envelope::decode(&mut slice).unwrap();
        assert_eq!(e, back);
        assert!(slice.is_empty());
    }

    #[test]
    fn kinds_round_trip() {
        for kind in [
            EnvelopeKind::Data,
            EnvelopeKind::DiscoverQuery,
            EnvelopeKind::DiscoverAnnounce,
            EnvelopeKind::RmiQuery,
            EnvelopeKind::RmiOffer,
        ] {
            let mut e = sample();
            e.kind = kind;
            let mut buf = Vec::new();
            e.encode(&mut buf);
            assert_eq!(Envelope::decode(&mut &buf[..]).unwrap().kind, kind);
        }
    }

    #[test]
    fn truncation_errors() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(Envelope::decode(&mut &buf[..cut]).is_err());
        }
    }

    #[test]
    fn wire_size_close_to_actual() {
        let e = sample();
        let mut buf = Vec::new();
        e.encode(&mut buf);
        let est = e.wire_size();
        assert!(
            (est as i64 - buf.len() as i64).abs() < 16,
            "est {est}, actual {}",
            buf.len()
        );
    }
}
