//! Tunable parameters of a bus daemon.

use std::path::PathBuf;
use std::sync::Arc;

use infobus_router::SubjectMap;
use infobus_wal::FsyncPolicy;

use crate::engine::Micros;

/// Configuration of one [`BusDaemon`](crate::BusDaemon).
///
/// Defaults reflect the paper's installation: batching available but
/// controlled by a parameter (latency tests turn it off, throughput tests
/// turn it on), NAK-based retransmission tuned for a LAN.
///
/// The struct is `#[non_exhaustive]`: build one from a preset
/// ([`BusConfig::default`], [`BusConfig::latency`],
/// [`BusConfig::throughput`]) and refine it with the chainable setters.
///
/// ```
/// use infobus_core::BusConfig;
/// let cfg = BusConfig::throughput()
///     .with_batch_bytes(1_200)
///     .with_stats_period_us(500_000);
/// assert!(cfg.batch_enabled);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct BusConfig {
    /// Gather small publications into MTU-sized packets ("the Information
    /// Bus has a batch parameter that increases throughput by delaying
    /// small messages, and gathering them together").
    pub batch_enabled: bool,
    /// Flush the batch once this many payload bytes are queued. Must fit
    /// the frame budget of [`BusConfig::path_mtu`] (checked by
    /// [`BusConfig::validate`] when a datagram driver opens).
    pub batch_bytes: usize,
    /// The datagram size the path is assumed to carry without
    /// fragmentation, in bytes. Batches are flushed so that one
    /// [`Packet::Data`](crate::msg::Packet) frame —
    /// header, wrapper, and envelopes — fits inside it. Defaults to
    /// `1_472` (Ethernet MTU minus IPv4 + UDP headers).
    pub path_mtu: usize,
    /// Flush the batch after this much delay even if not full.
    pub batch_delay_us: Micros,
    /// How long a receiver waits on a sequence gap before NAKing.
    pub nak_delay_us: Micros,
    /// Period of the receiver's gap-scan timer.
    pub nak_check_us: Micros,
    /// Envelopes retained per (publisher, subject) stream for
    /// retransmission.
    pub retain_per_stream: usize,
    /// Retry period for unacknowledged guaranteed messages.
    pub gd_retry_us: Micros,
    /// How long an RMI client collects server offers before choosing.
    pub offer_window_us: Micros,
    /// RMI request timeout before fail-over / failure.
    pub rmi_timeout_us: Micros,
    /// Maximum RMI attempts (initial + fail-overs) for retrying policies.
    pub rmi_max_attempts: u32,
    /// Period of full subscription-table announcements (soft state for
    /// routers and guaranteed delivery).
    pub announce_period_us: Micros,
    /// Period of the publisher's stream-digest timer: idle streams
    /// broadcast their top sequence number a few times so receivers can
    /// detect tail losses.
    pub sync_period_us: Micros,
    /// How many digest rounds an idle stream broadcasts after its last
    /// publication.
    pub sync_rounds: u32,
    /// How long a discovery request collects "I am" announcements.
    pub discovery_window_us: Micros,
    /// Period of the daemon's self-description on the observability
    /// plane: every `stats_period_us` the daemon publishes a snapshot of
    /// its [`BusStats`](crate::BusStats) as a self-describing object on
    /// `_INBUS.STATS.<host>.<daemon>`. `0` (the default) disables the
    /// publication; counters are still maintained and readable through
    /// [`BusDaemon::stats`](crate::BusDaemon::stats).
    pub stats_period_us: Micros,
    /// Backpressure bound for real-thread drivers (the in-process and UDP
    /// buses): the maximum number of undrained messages queued per
    /// subscriber. When a subscriber stalls and its queue reaches the
    /// cap, the *oldest* queued message is dropped to admit the newest
    /// (and counted in
    /// [`BusStats::sub_queue_dropped`](crate::BusStats::sub_queue_dropped)),
    /// so a stalled consumer can no longer grow memory without bound.
    /// `0` (the default) keeps queues unbounded.
    pub subscriber_queue_cap: usize,
    /// Number of independent engine shards behind the daemon. Subjects
    /// are routed to a shard by a stable hash of their first segment
    /// (see [`shard_of_subject`](crate::engine::sharded::shard_of_subject)),
    /// so every (publisher, subject) stream lives entirely inside one
    /// shard and per-sender-per-subject ordering is preserved. `1` (the
    /// default) reproduces the unsharded daemon byte-for-byte; values
    /// `> 1` let independent subjects stop contending on one state
    /// machine. `0` is treated as `1`.
    pub shards: usize,
    /// Edge-tier session supervision: how long a thin-client session may
    /// go without *any* frame (heartbeat, ack, publish…) before the
    /// session broker evicts it. Defaults to `3_000_000` (3 s) — three
    /// missed default heartbeats.
    pub session_timeout_us: Micros,
    /// Edge-tier session supervision: the heartbeat period the broker
    /// advertises to thin clients in the `welcome` frame, and the period
    /// of its own freshness scan. Defaults to `1_000_000` (1 s).
    pub heartbeat_period_us: Micros,
    /// Edge-tier backpressure: the maximum number of unacknowledged
    /// delivery cursors a session may lag behind before the broker stops
    /// sending (pause) and buffers; a session whose buffer exceeds four
    /// times this lag has its oldest buffered deliveries dropped and
    /// counted ([`BusStats::sess_dropped`](crate::BusStats::sess_dropped)).
    /// Defaults to `64`.
    pub session_cursor_lag: u64,
    /// Period of the information router's self-stabilization pass: every
    /// `router_stabilize_us` a routing daemon revalidates its route and
    /// summary tables against locally-derivable truth, rebuilds what
    /// fails, and rotates its loop-suppression epoch. Defaults to
    /// `2_000_000` (2 s). Only daemons with router links run the pass.
    pub router_stabilize_us: Micros,
    /// Hop budget a routing daemon stamps onto publications entering the
    /// federation; each router crossing spends one hop. Defaults to `16`.
    pub router_max_hops: u8,
    /// Directory of the durable guaranteed-delivery ledger. `None` (the
    /// default) keeps the persist map in memory — guaranteed delivery
    /// then survives engine restarts but not process death. When set,
    /// wall-clock drivers write every `Persist`/`Unpersist` action
    /// through a per-shard write-ahead ledger under
    /// `<durable_dir>/shard-<n>` and replay it at start-up (see
    /// `infobus-wal`).
    pub durable_dir: Option<PathBuf>,
    /// Rotation threshold of one ledger segment file, in bytes.
    /// Defaults to 1 MiB.
    pub segment_bytes: u64,
    /// When ledger frames are pushed to stable storage. Defaults to
    /// [`FsyncPolicy::Always`] (the paper's log-before-send contract
    /// taken literally); relax for benches.
    pub fsync: FsyncPolicy,
    /// Ceiling on ledger payload bytes mirrored in memory; entries past
    /// it are kept as disk references and read back on demand, so a
    /// slow subscriber cannot grow the persist map without bound.
    /// `0` keeps every live payload in memory. Defaults to 1 MiB.
    pub durable_mem_bytes: usize,
    /// The semantic subject layer ([`SubjectMap`]): synonym aliases and
    /// taxonomy broadening rules applied above the subject trie. Publish
    /// subjects and subscription filters are canonicalized, and filters
    /// covering a taxonomy category are expanded with the category's
    /// semantic members, so publishers and subscribers with different
    /// vocabularies share one fan-out path. Shared by `Arc` across every
    /// daemon of a segment. `None` (the default) disables the layer.
    pub subject_map: Option<Arc<SubjectMap>>,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            batch_enabled: false,
            batch_bytes: 1_400,
            path_mtu: 1_472,
            batch_delay_us: 2_000,
            nak_delay_us: 8_000,
            nak_check_us: 4_000,
            retain_per_stream: 256,
            gd_retry_us: 400_000,
            offer_window_us: 30_000,
            rmi_timeout_us: 900_000,
            rmi_max_attempts: 3,
            announce_period_us: 2_000_000,
            sync_period_us: 250_000,
            sync_rounds: 2,
            discovery_window_us: 50_000,
            stats_period_us: 0,
            subscriber_queue_cap: 0,
            shards: 1,
            session_timeout_us: 3_000_000,
            heartbeat_period_us: 1_000_000,
            session_cursor_lag: 64,
            router_stabilize_us: 2_000_000,
            router_max_hops: 16,
            durable_dir: None,
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::Always,
            durable_mem_bytes: 1 << 20,
            subject_map: None,
        }
    }
}

impl BusConfig {
    /// The latency-test configuration: batching off (as in Figure 5).
    pub fn latency() -> Self {
        BusConfig {
            batch_enabled: false,
            ..BusConfig::default()
        }
    }

    /// The throughput-test configuration: batching on (Figures 6–8).
    pub fn throughput() -> Self {
        BusConfig {
            batch_enabled: true,
            ..BusConfig::default()
        }
    }

    /// Sets whether small publications are gathered into MTU-sized packets.
    pub fn with_batch_enabled(mut self, enabled: bool) -> Self {
        self.batch_enabled = enabled;
        self
    }

    /// Sets the byte threshold at which a batch is flushed.
    pub fn with_batch_bytes(mut self, bytes: usize) -> Self {
        self.batch_bytes = bytes;
        self
    }

    /// Sets the assumed path MTU (the datagram size one framed batch
    /// must fit into).
    pub fn with_path_mtu(mut self, bytes: usize) -> Self {
        self.path_mtu = bytes;
        self
    }

    /// The largest batch payload that still fits one [`BusConfig::path_mtu`]
    /// datagram after the frame header and the data-packet wrapper.
    pub fn max_batch_payload(&self) -> usize {
        self.path_mtu
            .saturating_sub(crate::msg::FRAME_HEADER_LEN + crate::msg::DATA_PACKET_OVERHEAD)
    }

    /// How many marshal buffers a driver's `BufPool` should retain: the
    /// retransmission window pins a payload reference per retained
    /// envelope, so the pool must outsize the window (plus slack for
    /// in-flight deliveries) for steady-state publishes to recycle
    /// instead of allocate.
    pub fn marshal_pool_slots(&self) -> usize {
        self.retain_per_stream + 64
    }

    /// Checks cross-field invariants. Datagram drivers call this before
    /// opening a socket, so a configuration that would emit
    /// fragmenting frames is rejected up front instead of silently
    /// degrading on the wire.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`](crate::BusError) (`Config`) when
    /// [`BusConfig::batch_bytes`] exceeds the frame budget of
    /// [`BusConfig::path_mtu`].
    pub fn validate(&self) -> Result<(), crate::BusError> {
        let budget = self.max_batch_payload();
        if self.batch_bytes > budget {
            return Err(crate::BusError::Config(format!(
                "batch_bytes {} exceeds the {budget}-byte frame budget of path_mtu {}",
                self.batch_bytes, self.path_mtu
            )));
        }
        Ok(())
    }

    /// Sets the maximum delay before a partial batch is flushed.
    pub fn with_batch_delay_us(mut self, us: Micros) -> Self {
        self.batch_delay_us = us;
        self
    }

    /// Sets how long a receiver waits on a sequence gap before NAKing.
    pub fn with_nak_delay_us(mut self, us: Micros) -> Self {
        self.nak_delay_us = us;
        self
    }

    /// Sets the period of the receiver's gap-scan timer.
    pub fn with_nak_check_us(mut self, us: Micros) -> Self {
        self.nak_check_us = us;
        self
    }

    /// Sets how many envelopes each (publisher, subject) stream retains
    /// for retransmission.
    pub fn with_retain_per_stream(mut self, n: usize) -> Self {
        self.retain_per_stream = n;
        self
    }

    /// Sets the retry period for unacknowledged guaranteed messages.
    pub fn with_gd_retry_us(mut self, us: Micros) -> Self {
        self.gd_retry_us = us;
        self
    }

    /// Sets how long an RMI client collects server offers before choosing.
    pub fn with_offer_window_us(mut self, us: Micros) -> Self {
        self.offer_window_us = us;
        self
    }

    /// Sets the RMI request timeout before fail-over / failure.
    pub fn with_rmi_timeout_us(mut self, us: Micros) -> Self {
        self.rmi_timeout_us = us;
        self
    }

    /// Sets the maximum RMI attempts (initial + fail-overs).
    pub fn with_rmi_max_attempts(mut self, n: u32) -> Self {
        self.rmi_max_attempts = n;
        self
    }

    /// Sets the period of full subscription-table announcements.
    pub fn with_announce_period_us(mut self, us: Micros) -> Self {
        self.announce_period_us = us;
        self
    }

    /// Sets the period of the publisher's stream-digest timer.
    pub fn with_sync_period_us(mut self, us: Micros) -> Self {
        self.sync_period_us = us;
        self
    }

    /// Sets how many digest rounds an idle stream broadcasts.
    pub fn with_sync_rounds(mut self, n: u32) -> Self {
        self.sync_rounds = n;
        self
    }

    /// Sets how long a discovery request collects "I am" announcements.
    pub fn with_discovery_window_us(mut self, us: Micros) -> Self {
        self.discovery_window_us = us;
        self
    }

    /// Sets the period of the daemon's [`BusStats`](crate::BusStats)
    /// publication on `_INBUS.STATS.<host>.<daemon>` (`0` disables it).
    pub fn with_stats_period_us(mut self, us: Micros) -> Self {
        self.stats_period_us = us;
        self
    }

    /// Sets the per-subscriber queue cap for real-thread drivers
    /// (drop-oldest once full; `0` = unbounded).
    pub fn with_subscriber_queue_cap(mut self, cap: usize) -> Self {
        self.subscriber_queue_cap = cap;
        self
    }

    /// Sets the number of engine shards (`1` = the unsharded daemon,
    /// byte-identical to the paper-figure configurations; `0` is treated
    /// as `1`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets how long a thin-client session may stay silent before the
    /// edge session broker evicts it.
    pub fn with_session_timeout_us(mut self, us: Micros) -> Self {
        self.session_timeout_us = us;
        self
    }

    /// Sets the heartbeat period the edge session broker advertises to
    /// thin clients (and the period of its freshness scan).
    pub fn with_heartbeat_period_us(mut self, us: Micros) -> Self {
        self.heartbeat_period_us = us;
        self
    }

    /// Sets the maximum unacknowledged delivery-cursor lag before a
    /// session is paused (buffer bounded at four times the lag,
    /// drop-oldest past that).
    pub fn with_session_cursor_lag(mut self, lag: u64) -> Self {
        self.session_cursor_lag = lag;
        self
    }

    /// Sets the period of the information router's self-stabilization
    /// pass (route/summary-table revalidation and epoch rotation).
    pub fn with_router_stabilize_us(mut self, us: Micros) -> Self {
        self.router_stabilize_us = us;
        self
    }

    /// Sets the hop budget stamped onto publications entering the
    /// federation through this daemon's router links.
    pub fn with_router_max_hops(mut self, hops: u8) -> Self {
        self.router_max_hops = hops;
        self
    }

    /// Sets the durable guaranteed-delivery ledger directory (per-shard
    /// write-ahead segments live under it).
    pub fn with_durable_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Sets the ledger segment rotation threshold.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Sets the ledger fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the in-memory ceiling of the durable persist map (`0` =
    /// keep every live payload in memory).
    pub fn with_durable_mem_bytes(mut self, bytes: usize) -> Self {
        self.durable_mem_bytes = bytes;
        self
    }

    /// Installs the semantic subject layer (synonym aliases + taxonomy
    /// broadening; see [`SubjectMap`]). Pass the same `Arc` to every
    /// daemon of a segment so all of them rewrite identically.
    pub fn with_subject_map(mut self, map: Arc<SubjectMap>) -> Self {
        self.subject_map = Some(map);
        self
    }

    /// The semantic layer, if one is installed and non-empty (drivers
    /// skip the rewrite path entirely otherwise).
    pub fn semantic_map(&self) -> Option<&Arc<SubjectMap>> {
        self.subject_map.as_ref().filter(|m| !m.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn setters_chain_and_presets_hold() {
        let cfg = BusConfig::latency()
            .with_batch_enabled(true)
            .with_batch_bytes(999)
            .with_batch_delay_us(1)
            .with_nak_delay_us(2)
            .with_nak_check_us(3)
            .with_retain_per_stream(4)
            .with_gd_retry_us(5)
            .with_offer_window_us(6)
            .with_rmi_timeout_us(7)
            .with_rmi_max_attempts(8)
            .with_announce_period_us(9)
            .with_sync_period_us(10)
            .with_sync_rounds(11)
            .with_discovery_window_us(12)
            .with_stats_period_us(13)
            .with_subscriber_queue_cap(14)
            .with_shards(15)
            .with_session_timeout_us(16)
            .with_heartbeat_period_us(17)
            .with_session_cursor_lag(18)
            .with_router_stabilize_us(21)
            .with_router_max_hops(22)
            .with_durable_dir("/tmp/ledger")
            .with_segment_bytes(19)
            .with_fsync(FsyncPolicy::OnRotate)
            .with_durable_mem_bytes(20);
        assert!(cfg.batch_enabled);
        assert_eq!(cfg.batch_bytes, 999);
        assert_eq!(cfg.rmi_max_attempts, 8);
        assert_eq!(cfg.stats_period_us, 13);
        assert_eq!(cfg.subscriber_queue_cap, 14);
        assert_eq!(cfg.shards, 15);
        assert_eq!(cfg.session_timeout_us, 16);
        assert_eq!(cfg.heartbeat_period_us, 17);
        assert_eq!(cfg.session_cursor_lag, 18);
        assert_eq!(cfg.router_stabilize_us, 21);
        assert_eq!(cfg.router_max_hops, 22);
        assert_eq!(cfg.durable_dir.as_deref(), Some(Path::new("/tmp/ledger")));
        assert_eq!(cfg.segment_bytes, 19);
        assert_eq!(cfg.fsync, FsyncPolicy::OnRotate);
        assert_eq!(cfg.durable_mem_bytes, 20);
        assert_eq!(BusConfig::default().durable_dir, None);
        assert_eq!(BusConfig::default().segment_bytes, 1 << 20);
        assert_eq!(BusConfig::default().fsync, FsyncPolicy::Always);
        assert_eq!(BusConfig::default().durable_mem_bytes, 1 << 20);
        assert_eq!(BusConfig::default().stats_period_us, 0);
        assert_eq!(BusConfig::default().subscriber_queue_cap, 0);
        assert_eq!(BusConfig::default().shards, 1);
        assert_eq!(BusConfig::default().session_timeout_us, 3_000_000);
        assert_eq!(BusConfig::default().heartbeat_period_us, 1_000_000);
        assert_eq!(BusConfig::default().session_cursor_lag, 64);
        assert_eq!(BusConfig::default().router_stabilize_us, 2_000_000);
        assert_eq!(BusConfig::default().router_max_hops, 16);
        assert!(BusConfig::throughput().batch_enabled);
        assert!(!BusConfig::latency().batch_enabled);
        assert_eq!(BusConfig::default().path_mtu, 1_472);
        assert_eq!(BusConfig::default().with_path_mtu(9_000).path_mtu, 9_000);
    }

    #[test]
    fn batch_bytes_must_fit_the_frame_budget() {
        // Default: 1400 payload bytes inside a 1472-byte datagram, with
        // 15 bytes of frame header + data wrapper to spare.
        let cfg = BusConfig::default();
        assert_eq!(cfg.max_batch_payload(), 1_457);
        assert!(cfg.validate().is_ok());
        // A batch threshold the MTU cannot carry is rejected.
        let bad = BusConfig::throughput().with_batch_bytes(1_458);
        assert!(matches!(bad.validate(), Err(crate::BusError::Config(_))));
        // Raising the path MTU restores it.
        assert!(bad.with_path_mtu(9_000).validate().is_ok());
        // Degenerate MTUs cannot underflow.
        assert_eq!(BusConfig::default().with_path_mtu(8).max_batch_payload(), 0);
    }
}
