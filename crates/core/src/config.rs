//! Tunable parameters of a bus daemon.

use infobus_netsim::Micros;

/// Configuration of one [`BusDaemon`](crate::BusDaemon).
///
/// Defaults reflect the paper's installation: batching available but
/// controlled by a parameter (latency tests turn it off, throughput tests
/// turn it on), NAK-based retransmission tuned for a LAN.
#[derive(Debug, Clone)]
pub struct BusConfig {
    /// Gather small publications into MTU-sized packets ("the Information
    /// Bus has a batch parameter that increases throughput by delaying
    /// small messages, and gathering them together").
    pub batch_enabled: bool,
    /// Flush the batch once this many payload bytes are queued.
    pub batch_bytes: usize,
    /// Flush the batch after this much delay even if not full.
    pub batch_delay_us: Micros,
    /// How long a receiver waits on a sequence gap before NAKing.
    pub nak_delay_us: Micros,
    /// Period of the receiver's gap-scan timer.
    pub nak_check_us: Micros,
    /// Envelopes retained per (publisher, subject) stream for
    /// retransmission.
    pub retain_per_stream: usize,
    /// Retry period for unacknowledged guaranteed messages.
    pub gd_retry_us: Micros,
    /// How long an RMI client collects server offers before choosing.
    pub offer_window_us: Micros,
    /// RMI request timeout before fail-over / failure.
    pub rmi_timeout_us: Micros,
    /// Maximum RMI attempts (initial + fail-overs) for retrying policies.
    pub rmi_max_attempts: u32,
    /// Period of full subscription-table announcements (soft state for
    /// routers and guaranteed delivery).
    pub announce_period_us: Micros,
    /// Period of the publisher's stream-digest timer: idle streams
    /// broadcast their top sequence number a few times so receivers can
    /// detect tail losses.
    pub sync_period_us: Micros,
    /// How many digest rounds an idle stream broadcasts after its last
    /// publication.
    pub sync_rounds: u32,
    /// How long a discovery request collects "I am" announcements.
    pub discovery_window_us: Micros,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            batch_enabled: false,
            batch_bytes: 1_400,
            batch_delay_us: 2_000,
            nak_delay_us: 8_000,
            nak_check_us: 4_000,
            retain_per_stream: 256,
            gd_retry_us: 400_000,
            offer_window_us: 30_000,
            rmi_timeout_us: 900_000,
            rmi_max_attempts: 3,
            announce_period_us: 2_000_000,
            sync_period_us: 250_000,
            sync_rounds: 2,
            discovery_window_us: 50_000,
        }
    }
}

impl BusConfig {
    /// The latency-test configuration: batching off (as in Figure 5).
    pub fn latency() -> Self {
        BusConfig {
            batch_enabled: false,
            ..BusConfig::default()
        }
    }

    /// The throughput-test configuration: batching on (Figures 6–8).
    pub fn throughput() -> Self {
        BusConfig {
            batch_enabled: true,
            ..BusConfig::default()
        }
    }
}
