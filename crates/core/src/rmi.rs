//! Remote method invocation: service objects, call policies, errors.

use std::any::Any;
use std::fmt;

use infobus_types::{TypeDescriptor, Value};

use crate::app::BusCtx;

/// Identifier of an in-flight RMI call on the client side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallId(pub u64);

/// How a client chooses among multiple servers answering on one subject.
///
/// "More than one server can respond to requests on a subject. Several
/// server objects can be used to provide load balancing or
/// fault-tolerance. Our system allows an application to choose between
/// several different policies." (§3.3)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Take the first server that answers (lowest latency, no waiting).
    #[default]
    First,
    /// Collect offers for the offer window, then pick uniformly at random
    /// (spreads load without coordination).
    Random,
    /// Collect offers, then pick the server reporting the fewest
    /// outstanding invocations (server-assisted load balancing).
    LeastLoaded,
}

/// What the client does when a call fails mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetryMode {
    /// Standard RMI: exactly-once under normal operation, *at most once*
    /// in the presence of failures — a broken call reports an error.
    #[default]
    AtMostOnce,
    /// Fail over to another discovered server and retry with the *same*
    /// call id. Servers deduplicate call ids, so a retry that reaches a
    /// server that already executed returns the cached reply; combined
    /// with idempotent operations this provides the "exactly-once …
    /// built … above standard RMI" layer of §3.3.
    Failover,
}

/// Errors reported for RMI calls.
#[derive(Debug, Clone, PartialEq)]
pub enum RmiError {
    /// No server offered to handle the subject within the offer window.
    NoServer,
    /// The request or connection timed out.
    Timeout,
    /// The connection broke before the reply arrived.
    ConnectionFailed,
    /// The operation is not part of the service interface (or arity
    /// mismatched).
    BadOperation(String),
    /// The service raised an application-level error.
    App(String),
}

impl fmt::Display for RmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmiError::NoServer => write!(f, "no server answered on the subject"),
            RmiError::Timeout => write!(f, "request timed out"),
            RmiError::ConnectionFailed => write!(f, "connection failed before reply"),
            RmiError::BadOperation(op) => write!(f, "bad operation: {op}"),
            RmiError::App(msg) => write!(f, "application error: {msg}"),
        }
    }
}

impl std::error::Error for RmiError {}

/// A service object: a large-grained object invoked where it resides.
///
/// Service objects "encapsulate and control access to resources such as
/// databases or devices … Instead of migrating to another node, they are
/// invoked where they reside, using a form of remote procedure call" (§3).
/// They are self-describing (P2): [`ServiceObject::descriptor`] exposes
/// the interface — clients and UI generators work from the operation
/// signatures alone.
pub trait ServiceObject: Any {
    /// The service's type descriptor (name + operation signatures).
    fn descriptor(&self) -> TypeDescriptor;

    /// Executes one operation. The service may publish, subscribe, or
    /// make further calls through `bus`.
    ///
    /// # Errors
    ///
    /// Returns an [`RmiError`] to be reported to the caller.
    fn invoke(
        &mut self,
        op: &str,
        args: Vec<Value>,
        bus: &mut BusCtx<'_, '_>,
    ) -> Result<Value, RmiError>;
}

/// A discovered server offer (internal; also surfaced in tests).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Offer {
    pub host: u32,
    pub port: u16,
    pub load: i64,
}
