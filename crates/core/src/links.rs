//! Information-router links: application-level bridges that splice bus
//! segments into the illusion of one large bus, forwarding only subjects
//! the remote side subscribes to.

use std::collections::HashSet;

use infobus_netsim::{ConnId, Ctx, SockAddr};
use infobus_subject::{Subject, SubjectFilter};

use crate::daemon::{DaemonState, RMI_PORT};
use crate::envelope::{Envelope, EnvelopeKind};
use crate::msg::RouterMsg;
use crate::router::RewriteRule;

/// One information-router link to a peer bus.
pub(crate) struct RouterLink {
    /// Peer daemon's host (kept for tracing/diagnostics).
    #[allow(dead_code)]
    peer_host: u32,
    /// The remote bus's aggregate subscription set (what to forward).
    subs: Vec<SubjectFilter>,
    /// Subject rewriting applied to publications we forward out.
    rewrite: Option<RewriteRule>,
}

impl DaemonState {
    pub(crate) fn link_interested(&self, subject: &Subject) -> bool {
        self.router_links
            .values()
            .any(|link| link_wants(link, subject).is_some())
    }

    /// Forwards a data envelope over every link whose remote side
    /// subscribes to its subject, except `from_link` (split horizon).
    pub(crate) fn maybe_forward(
        &mut self,
        net: &mut Ctx<'_>,
        env: &Envelope,
        from_link: Option<ConnId>,
    ) {
        if env.kind != EnvelopeKind::Data {
            return;
        }
        let targets: Vec<(ConnId, Subject)> = self
            .router_links
            .iter()
            .filter(|(conn, _)| Some(**conn) != from_link)
            .filter_map(|(conn, link)| link_wants(link, &env.subject).map(|s| (*conn, s)))
            .collect();
        self.engine.stats.router_forwarded += targets.len() as u64;
        for (conn, forwarded_subject) in targets {
            let mut fwd = env.clone();
            fwd.subject = self.engine.table().intern_subject(&forwarded_subject);
            let _ = net.conn_send(conn, RouterMsg::Forward { env: fwd }.encode());
        }
    }

    /// Opens a router link to a peer daemon (driver command).
    pub(crate) fn open_link(&mut self, net: &mut Ctx<'_>, peer: u32, rewrite: Option<RewriteRule>) {
        let conn = net.connect(SockAddr::new(infobus_netsim::HostId(peer), RMI_PORT));
        self.router_links.insert(
            conn,
            RouterLink {
                peer_host: peer,
                subs: Vec::new(),
                rewrite,
            },
        );
        let _ = net.conn_send(conn, RouterMsg::Hello { host: self.host32 }.encode());
        self.send_link_subs(net, Some(conn));
    }

    /// The subscription set advertised over `link`: everything this bus
    /// knows locally or via broadcast announcements, plus the sets of all
    /// *other* links (split-horizon aggregation for bus chains).
    fn link_advertisement(&self, link: ConnId) -> Vec<String> {
        let mut set: HashSet<String> = HashSet::new();
        for f in self.my_filters.keys() {
            set.insert(f.clone());
        }
        for peers in self.peer_subs.values() {
            for f in peers.keys() {
                set.insert(f.clone());
            }
        }
        for (conn, other) in &self.router_links {
            if *conn != link {
                for f in &other.subs {
                    set.insert(f.as_str().to_owned());
                }
            }
        }
        let mut v: Vec<String> = set.into_iter().collect();
        v.sort();
        v
    }

    /// Sends subscription advertisements over one or all links.
    pub(crate) fn send_link_subs(&mut self, net: &mut Ctx<'_>, only: Option<ConnId>) {
        let conns: Vec<ConnId> = self
            .router_links
            .keys()
            .copied()
            .filter(|c| only.is_none() || only == Some(*c))
            .collect();
        for conn in conns {
            let filters = self.link_advertisement(conn);
            let _ = net.conn_send(conn, RouterMsg::Subs { filters }.encode());
        }
    }

    /// Handles a router message arriving on a connection.
    pub(crate) fn handle_router_msg(&mut self, net: &mut Ctx<'_>, conn: ConnId, msg: RouterMsg) {
        match msg {
            RouterMsg::Hello { host } => {
                // The accepting side learns this connection is a link.
                self.router_links.entry(conn).or_insert(RouterLink {
                    peer_host: host,
                    subs: Vec::new(),
                    rewrite: None,
                });
                self.send_link_subs(net, Some(conn));
            }
            RouterMsg::Subs { filters } => {
                if let Some(link) = self.router_links.get_mut(&conn) {
                    link.subs = filters
                        .iter()
                        .filter_map(|f| SubjectFilter::new(f).ok())
                        .collect();
                }
            }
            RouterMsg::Forward { env } => {
                if !self.router_links.contains_key(&conn) {
                    return;
                }
                // Re-publish on this bus as a fresh publication from the
                // router; never forward it back where it came from.
                self.forward_horizon = Some(conn);
                let subject = env.subject.subject().clone();
                let _ = self.publish_payload(
                    net,
                    usize::MAX,
                    &subject,
                    env.qos,
                    EnvelopeKind::Data,
                    0,
                    env.payload,
                );
                self.forward_horizon = None;
            }
        }
    }
}

/// Decides whether `link`'s remote side subscribes to this subject,
/// returning the subject to forward under (rewritten if the link has a
/// matching rewrite rule).
fn link_wants(link: &RouterLink, subject: &Subject) -> Option<Subject> {
    let fsubj: Subject = match &link.rewrite {
        Some(rule) => match rule.apply(subject.as_str()) {
            Some(rewritten) => Subject::new(&rewritten).ok()?,
            None => subject.clone(),
        },
        None => subject.clone(),
    };
    link.subs.iter().any(|f| f.matches(&fsubj)).then_some(fsubj)
}
