//! Information-router links: the netsim driver of the federation
//! [`RouterEngine`](infobus_router::RouterEngine).
//!
//! Each daemon that opens (or accepts) a router link runs one engine.
//! This module translates between the two worlds: connection events and
//! [`RouterMsg`]s become [`RouterEvent`]s, and the engine's
//! [`RouterAction`]s become connection sends and daemon timers. The data
//! path threads through [`DaemonState::maybe_forward`]: every data
//! envelope this daemon publishes or receives is offered to the engine's
//! `route` decision, and forwarded copies carry the engine's
//! [`RouteStamp`] so cyclic router topologies stay loop-free.

use std::collections::BTreeSet;
use std::sync::Arc;

use infobus_netsim::{ConnId, Ctx, SockAddr};
use infobus_router::{
    ForwardTarget, LinkId, RouteStamp, RouterAction, RouterConfig, RouterEngine, RouterEvent,
    RouterTimer,
};
use infobus_subject::{Subject, SubjectFilter};
use infobus_types::{wire, Value};

use crate::config::BusConfig;
use crate::daemon::{DaemonState, RMI_PORT, TOK_RT_STAB, TOK_RT_SUMMARY};
use crate::engine::filter::{announced_predicate, CompiledPredicate};
use crate::engine::BusStats;
use crate::envelope::{Envelope, EnvelopeKind};
use crate::msg::RouterMsg;
use crate::router::RewriteRule;

/// Derives the router engine's tuning from the bus configuration: the
/// summary refresh rides the subscription-announce cadence, routes age
/// out after five missed refreshes, and the stabilization pass and hop
/// budget come from their dedicated knobs.
fn router_config(cfg: &BusConfig) -> RouterConfig {
    RouterConfig {
        summary_period_us: cfg.announce_period_us,
        route_ttl_us: 5 * cfg.announce_period_us,
        stabilize_period_us: cfg.router_stabilize_us,
        max_hops: cfg.router_max_hops,
        ..RouterConfig::default()
    }
}

impl DaemonState {
    /// Lazily creates the router engine the first time this daemon opens
    /// or accepts a link, arming its periodic timers.
    fn ensure_router(&mut self, net: &mut Ctx<'_>) {
        if self.router.is_some() {
            return;
        }
        let mut r = RouterEngine::new(self.host32, router_config(self.engine.config()));
        let actions = r.start(net.now());
        self.router = Some(r);
        self.run_router_actions(net, actions);
    }

    /// Allocates a fresh link id for a connection and indexes it both ways.
    fn alloc_link(&mut self, conn: ConnId) -> LinkId {
        let link = self.next_link_id;
        self.next_link_id += 1;
        self.conn_links.insert(conn, link);
        self.link_conns.insert(link, conn);
        link
    }

    /// Performs a batch of router-engine actions against the simulator.
    fn run_router_actions(&mut self, net: &mut Ctx<'_>, actions: Vec<RouterAction>) {
        for action in actions {
            match action {
                RouterAction::SendSummary { link, seq, filters } => {
                    if let Some(&conn) = self.link_conns.get(&link) {
                        // Each filter travels with the content predicate
                        // this side would apply (empty = unfiltered), so
                        // the remote router can gate forwards at *its*
                        // publish hop.
                        let preds: Vec<Vec<u8>> =
                            filters.iter().map(|f| self.summary_pred_bytes(f)).collect();
                        let _ = net.conn_send(
                            conn,
                            RouterMsg::Summary {
                                seq,
                                filters,
                                preds,
                            }
                            .encode(),
                        );
                    }
                }
                RouterAction::SendSummaryReq { link } => {
                    if let Some(&conn) = self.link_conns.get(&link) {
                        let _ = net.conn_send(conn, RouterMsg::SummaryReq.encode());
                    }
                }
                RouterAction::SetTimer { timer, delay_us } => {
                    let token = match timer {
                        RouterTimer::Summary => TOK_RT_SUMMARY,
                        RouterTimer::Stabilize => TOK_RT_STAB,
                    };
                    net.set_timer(delay_us, token);
                }
            }
        }
    }

    /// The predicate this side's summary attaches to `filter`: the
    /// disjunction over every local subscription and peer announcement
    /// on the exact filter string, or unfiltered (`None`) as soon as any
    /// source is predicate-free (see [`announced_predicate`]).
    fn summary_pred_bytes(&self, filter: &str) -> Vec<u8> {
        let mut sources: Vec<Option<Arc<CompiledPredicate>>> = Vec::new();
        if let Some(subs) = self.my_filters.get(filter) {
            sources.extend(subs.iter().map(|(_, p)| p.clone()));
        }
        for peers in self.peer_subs.values() {
            if let Some(pi) = peers.get(filter) {
                sources.push(pi.pred.clone());
            }
        }
        announced_predicate(&sources).map_or_else(Vec::new, |p| p.to_bytes())
    }

    /// Re-derives local interest from ground truth (this segment's own
    /// subscriptions plus everything peers announced over broadcast) and
    /// feeds it to the engine. Called at link setup and every summary
    /// period — the periodic re-feed is what lets stabilization discard a
    /// corrupted local-interest copy and heal.
    fn feed_local_interest(&mut self, net: &mut Ctx<'_>) {
        if self.router.is_none() {
            return;
        }
        let mut set: BTreeSet<String> = self.my_filters.keys().cloned().collect();
        for peers in self.peer_subs.values() {
            set.extend(peers.keys().cloned());
        }
        let filters: Vec<String> = set.into_iter().collect();
        let actions = self
            .router
            .as_mut()
            .expect("router presence checked above")
            .handle(net.now(), RouterEvent::LocalInterest { filters });
        self.run_router_actions(net, actions);
    }

    /// Dispatches a fired router timer into the engine.
    pub(crate) fn router_timer(&mut self, net: &mut Ctx<'_>, timer: RouterTimer) {
        if self.router.is_none() {
            return;
        }
        if timer == RouterTimer::Summary {
            self.feed_local_interest(net);
        }
        let actions = self
            .router
            .as_mut()
            .expect("router presence checked above")
            .handle(net.now(), RouterEvent::Timer(timer));
        self.run_router_actions(net, actions);
    }

    /// Tears down the link riding a closed connection. A link this
    /// daemon dialed self-heals: a redial is armed one summary period
    /// out, and keeps re-arming until the peer is reachable again.
    pub(crate) fn close_link(&mut self, net: &mut Ctx<'_>, conn: ConnId) {
        let Some(link) = self.conn_links.remove(&conn) else {
            return;
        };
        self.link_conns.remove(&link);
        self.link_preds.remove(&link);
        if let Some(r) = self.router.as_mut() {
            let actions = r.handle(net.now(), RouterEvent::LinkDown { link });
            self.run_router_actions(net, actions);
        }
        if let Some(peer) = self.link_dials.remove(&conn) {
            let delay = self.engine.config().announce_period_us;
            self.dyn_timer(net, delay, crate::apps::TimerTarget::LinkRedial { peer });
        }
    }

    /// The cheap accept filter: does any link's remote side subscribe?
    pub(crate) fn link_interested(&self, subject: &Subject) -> bool {
        self.router
            .as_ref()
            .is_some_and(|r| r.interested(subject.as_str()))
    }

    /// Offers a data envelope to the router's forwarding decision.
    ///
    /// Two paths converge here. A re-published forward (the `Forward`
    /// handler below) already routed exactly once — its decision waits in
    /// `pending_forward` and is consumed verbatim, because a second
    /// `route` call would re-record the stamp in the dedup window and
    /// suppress the message as its own duplicate. Everything else (local
    /// publications, broadcast arrivals) routes fresh; a broadcast copy
    /// re-published by a co-segment router carries its stamp in
    /// `env.route`, which is how a second router on the same segment
    /// recognizes traffic it must not re-forward.
    pub(crate) fn maybe_forward(&mut self, net: &mut Ctx<'_>, env: &Envelope) {
        if env.kind != EnvelopeKind::Data {
            return;
        }
        if let Some((stamp, targets)) = self.pending_forward.take() {
            self.send_forwards(net, env, stamp, targets);
            return;
        }
        let Some(router) = self.router.as_mut() else {
            return;
        };
        let decision = router.route(net.now(), env.subject.as_str(), None, env.route);
        if decision.accept && !decision.targets.is_empty() {
            self.send_forwards(net, env, decision.stamp, decision.targets);
        }
    }

    /// Transmits one forwarded copy per target link, stamped.
    fn send_forwards(
        &mut self,
        net: &mut Ctx<'_>,
        env: &Envelope,
        stamp: Option<RouteStamp>,
        targets: Vec<ForwardTarget>,
    ) {
        // Unmarshalled at most once, shared across target links; a
        // payload that fails to unmarshal forwards unconditionally (the
        // conservative direction).
        let mut value: Option<Option<Value>> = None;
        for target in targets {
            let Some(&conn) = self.link_conns.get(&target.link) else {
                continue;
            };
            let Ok(subject) = Subject::new(&target.subject) else {
                continue;
            };
            // Per-link publish gate: the remote summary's predicates are
            // in the remote namespace, exactly like `target.subject`
            // after rewrite. When every matching remote filter carries a
            // rejecting predicate, this WAN copy never leaves.
            if let Some(table) = self.link_preds.get(&target.link) {
                let matching: Vec<&Option<Arc<CompiledPredicate>>> = table
                    .iter()
                    .filter(|(f, _)| f.matches(&subject))
                    .map(|(_, p)| p)
                    .collect();
                if !matching.is_empty() && matching.iter().all(|p| p.is_some()) {
                    let v = value.get_or_insert_with(|| {
                        wire::unmarshal(&env.payload, &mut self.registry.borrow_mut()).ok()
                    });
                    if let Some(v) = v {
                        let mut evals = 0u64;
                        let rejected = !matching.iter().filter_map(|p| p.as_deref()).any(|p| {
                            evals += 1;
                            p.eval(v)
                        });
                        self.engine.stats.filt_evals += evals;
                        if rejected {
                            self.engine.stats.filt_pub_suppressed += 1;
                            self.engine.stats.filt_suppressed_bytes += env.payload.len() as u64;
                            continue;
                        }
                    }
                }
            }
            let mut fwd = env.clone();
            fwd.subject = self.engine.table().intern_subject(&subject);
            fwd.route = stamp;
            self.engine.stats.router_forwarded += 1;
            let _ = net.conn_send(conn, RouterMsg::Forward { env: fwd }.encode());
        }
    }

    /// Opens a router link to a peer daemon (driver command, and the
    /// redial path after a dialed link's connection broke).
    pub(crate) fn open_link(&mut self, net: &mut Ctx<'_>, peer: u32, rewrite: Option<RewriteRule>) {
        self.ensure_router(net);
        let conn = net.connect(SockAddr::new(infobus_netsim::HostId(peer), RMI_PORT));
        self.link_dials.insert(conn, peer);
        self.link_rules.insert(peer, rewrite.clone());
        let link = self.alloc_link(conn);
        let _ = net.conn_send(conn, RouterMsg::Hello { host: self.host32 }.encode());
        self.feed_local_interest(net);
        let actions = self
            .router
            .as_mut()
            .expect("ensure_router ran above")
            .handle(net.now(), RouterEvent::LinkUp { link, rewrite });
        self.run_router_actions(net, actions);
    }

    /// Handles a router message arriving on a connection.
    pub(crate) fn handle_router_msg(&mut self, net: &mut Ctx<'_>, conn: ConnId, msg: RouterMsg) {
        match msg {
            RouterMsg::Hello { host: _ } => {
                // The accepting side learns this connection is a link.
                if self.conn_links.contains_key(&conn) {
                    return;
                }
                self.ensure_router(net);
                let link = self.alloc_link(conn);
                self.feed_local_interest(net);
                let actions = self
                    .router
                    .as_mut()
                    .expect("ensure_router ran above")
                    .handle(
                        net.now(),
                        RouterEvent::LinkUp {
                            link,
                            rewrite: None,
                        },
                    );
                self.run_router_actions(net, actions);
            }
            RouterMsg::Summary {
                seq,
                filters,
                preds,
            } => {
                let Some(&link) = self.conn_links.get(&conn) else {
                    return;
                };
                // Mirror the remote's predicate table before the router
                // engine consumes the filter list: it gates this side's
                // forwarded copies in `send_forwards`. A malformed
                // predicate decodes to unfiltered — over-delivery only.
                let table: Vec<(SubjectFilter, Option<Arc<CompiledPredicate>>)> = filters
                    .iter()
                    .enumerate()
                    .filter_map(|(i, f)| {
                        let filter = SubjectFilter::new(f).ok()?;
                        let pred = preds
                            .get(i)
                            .filter(|p| !p.is_empty())
                            .and_then(|p| CompiledPredicate::from_bytes(p).ok())
                            .map(Arc::new);
                        Some((filter, pred))
                    })
                    .collect();
                self.link_preds.insert(link, table);
                let Some(router) = self.router.as_mut() else {
                    return;
                };
                let actions =
                    router.handle(net.now(), RouterEvent::SummaryRecv { link, seq, filters });
                self.run_router_actions(net, actions);
            }
            RouterMsg::SummaryReq => {
                let Some(&link) = self.conn_links.get(&conn) else {
                    return;
                };
                let Some(router) = self.router.as_mut() else {
                    return;
                };
                let actions = router.handle(net.now(), RouterEvent::SummaryReq { link });
                self.run_router_actions(net, actions);
            }
            RouterMsg::Forward { env } => {
                let Some(&link) = self.conn_links.get(&conn) else {
                    return;
                };
                let Some(router) = self.router.as_mut() else {
                    return;
                };
                // Route exactly once; the decision is consumed by the
                // maybe_forward at the end of the re-publication below.
                let decision = router.route(net.now(), env.subject.as_str(), Some(link), env.route);
                if !decision.accept {
                    return; // A loop duplicate: dropped entirely.
                }
                let subject = env.subject.subject().clone();
                self.forward_stamp = decision.stamp;
                self.pending_forward = Some((decision.stamp, decision.targets));
                let _ = self.publish_payload(
                    net,
                    usize::MAX,
                    &subject,
                    env.qos,
                    EnvelopeKind::Data,
                    0,
                    env.payload,
                );
                self.forward_stamp = None;
                self.pending_forward = None;
            }
        }
    }

    /// Copies the router engine's counters into a stats snapshot.
    pub(crate) fn stamp_route_stats(&self, stats: &mut BusStats) {
        if let Some(r) = &self.router {
            let rs = r.stats();
            stats.route_summaries_sent = rs.summaries_sent;
            stats.route_summaries_recv = rs.summaries_recv;
            stats.route_loops_suppressed = rs.loops_suppressed;
            stats.route_stale_aged = rs.stale_aged;
            stats.route_stab_repairs = rs.stab_repairs;
        }
    }
}
