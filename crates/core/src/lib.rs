//! The Information Bus: anonymous publish/subscribe with subject-based
//! addressing, two delivery qualities of service, dynamic discovery,
//! remote method invocation, and information routers.
//!
//! This crate implements the communication architecture of the paper on
//! top of the [`infobus_netsim`] substrate:
//!
//! * **Per-host daemon** ([`BusDaemon`]) — applications register with the
//!   daemon on their host; the daemon filters Ethernet-broadcast traffic
//!   through a [`SubjectTrie`](infobus_subject::SubjectTrie) and forwards
//!   matching messages to local applications (§3.1 of the paper).
//! * **Reliable delivery** — per-publisher, per-subject sequencing with
//!   NAK-based retransmission: under normal operation messages arrive
//!   exactly once, in the order sent by each sender; after crashes or
//!   partitions, at most once.
//! * **Guaranteed delivery** — the message is logged to non-volatile
//!   storage *before* it is sent and retransmitted until every interested
//!   daemon acknowledges: at-least-once, across publisher restarts.
//! * **Batching** — the paper's batch parameter: small messages are
//!   gathered into MTU-sized packets to raise throughput (Appendix).
//! * **Dynamic discovery** (§3.2) — "Who's out there?" / "I am" as plain
//!   publications on a subject; no name service anywhere.
//! * **RMI** (§3.3) — servers are named by subjects; clients discover
//!   them with a publication, then invoke operations over a point-to-point
//!   connection; multiple servers per subject support load-balancing and
//!   fail-over policies.
//! * **Information routers** ([`router`]) — application-level bridges
//!   that splice bus segments into the illusion of one large bus,
//!   forwarding only subjects the remote side subscribes to.
//! * **Observability** — every daemon maintains protocol counters
//!   ([`BusStats`]) and, when [`BusConfig::stats_period_us`] is set,
//!   periodically publishes them as a self-describing object on the
//!   reserved subject `_INBUS.STATS.<host>.<daemon>`; any application can
//!   subscribe to `_INBUS.STATS.>` and watch the whole bus introspect
//!   itself through its own publish/subscribe machinery.
//!
//! Everything an application does goes through [`BusCtx`]; applications
//! implement [`BusApp`]. The driver-side [`BusFabric`] installs daemons
//! and attaches applications inside a simulation.
//!
//! The protocol itself — sequencing, NAK repair, guaranteed-delivery
//! ledgers, batching, discovery correlation — lives in the sans-I/O
//! [`engine`] module as pure state machines consuming `(now, Event)` and
//! emitting `Action`s. Two transports drive the same engine: the netsim
//! daemon ([`BusDaemon`]) and the real-thread in-process bus
//! ([`inproc`]), which carries the same envelopes between OS threads and
//! is used by the wall-clock microbenchmarks. New transports implement
//! [`engine::Transport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod apps;
pub mod buf;
pub mod bus;
mod calls;
mod config;
mod daemon;
pub mod engine;
mod envelope;
mod fabric;
pub mod inproc;
mod interest;
mod links;
pub mod msg;
pub mod nvstore;
pub mod queue;
mod rmi;
pub mod router;

pub use app::{BusApp, BusCtx, BusMessage, DiscoveryReply, SubscriptionHandle};
pub use buf::{BufPool, Bytes, PooledBuf};
pub use bus::{Bus, BusReceiver, Delivery, Receiver};
pub use config::BusConfig;
pub use daemon::{BusDaemon, DAEMON_PORT, RMI_PORT};
pub use engine::filter::{CmpOp, CompiledPredicate, FilterError, Predicate};
pub use engine::{
    shard_of_subject, BusStats, RmiLatency, ShardedEngine, ShardedStats, STATS_SUBJECT_PREFIX,
};
pub use envelope::{Envelope, EnvelopeKind, StreamKey};
pub use fabric::BusFabric;
pub use infobus_router::{SubjectMap, SubjectMapError};
pub use infobus_wal::FsyncPolicy;
pub use nvstore::NvStore;
pub use rmi::{CallId, RetryMode, RmiError, SelectionPolicy, ServiceObject};

use std::fmt;

/// Delivery quality of service for a publication or subscription.
///
/// The paper (§3.1) offers *reliable* delivery as the usual semantics and
/// *guaranteed* delivery — logged to non-volatile storage before sending,
/// delivered at least once regardless of failures — for cases like
/// feeding a database over an unreliable network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QoS {
    /// Exactly-once, sender-ordered under normal operation; at-most-once
    /// across crashes and long partitions.
    #[default]
    Reliable,
    /// At-least-once, persisted on the publisher until every interested
    /// daemon acknowledges; survives publisher restarts.
    Guaranteed,
}

impl fmt::Display for QoS {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QoS::Reliable => write!(f, "reliable"),
            QoS::Guaranteed => write!(f, "guaranteed"),
        }
    }
}

/// Errors surfaced by bus operations.
///
/// Marked `#[non_exhaustive]`: match with a wildcard arm so new error
/// conditions (like observability-plane failures) compose without
/// breaking downstream code.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum BusError {
    /// The subject or filter failed to parse.
    Subject(infobus_subject::SubjectError),
    /// The value could not be marshalled (unknown type).
    Marshal(String),
    /// The underlying network rejected the operation.
    Net(String),
    /// An application or service with this name already exists here.
    Duplicate(String),
    /// Referenced application, subscription, or service does not exist.
    NotFound(String),
    /// A remote method invocation failed.
    Rmi(RmiError),
    /// The configuration violates a cross-field invariant (e.g.
    /// [`BusConfig::batch_bytes`] exceeding the frame budget of
    /// [`BusConfig::path_mtu`]). Rejected when a driver opens, before
    /// any traffic.
    Config(String),
    /// A content predicate was rejected (too deep, too large, malformed
    /// path — see [`engine::filter::FilterError`]).
    Filter(engine::filter::FilterError),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Subject(e) => write!(f, "subject: {e}"),
            BusError::Marshal(e) => write!(f, "marshal: {e}"),
            BusError::Net(e) => write!(f, "network: {e}"),
            BusError::Duplicate(n) => write!(f, "duplicate name {n:?}"),
            BusError::NotFound(n) => write!(f, "not found: {n}"),
            BusError::Rmi(e) => write!(f, "rmi: {e}"),
            BusError::Config(e) => write!(f, "config: {e}"),
            BusError::Filter(e) => write!(f, "filter: {e}"),
        }
    }
}

impl std::error::Error for BusError {}

impl From<infobus_subject::SubjectError> for BusError {
    fn from(e: infobus_subject::SubjectError) -> Self {
        BusError::Subject(e)
    }
}

impl From<RmiError> for BusError {
    fn from(e: RmiError) -> Self {
        BusError::Rmi(e)
    }
}

impl From<engine::filter::FilterError> for BusError {
    fn from(e: engine::filter::FilterError) -> Self {
        BusError::Filter(e)
    }
}
