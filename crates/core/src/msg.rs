//! Daemon-to-daemon packets and RMI connection messages.

use std::sync::Arc;

use infobus_subject::{InternedSubject, SubjectTable};
use infobus_types::wire::{
    get_byte_vec, get_string, get_u32, get_u64, get_u8, put_bytes, put_string, put_u32, put_u64,
};
use infobus_types::WireError;

use crate::envelope::{intern_wire_subject, Envelope, StreamKey};

/// A packet exchanged between bus daemons over the datagram layer.
///
/// Packets are also the currency of the sans-I/O engine: the engine
/// emits them inside [`Action`](crate::engine::Action)s, and transports
/// decide how to move the bytes (simulated datagrams, loopback, real
/// sockets).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are documented on the variants
pub enum Packet {
    /// One or more envelopes (a batch). Broadcast for fresh publications,
    /// unicast for retransmissions.
    Data {
        envelopes: Vec<Envelope>,
        retrans: bool,
    },
    /// A receiver asking a publisher's daemon to retransmit missing
    /// sequence numbers of one `(stream, subject)`.
    Nak {
        stream: StreamKey,
        subject: InternedSubject,
        requester: u32,
        missing: Vec<u64>,
    },
    /// Publisher's daemon telling a receiver that sequences up to and
    /// including `through` are no longer available (receiver must skip).
    GapSkip {
        stream: StreamKey,
        subject: InternedSubject,
        through: u64,
    },
    /// Acknowledgment of a guaranteed envelope.
    Ack {
        stream: StreamKey,
        subject: InternedSubject,
        seq: u64,
        from_host: u32,
    },
    /// A daemon announcing (part of) its subscription table. Each added
    /// entry may carry a content predicate; `remove` is by filter text
    /// alone (a removal always widens what the peer may send).
    SubAnnounce {
        host: u32,
        full: bool,
        add: Vec<AnnounceEntry>,
        remove: Vec<String>,
    },
    /// A daemon asking everyone to re-announce their tables (sent at
    /// start-up: soft-state resynchronization).
    SubResync { host: u32 },
    /// Top sequence numbers of recently idle publisher streams, so
    /// receivers can detect (and NAK) losses at the tail of a stream.
    SeqSync { entries: Vec<SyncEntry> },
}

/// One added filter in a [`Packet::SubAnnounce`]: the subject filter
/// plus the encoded content predicate announced for it
/// ([`Predicate::encode`](crate::engine::filter::Predicate::encode)).
/// Empty predicate bytes mean the filter is unfiltered — the publisher's
/// daemon must send everything matching the subject. A re-announcement
/// of the same filter replaces the stored predicate (soft state, like
/// the rest of the subscription table).
#[derive(Debug, Clone, PartialEq)]
pub struct AnnounceEntry {
    /// The subject filter, as text.
    pub filter: String,
    /// The encoded predicate; empty = unfiltered.
    pub pred: Vec<u8>,
}

impl AnnounceEntry {
    /// An unfiltered entry (subject match alone).
    pub fn plain(filter: impl Into<String>) -> AnnounceEntry {
        AnnounceEntry {
            filter: filter.into(),
            pred: Vec::new(),
        }
    }

    /// An entry carrying an encoded predicate.
    pub fn filtered(filter: impl Into<String>, pred: Vec<u8>) -> AnnounceEntry {
        AnnounceEntry {
            filter: filter.into(),
            pred,
        }
    }
}

/// One stream digest in a [`Packet::SeqSync`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyncEntry {
    /// The publishing stream.
    pub stream: StreamKey,
    /// The stream's subject.
    pub subject: InternedSubject,
    /// Highest sequence number published so far.
    pub top_seq: u64,
    /// Time the stream started (first-contact entitlement checks).
    pub stream_start: u64,
}

/// Bytes of datagram frame header a wall-clock driver prepends to every
/// packet: 4-byte magic, 1-byte version, 4-byte sender host id (the
/// layout `infobus-net`'s frame module implements). Lives here, next to
/// the packet codec, so [`BusConfig::max_batch_payload`](crate::BusConfig::max_batch_payload)
/// and the framing layer cannot drift apart.
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 4;

/// Bytes a [`Packet::Data`] wrapper adds around its envelopes: the
/// packet tag, the retransmission flag, and the envelope count.
pub const DATA_PACKET_OVERHEAD: usize = 1 + 1 + 4;

const PK_DATA: u8 = 1;
const PK_NAK: u8 = 2;
const PK_GAPSKIP: u8 = 3;
const PK_ACK: u8 = 4;
const PK_SUB: u8 = 5;
const PK_RESYNC: u8 = 6;
const PK_SEQSYNC: u8 = 7;

fn put_stream(buf: &mut Vec<u8>, s: &StreamKey) {
    put_u32(buf, s.host);
    put_string(buf, &s.app);
    put_u64(buf, s.inc);
}

fn get_stream(buf: &mut &[u8]) -> Result<StreamKey, WireError> {
    Ok(StreamKey {
        host: get_u32(buf)?,
        app: Arc::from(get_string(buf)?),
        inc: get_u64(buf)?,
    })
}

impl Packet {
    /// Encodes the packet for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Packet::Data { envelopes, retrans } => {
                buf.push(PK_DATA);
                buf.push(u8::from(*retrans));
                put_u32(&mut buf, envelopes.len() as u32);
                for e in envelopes {
                    e.encode(&mut buf);
                }
            }
            Packet::Nak {
                stream,
                subject,
                requester,
                missing,
            } => {
                buf.push(PK_NAK);
                put_stream(&mut buf, stream);
                put_string(&mut buf, subject.as_str());
                put_u32(&mut buf, *requester);
                put_u32(&mut buf, missing.len() as u32);
                for m in missing {
                    put_u64(&mut buf, *m);
                }
            }
            Packet::GapSkip {
                stream,
                subject,
                through,
            } => {
                buf.push(PK_GAPSKIP);
                put_stream(&mut buf, stream);
                put_string(&mut buf, subject.as_str());
                put_u64(&mut buf, *through);
            }
            Packet::Ack {
                stream,
                subject,
                seq,
                from_host,
            } => {
                buf.push(PK_ACK);
                put_stream(&mut buf, stream);
                put_string(&mut buf, subject.as_str());
                put_u64(&mut buf, *seq);
                put_u32(&mut buf, *from_host);
            }
            Packet::SubAnnounce {
                host,
                full,
                add,
                remove,
            } => {
                buf.push(PK_SUB);
                put_u32(&mut buf, *host);
                buf.push(u8::from(*full));
                put_u32(&mut buf, add.len() as u32);
                for e in add {
                    put_string(&mut buf, &e.filter);
                    put_bytes(&mut buf, &e.pred);
                }
                put_u32(&mut buf, remove.len() as u32);
                for f in remove {
                    put_string(&mut buf, f);
                }
            }
            Packet::SubResync { host } => {
                buf.push(PK_RESYNC);
                put_u32(&mut buf, *host);
            }
            Packet::SeqSync { entries } => {
                buf.push(PK_SEQSYNC);
                put_u32(&mut buf, entries.len() as u32);
                for e in entries {
                    put_stream(&mut buf, &e.stream);
                    put_string(&mut buf, e.subject.as_str());
                    put_u64(&mut buf, e.top_seq);
                    put_u64(&mut buf, e.stream_start);
                }
            }
        }
        buf
    }

    /// Decodes a packet from the wire, interning subject fields into
    /// `table` (ids are per-daemon; the wire carries only text).
    pub fn decode(mut buf: &[u8], table: &SubjectTable) -> Result<Packet, WireError> {
        let buf = &mut buf;
        let kind = get_u8(buf)?;
        Ok(match kind {
            PK_DATA => {
                let retrans = get_u8(buf)? != 0;
                let n = get_u32(buf)? as usize;
                if n > 65_536 {
                    return Err(WireError::BadLength(n as u64));
                }
                let mut envelopes = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    envelopes.push(Envelope::decode(buf, table)?);
                }
                Packet::Data { envelopes, retrans }
            }
            PK_NAK => {
                let stream = get_stream(buf)?;
                let subject = intern_wire_subject(table, &get_string(buf)?)?;
                let requester = get_u32(buf)?;
                let n = get_u32(buf)? as usize;
                if n > 65_536 {
                    return Err(WireError::BadLength(n as u64));
                }
                let mut missing = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    missing.push(get_u64(buf)?);
                }
                Packet::Nak {
                    stream,
                    subject,
                    requester,
                    missing,
                }
            }
            PK_GAPSKIP => {
                let stream = get_stream(buf)?;
                let subject = intern_wire_subject(table, &get_string(buf)?)?;
                Packet::GapSkip {
                    stream,
                    subject,
                    through: get_u64(buf)?,
                }
            }
            PK_ACK => {
                let stream = get_stream(buf)?;
                let subject = intern_wire_subject(table, &get_string(buf)?)?;
                Packet::Ack {
                    stream,
                    subject,
                    seq: get_u64(buf)?,
                    from_host: get_u32(buf)?,
                }
            }
            PK_SUB => {
                let host = get_u32(buf)?;
                let full = get_u8(buf)? != 0;
                let na = get_u32(buf)? as usize;
                if na > 65_536 {
                    return Err(WireError::BadLength(na as u64));
                }
                let mut add = Vec::with_capacity(na.min(1024));
                for _ in 0..na {
                    let filter = get_string(buf)?;
                    let pred = get_byte_vec(buf)?;
                    add.push(AnnounceEntry { filter, pred });
                }
                let nr = get_u32(buf)? as usize;
                if nr > 65_536 {
                    return Err(WireError::BadLength(nr as u64));
                }
                let mut remove = Vec::with_capacity(nr.min(1024));
                for _ in 0..nr {
                    remove.push(get_string(buf)?);
                }
                Packet::SubAnnounce {
                    host,
                    full,
                    add,
                    remove,
                }
            }
            PK_RESYNC => Packet::SubResync {
                host: get_u32(buf)?,
            },
            PK_SEQSYNC => {
                let n = get_u32(buf)? as usize;
                if n > 65_536 {
                    return Err(WireError::BadLength(n as u64));
                }
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let stream = get_stream(buf)?;
                    let subject = intern_wire_subject(table, &get_string(buf)?)?;
                    entries.push(SyncEntry {
                        stream,
                        subject,
                        top_seq: get_u64(buf)?,
                        stream_start: get_u64(buf)?,
                    });
                }
                Packet::SeqSync { entries }
            }
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// A message on an information-router link between two buses.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RouterMsg {
    /// Link setup: identifies the connection as a router link (not RMI).
    Hello { host: u32 },
    /// The sending side's subscription summary: an aggregated,
    /// budget-bounded over-approximation of its bus's local and
    /// broadcast-learned filters, plus those of its *other* links
    /// (split-horizon aggregation). Soft state — re-sent periodically,
    /// replaced wholesale on receipt. `preds` parallels `filters`: the
    /// encoded content predicate announced for that exact filter on the
    /// sending bus, or empty when the filter is unfiltered *or* was
    /// produced by prefix aggregation (aggregation drops predicates —
    /// widening is always safe; exact filtering re-runs at the remote
    /// delivery gate). An empty `preds` vector means "no predicate
    /// info" and is equivalent to all-empty.
    Summary {
        seq: u64,
        filters: Vec<String>,
        preds: Vec<Vec<u8>>,
    },
    /// A forwarded publication.
    Forward { env: Envelope },
    /// "Re-send your summary now" — sent after route aging or a
    /// stabilization repair flushed the stored copy.
    SummaryReq,
}

const RT_HELLO: u8 = 10;
const RT_SUMMARY: u8 = 11;
const RT_FORWARD: u8 = 12;
const RT_SUMMARY_REQ: u8 = 13;

impl RouterMsg {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            RouterMsg::Hello { host } => {
                buf.push(RT_HELLO);
                put_u32(&mut buf, *host);
            }
            RouterMsg::Summary {
                seq,
                filters,
                preds,
            } => {
                buf.push(RT_SUMMARY);
                put_u64(&mut buf, *seq);
                put_u32(&mut buf, filters.len() as u32);
                for (i, f) in filters.iter().enumerate() {
                    put_string(&mut buf, f);
                    put_bytes(&mut buf, preds.get(i).map_or(&[][..], |p| p));
                }
            }
            RouterMsg::Forward { env } => {
                buf.push(RT_FORWARD);
                env.encode(&mut buf);
            }
            RouterMsg::SummaryReq => buf.push(RT_SUMMARY_REQ),
        }
        buf
    }

    /// Decodes a router message; returns `Ok(None)` if the buffer is an
    /// RMI message instead (the two share the connection port space).
    pub fn decode(mut buf: &[u8], table: &SubjectTable) -> Result<Option<RouterMsg>, WireError> {
        let buf = &mut buf;
        Ok(match get_u8(buf)? {
            RT_HELLO => Some(RouterMsg::Hello {
                host: get_u32(buf)?,
            }),
            RT_SUMMARY => {
                let seq = get_u64(buf)?;
                let n = get_u32(buf)? as usize;
                if n > 65_536 {
                    return Err(WireError::BadLength(n as u64));
                }
                let mut filters = Vec::with_capacity(n.min(1024));
                let mut preds = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    filters.push(get_string(buf)?);
                    preds.push(get_byte_vec(buf)?);
                }
                Some(RouterMsg::Summary {
                    seq,
                    filters,
                    preds,
                })
            }
            RT_FORWARD => Some(RouterMsg::Forward {
                env: Envelope::decode(buf, table)?,
            }),
            RT_SUMMARY_REQ => Some(RouterMsg::SummaryReq),
            _ => None,
        })
    }
}

/// A message on an RMI point-to-point connection.
///
/// Arguments and results are *self-describing* marshalled values (see
/// [`infobus_types::wire::marshal_self_describing`]): type descriptors
/// travel with the call, so a server can receive instances of types it
/// has never seen — the same property publications have.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RmiMsg {
    /// Client request: invoke `op` on the service bound to `service`.
    Request {
        /// Unique id: (client host, client app, call number). Retries use
        /// the same id so servers can deduplicate.
        call: (u32, String, u64),
        service: String,
        op: String,
        /// Self-describing marshalled argument values.
        args: Vec<Vec<u8>>,
    },
    /// Server reply; `value` is a self-describing marshalled value.
    Reply {
        call: (u32, String, u64),
        ok: bool,
        value: Vec<u8>,
        error: String,
    },
}

const RM_REQUEST: u8 = 1;
const RM_REPLY: u8 = 2;

impl RmiMsg {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            RmiMsg::Request {
                call,
                service,
                op,
                args,
            } => {
                buf.push(RM_REQUEST);
                put_u32(&mut buf, call.0);
                put_string(&mut buf, &call.1);
                put_u64(&mut buf, call.2);
                put_string(&mut buf, service);
                put_string(&mut buf, op);
                put_u32(&mut buf, args.len() as u32);
                for a in args {
                    put_bytes(&mut buf, a);
                }
            }
            RmiMsg::Reply {
                call,
                ok,
                value,
                error,
            } => {
                buf.push(RM_REPLY);
                put_u32(&mut buf, call.0);
                put_string(&mut buf, &call.1);
                put_u64(&mut buf, call.2);
                buf.push(u8::from(*ok));
                put_bytes(&mut buf, value);
                put_string(&mut buf, error);
            }
        }
        buf
    }

    pub fn decode(mut buf: &[u8]) -> Result<RmiMsg, WireError> {
        let buf = &mut buf;
        Ok(match get_u8(buf)? {
            RM_REQUEST => {
                let call = (get_u32(buf)?, get_string(buf)?, get_u64(buf)?);
                let service = get_string(buf)?;
                let op = get_string(buf)?;
                let n = get_u32(buf)? as usize;
                if n > 4_096 {
                    return Err(WireError::BadLength(n as u64));
                }
                let mut args = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    args.push(get_byte_vec(buf)?);
                }
                RmiMsg::Request {
                    call,
                    service,
                    op,
                    args,
                }
            }
            RM_REPLY => RmiMsg::Reply {
                call: (get_u32(buf)?, get_string(buf)?, get_u64(buf)?),
                ok: get_u8(buf)? != 0,
                value: get_byte_vec(buf)?,
                error: get_string(buf)?,
            },
            other => return Err(WireError::BadTag(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buf::Bytes;
    use crate::{EnvelopeKind, QoS};

    fn table() -> SubjectTable {
        SubjectTable::new()
    }

    fn subj(text: &str) -> InternedSubject {
        table().intern(text).unwrap()
    }

    fn env(seq: u64) -> Envelope {
        Envelope {
            stream: StreamKey {
                host: 1,
                app: "a".into(),
                inc: 1,
            },
            seq,
            stream_start: 5,
            subject: subj("x.y"),
            qos: QoS::Reliable,
            kind: EnvelopeKind::Data,
            corr: 0,
            redelivery: false,
            route: None,
            payload: Bytes::from_vec(vec![9; 10]),
        }
    }

    #[test]
    fn packets_round_trip() {
        let stream = StreamKey {
            host: 2,
            app: "pub".into(),
            inc: 3,
        };
        let cases = vec![
            Packet::Data {
                envelopes: vec![env(1), env(2)],
                retrans: false,
            },
            Packet::Data {
                envelopes: vec![],
                retrans: true,
            },
            Packet::Nak {
                stream: stream.clone(),
                subject: subj("a.b"),
                requester: 9,
                missing: vec![4, 5, 6],
            },
            Packet::GapSkip {
                stream: stream.clone(),
                subject: subj("a.b"),
                through: 17,
            },
            Packet::Ack {
                stream,
                subject: subj("a.b"),
                seq: 8,
                from_host: 4,
            },
            Packet::SubAnnounce {
                host: 5,
                full: true,
                add: vec![
                    AnnounceEntry::plain("news.>"),
                    AnnounceEntry::filtered(
                        "fab5.*.x",
                        crate::engine::filter::Predicate::gt(
                            "price",
                            infobus_types::Value::F64(10.0),
                        )
                        .encode(),
                    ),
                ],
                remove: vec!["old.sub".into()],
            },
            Packet::SubResync { host: 1 },
            Packet::SeqSync {
                entries: vec![SyncEntry {
                    stream: StreamKey {
                        host: 1,
                        app: "a".into(),
                        inc: 1,
                    },
                    subject: subj("x.y"),
                    top_seq: 9,
                    stream_start: 5,
                }],
            },
        ];
        let t = table();
        for p in cases {
            let buf = p.encode();
            assert_eq!(Packet::decode(&buf, &t).unwrap(), p, "{p:?}");
        }
    }

    #[test]
    fn rmi_msgs_round_trip() {
        use infobus_types::{wire, Value};
        let req = RmiMsg::Request {
            call: (1, "client".into(), 42),
            service: "svc.quotes".into(),
            op: "lookup".into(),
            args: vec![
                wire::marshal_value(&Value::str("GMC")),
                wire::marshal_value(&Value::I64(3)),
            ],
        };
        let rep = RmiMsg::Reply {
            call: (1, "client".into(), 42),
            ok: true,
            value: wire::marshal_value(&Value::F64(54.25)),
            error: String::new(),
        };
        for m in [req, rep] {
            let buf = m.encode();
            assert_eq!(RmiMsg::decode(&buf).unwrap(), m);
        }
    }

    #[test]
    fn router_msgs_round_trip() {
        let cases = vec![
            RouterMsg::Hello { host: 3 },
            RouterMsg::Summary {
                seq: 7,
                filters: vec!["news.>".into(), "fab5.*".into()],
                preds: vec![
                    Vec::new(),
                    crate::engine::filter::Predicate::eq("sym", infobus_types::Value::str("IBM"))
                        .encode(),
                ],
            },
            RouterMsg::Forward { env: env(5) },
            RouterMsg::SummaryReq,
        ];
        let t = table();
        for m in cases {
            let buf = m.encode();
            assert_eq!(RouterMsg::decode(&buf, &t).unwrap(), Some(m));
        }
        // RMI tags are not router messages.
        let rmi = RmiMsg::Reply {
            call: (0, "c".into(), 1),
            ok: true,
            value: Vec::new(),
            error: String::new(),
        };
        assert_eq!(RouterMsg::decode(&rmi.encode(), &table()).unwrap(), None);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Packet::decode(&[], &table()).is_err());
        assert!(Packet::decode(&[99, 0, 0], &table()).is_err());
        assert!(RmiMsg::decode(&[7]).is_err());
    }
}
