//! The per-host bus daemon.
//!
//! "In our implementation of subject-based addressing, we use a daemon on
//! every host. Each application registers with its local daemon, and tells
//! the daemon to which subjects it has subscribed. The daemon forwards
//! each message to each application that has subscribed. It uses the
//! subject contained in the message to decide which application receives
//! which message." (§3.1)

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::rc::Rc;

use infobus_netsim::{ConnEvent, ConnId, Ctx, Datagram, Micros, Process, SegmentId, SockAddr};
use infobus_subject::{Subject, SubjectFilter, SubjectTrie, SubscriptionId};
use infobus_types::{wire, DataObject, TypeDescriptor, TypeRegistry, Value, ValueType};

use crate::app::{BusApp, BusCtx, BusMessage, DiscoveryReply};
use crate::config::BusConfig;
use crate::envelope::{Envelope, EnvelopeKind, StreamKey};
use crate::msg::{Packet, RmiMsg, RouterMsg, SyncEntry};
use crate::rmi::{CallId, Offer, RetryMode, RmiError, SelectionPolicy, ServiceObject};
use crate::router::RewriteRule;
use crate::{BusError, QoS};

/// Datagram port used by bus daemons (broadcast and unicast).
pub const DAEMON_PORT: u16 = 75;

/// Connection port used for RMI point-to-point requests.
pub const RMI_PORT: u16 = 76;

/// Reserved timer tokens.
const TOK_BATCH: u64 = 1;
const TOK_NAK_CHECK: u64 = 2;
const TOK_GD_RETRY: u64 = 3;
const TOK_ANNOUNCE: u64 = 4;
const TOK_SYNC: u64 = 5;
const TOK_ANN_FLUSH: u64 = 6;
const TOK_STATS: u64 = 7;
/// Dynamic timer tokens start here.
const TOK_DYN: u64 = 10;

/// Reserved subject prefix of the observability plane: every daemon with
/// [`BusConfig::stats_period_us`] set publishes its [`BusStats`] snapshot
/// on `_INBUS.STATS.<host>.<daemon>`. Subscribe to `_INBUS.STATS.>` to
/// watch the whole bus.
pub const STATS_SUBJECT_PREFIX: &str = "_INBUS.STATS";

/// The publisher slot used for daemon-originated publications (stats
/// snapshots): not a real application index.
const APP_STATS: usize = usize::MAX - 1;

/// Cap on queued app deliveries drained per network event (guards against
/// publish loops between co-located applications).
const DRAIN_CAP: usize = 10_000;

/// Cap on per-service RMI deduplication entries.
const DEDUP_CAP: usize = 1024;

/// A small fixed-bucket histogram of RMI call latencies (request issue
/// to reply delivery, in microseconds).
///
/// Bucket upper bounds are [`RmiLatency::BOUNDS_US`]; the final bucket is
/// unbounded. The histogram also tracks count and sum, so the mean
/// survives the trip through a stats snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RmiLatency {
    buckets: [u64; 8],
    count: u64,
    sum_us: u64,
}

impl RmiLatency {
    /// Upper bounds (inclusive, µs) of the first seven buckets; the
    /// eighth bucket collects everything slower.
    pub const BOUNDS_US: [u64; 7] = [1_000, 2_000, 5_000, 10_000, 50_000, 200_000, 1_000_000];

    /// Records one completed call's latency.
    pub fn record(&mut self, us: Micros) {
        let idx = Self::BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(Self::BOUNDS_US.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us += us;
    }

    /// Per-bucket counts (aligned with [`RmiLatency::BOUNDS_US`] plus the
    /// overflow bucket).
    pub fn buckets(&self) -> &[u64; 8] {
        &self.buckets
    }

    /// Number of recorded calls.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean recorded latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// Counters exposed by a daemon (used by tests and the bench harness).
///
/// A snapshot converts to a self-describing [`DataObject`] with
/// [`BusStats::to_object`]; daemons with
/// [`BusConfig::stats_period_us`] set publish that object periodically on
/// `_INBUS.STATS.<host>.<daemon>` (see [`STATS_SUBJECT_PREFIX`]).
#[derive(Debug, Clone, Default)]
pub struct BusStats {
    /// Envelopes published by local applications.
    pub published: u64,
    /// Payload bytes published by local applications.
    pub published_bytes: u64,
    /// Messages delivered to local applications.
    pub delivered: u64,
    /// Payload bytes delivered to local applications.
    pub delivered_bytes: u64,
    /// Broadcast envelopes ignored because nothing local matched.
    pub filtered: u64,
    /// NAKs sent (gaps detected).
    pub naks_sent: u64,
    /// NAK packets received and answered as a publisher.
    pub naks_served: u64,
    /// Envelopes retransmitted in answer to NAKs.
    pub retransmitted: u64,
    /// Gap-skips issued (history no longer retained).
    pub gapskips_sent: u64,
    /// Sequences abandoned after a gap-skip (at-most-once path).
    pub gaps_skipped: u64,
    /// Duplicate envelopes dropped.
    pub dups_dropped: u64,
    /// Acks sent for guaranteed envelopes.
    pub acks_sent: u64,
    /// Acks received for guaranteed envelopes we published.
    pub gd_acks_received: u64,
    /// Guaranteed envelopes currently pending acknowledgment.
    pub gd_pending: u64,
    /// Guaranteed envelopes fully acknowledged and released.
    pub gd_completed: u64,
    /// Guaranteed retransmission rounds performed.
    pub gd_retries: u64,
    /// Envelopes whose payload failed to unmarshal.
    pub unmarshal_errors: u64,
    /// Batches flushed to the wire.
    pub batch_flushes: u64,
    /// Envelopes carried by those batches (mean occupancy =
    /// [`BusStats::mean_batch_occupancy`]).
    pub batch_envelopes: u64,
    /// Discovery rounds started by local applications.
    pub discovery_rounds: u64,
    /// RMI calls issued by local applications.
    pub rmi_calls: u64,
    /// RMI requests served.
    pub rmi_served: u64,
    /// RMI duplicate requests answered from the dedup cache.
    pub rmi_deduped: u64,
    /// Latency histogram of completed RMI calls.
    pub rmi_latency: RmiLatency,
    /// Envelopes forwarded over information-router links.
    pub router_forwarded: u64,
    /// Stats snapshots published on the observability plane.
    pub stats_published: u64,
}

/// Attribute names of the `"BusStats"` descriptor, in declaration order.
/// One source of truth for registration, `to_object`, and `from_object`.
const STATS_COUNTERS: &[&str] = &[
    "published",
    "published_bytes",
    "delivered",
    "delivered_bytes",
    "filtered",
    "naks_sent",
    "naks_served",
    "retransmitted",
    "gapskips_sent",
    "gaps_skipped",
    "dups_dropped",
    "acks_sent",
    "gd_acks_received",
    "gd_pending",
    "gd_completed",
    "gd_retries",
    "unmarshal_errors",
    "batch_flushes",
    "batch_envelopes",
    "discovery_rounds",
    "rmi_calls",
    "rmi_served",
    "rmi_deduped",
    "router_forwarded",
    "stats_published",
];

impl BusStats {
    /// Mean envelopes per flushed batch (0 when batching never flushed).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batch_flushes == 0 {
            0.0
        } else {
            self.batch_envelopes as f64 / self.batch_flushes as f64
        }
    }

    fn counter(&self, name: &str) -> u64 {
        match name {
            "published" => self.published,
            "published_bytes" => self.published_bytes,
            "delivered" => self.delivered,
            "delivered_bytes" => self.delivered_bytes,
            "filtered" => self.filtered,
            "naks_sent" => self.naks_sent,
            "naks_served" => self.naks_served,
            "retransmitted" => self.retransmitted,
            "gapskips_sent" => self.gapskips_sent,
            "gaps_skipped" => self.gaps_skipped,
            "dups_dropped" => self.dups_dropped,
            "acks_sent" => self.acks_sent,
            "gd_acks_received" => self.gd_acks_received,
            "gd_pending" => self.gd_pending,
            "gd_completed" => self.gd_completed,
            "gd_retries" => self.gd_retries,
            "unmarshal_errors" => self.unmarshal_errors,
            "batch_flushes" => self.batch_flushes,
            "batch_envelopes" => self.batch_envelopes,
            "discovery_rounds" => self.discovery_rounds,
            "rmi_calls" => self.rmi_calls,
            "rmi_served" => self.rmi_served,
            "rmi_deduped" => self.rmi_deduped,
            "router_forwarded" => self.router_forwarded,
            "stats_published" => self.stats_published,
            _ => 0,
        }
    }

    fn counter_mut(&mut self, name: &str) -> Option<&mut u64> {
        Some(match name {
            "published" => &mut self.published,
            "published_bytes" => &mut self.published_bytes,
            "delivered" => &mut self.delivered,
            "delivered_bytes" => &mut self.delivered_bytes,
            "filtered" => &mut self.filtered,
            "naks_sent" => &mut self.naks_sent,
            "naks_served" => &mut self.naks_served,
            "retransmitted" => &mut self.retransmitted,
            "gapskips_sent" => &mut self.gapskips_sent,
            "gaps_skipped" => &mut self.gaps_skipped,
            "dups_dropped" => &mut self.dups_dropped,
            "acks_sent" => &mut self.acks_sent,
            "gd_acks_received" => &mut self.gd_acks_received,
            "gd_pending" => &mut self.gd_pending,
            "gd_completed" => &mut self.gd_completed,
            "gd_retries" => &mut self.gd_retries,
            "unmarshal_errors" => &mut self.unmarshal_errors,
            "batch_flushes" => &mut self.batch_flushes,
            "batch_envelopes" => &mut self.batch_envelopes,
            "discovery_rounds" => &mut self.discovery_rounds,
            "rmi_calls" => &mut self.rmi_calls,
            "rmi_served" => &mut self.rmi_served,
            "rmi_deduped" => &mut self.rmi_deduped,
            "router_forwarded" => &mut self.router_forwarded,
            "stats_published" => &mut self.stats_published,
            _ => return None,
        })
    }

    /// Registers the `"BusStats"` type descriptor (idempotent). Every
    /// daemon does this at start-up, so published snapshots travel
    /// self-describing and validate at any receiver.
    pub fn register_type(reg: &mut TypeRegistry) {
        if reg.contains("BusStats") {
            return;
        }
        let mut b = TypeDescriptor::builder("BusStats")
            .attribute("host", ValueType::Str)
            .attribute("daemon", ValueType::Str)
            .attribute("at_us", ValueType::I64);
        for name in STATS_COUNTERS {
            b = b.attribute(*name, ValueType::I64);
        }
        let b = b
            .attribute("rmi_latency_buckets", ValueType::list_of(ValueType::I64))
            .attribute("rmi_latency_count", ValueType::I64)
            .attribute("rmi_latency_sum_us", ValueType::I64);
        reg.register(b.build())
            .expect("BusStats descriptor is well-formed");
    }

    /// Converts the snapshot into a self-describing `"BusStats"` object
    /// stamped with the daemon's identity and the snapshot time.
    pub fn to_object(&self, host: &str, daemon: &str, at_us: Micros) -> DataObject {
        let mut obj = DataObject::new("BusStats")
            .with("host", host)
            .with("daemon", daemon)
            .with("at_us", at_us as i64);
        for name in STATS_COUNTERS {
            obj.set(*name, self.counter(name) as i64);
        }
        obj.set(
            "rmi_latency_buckets",
            Value::List(
                self.rmi_latency
                    .buckets
                    .iter()
                    .map(|&c| Value::I64(c as i64))
                    .collect(),
            ),
        );
        obj.set("rmi_latency_count", self.rmi_latency.count as i64);
        obj.set("rmi_latency_sum_us", self.rmi_latency.sum_us as i64);
        obj
    }

    /// Reconstructs a snapshot from a `"BusStats"` object (the inverse of
    /// [`BusStats::to_object`]); `None` if the object is not one.
    pub fn from_object(obj: &DataObject) -> Option<BusStats> {
        if obj.type_name() != "BusStats" {
            return None;
        }
        let mut stats = BusStats::default();
        for name in STATS_COUNTERS {
            let v = obj.get(name)?.as_i64()?;
            *stats.counter_mut(name)? = v as u64;
        }
        if let Some(items) = obj.get("rmi_latency_buckets").and_then(Value::as_list) {
            for (slot, v) in stats.rmi_latency.buckets.iter_mut().zip(items) {
                *slot = v.as_i64()? as u64;
            }
        }
        stats.rmi_latency.count = obj.get("rmi_latency_count")?.as_i64()? as u64;
        stats.rmi_latency.sum_us = obj.get("rmi_latency_sum_us")?.as_i64()? as u64;
        Some(stats)
    }
}

// ---------------------------------------------------------------------------
// Internal tables
// ---------------------------------------------------------------------------

/// What a trie entry routes to.
#[derive(Debug, Clone)]
enum SubTarget {
    /// A data subscription of a local application.
    App { app_idx: usize },
    /// A discovery responder ("I am") with its announced info.
    Responder { app_idx: usize, info: Value },
    /// A locally exported service (answers RMI queries on the subject).
    Service { svc_idx: usize },
    /// A transient control subscription for a pending discovery or RMI
    /// call (lets offer/announce envelopes through the interest filter).
    Control,
}

struct OutStream {
    inc: u64,
    next_seq: u64,
    /// Sequences retransmitted recently (suppresses duplicate repairs
    /// when several receivers NAK the same loss): seq → time sent.
    recent_retrans: HashMap<u64, Micros>,
    /// Virtual time of the stream's first publication.
    started: Micros,
    /// Virtual time of the most recent publication.
    last_pub_at: Micros,
    /// Idle-digest rounds remaining (reset on every publication).
    digests_left: u32,
    retain: VecDeque<Envelope>,
}

struct InStream {
    expected: u64,
    /// Highest sequence number known to exist (seen or digested).
    known_top: u64,
    holdback: BTreeMap<u64, Envelope>,
    /// When the current gap was first observed (None = no gap).
    gap_since: Option<Micros>,
}

struct GdEntry {
    env: Envelope,
    acked: HashSet<u32>,
    /// A co-resident subscriber received it (local delivery counts as
    /// acknowledgment).
    local_done: bool,
    /// Retry rounds already performed.
    rounds: u32,
}

struct DiscoveryState {
    app_idx: usize,
    token: u64,
    replies: Vec<DiscoveryReply>,
    temp_sub: SubscriptionId,
}

enum CallPhase {
    Discover,
    Connecting { conn: ConnId },
    Done,
}

struct CallState {
    app_idx: usize,
    subject: Subject,
    op: String,
    args: Vec<Value>,
    policy: SelectionPolicy,
    retry: RetryMode,
    /// Virtual time the call was issued (feeds the latency histogram).
    started: Micros,
    attempts: u32,
    offers: Vec<Offer>,
    tried: HashSet<u32>,
    rediscovered: bool,
    phase: CallPhase,
    temp_sub: Option<SubscriptionId>,
    timeout_timer: Option<u64>,
}

struct SvcMeta {
    subject: String,
    app_idx: usize,
    outstanding: i64,
    dedup: HashMap<(u32, String, u64), Vec<u8>>,
    dedup_order: VecDeque<(u32, String, u64)>,
}

struct AppMeta {
    name: String,
    inc: u64,
    subs: Vec<SubscriptionId>,
}

/// One information-router link to a peer bus.
struct RouterLink {
    /// Peer daemon's host (kept for tracing/diagnostics).
    #[allow(dead_code)]
    peer_host: u32,
    /// The remote bus's aggregate subscription set (what to forward).
    subs: Vec<SubjectFilter>,
    /// Subject rewriting applied to publications we forward out.
    rewrite: Option<RewriteRule>,
}

enum TimerTarget {
    App { app_idx: usize, token: u64 },
    DiscoveryClose { corr: u64 },
    OfferWindowClose { call: u64 },
    RmiTimeout { call: u64 },
}

/// Work queued for delivery to applications or services.
enum AppEvent {
    Start {
        app_idx: usize,
    },
    Msg {
        app_idx: usize,
        msg: BusMessage,
    },
    Timer {
        app_idx: usize,
        token: u64,
    },
    Discovery {
        app_idx: usize,
        token: u64,
        replies: Vec<DiscoveryReply>,
    },
    RmiReply {
        app_idx: usize,
        call: CallId,
        result: Result<Value, RmiError>,
    },
    SvcInvoke {
        svc_idx: usize,
        conn: ConnId,
        call: (u32, String, u64),
        op: String,
        args: Vec<Vec<u8>>,
    },
}

// ---------------------------------------------------------------------------
// DaemonState: everything except the application/service boxes
// ---------------------------------------------------------------------------

pub(crate) struct DaemonState {
    cfg: BusConfig,
    host32: u32,
    seg0: Option<SegmentId>,
    registry: Rc<RefCell<TypeRegistry>>,
    trie: SubjectTrie<SubTarget>,
    app_meta: Vec<Option<AppMeta>>,
    /// Aggregated filter strings announced to peers (refcounted).
    my_filters: HashMap<String, u32>,
    /// Filters whose announcement is pending the debounce flush (batching
    /// thousands of subscriptions into one packet).
    pending_announce_add: Vec<String>,
    pending_announce_remove: Vec<String>,
    announce_flush_armed: bool,
    /// Virtual time each live subscription was created (first-contact
    /// stream policy).
    sub_times: HashMap<SubscriptionId, Micros>,
    peer_subs: HashMap<u32, HashMap<String, SubjectFilter>>,
    out_streams: HashMap<(String, String), OutStream>,
    in_streams: HashMap<(StreamKey, String), InStream>,
    batch: Vec<Envelope>,
    batch_payload: usize,
    batch_timer_armed: bool,
    pending_gd: BTreeMap<(String, String, u64), GdEntry>,
    gd_timer_armed: bool,
    discoveries: HashMap<u64, DiscoveryState>,
    calls: HashMap<u64, CallState>,
    conn_calls: HashMap<ConnId, u64>,
    services: HashMap<String, usize>,
    svc_meta: Vec<Option<SvcMeta>>,
    server_conns: HashSet<ConnId>,
    router_links: HashMap<ConnId, RouterLink>,
    /// Link the currently re-published forwarded envelope arrived on
    /// (split horizon: never forward it back there).
    forward_horizon: Option<ConnId>,
    daemon_inc: u64,
    timer_targets: HashMap<u64, TimerTarget>,
    next_dyn_token: u64,
    next_corr: u64,
    pending: VecDeque<AppEvent>,
    /// Service boxes exported during a handler, moved into the daemon's
    /// table after it returns.
    pending_services: Vec<(usize, Box<dyn ServiceObject>)>,
    /// Service indices withdrawn during a handler.
    dropped_services: Vec<usize>,
    pub(crate) stats: BusStats,
}

impl DaemonState {
    fn new(cfg: BusConfig) -> Self {
        DaemonState {
            cfg,
            host32: 0,
            seg0: None,
            registry: Rc::new(RefCell::new(TypeRegistry::with_fundamentals())),
            trie: SubjectTrie::new(),
            app_meta: Vec::new(),
            my_filters: HashMap::new(),
            pending_announce_add: Vec::new(),
            pending_announce_remove: Vec::new(),
            announce_flush_armed: false,
            sub_times: HashMap::new(),
            peer_subs: HashMap::new(),
            out_streams: HashMap::new(),
            in_streams: HashMap::new(),
            batch: Vec::new(),
            batch_payload: 0,
            batch_timer_armed: false,
            pending_gd: BTreeMap::new(),
            gd_timer_armed: false,
            discoveries: HashMap::new(),
            calls: HashMap::new(),
            conn_calls: HashMap::new(),
            services: HashMap::new(),
            svc_meta: Vec::new(),
            server_conns: HashSet::new(),
            router_links: HashMap::new(),
            forward_horizon: None,
            daemon_inc: 1,
            timer_targets: HashMap::new(),
            next_dyn_token: TOK_DYN,
            next_corr: 1,
            pending: VecDeque::new(),
            pending_services: Vec::new(),
            dropped_services: Vec::new(),
            stats: BusStats::default(),
        }
    }

    pub(crate) fn registry(&self) -> Rc<RefCell<TypeRegistry>> {
        self.registry.clone()
    }

    pub(crate) fn app_name(&self, app_idx: usize) -> String {
        self.app_meta
            .get(app_idx)
            .and_then(|m| m.as_ref())
            .map(|m| m.name.clone())
            .unwrap_or_else(|| "?".to_owned())
    }

    fn dyn_timer(&mut self, net: &mut Ctx<'_>, delay: Micros, target: TimerTarget) -> u64 {
        let token = self.next_dyn_token;
        self.next_dyn_token += 1;
        self.timer_targets.insert(token, target);
        net.set_timer(delay, token);
        token
    }

    // ----- subscription management ------------------------------------------

    fn announce_add(&mut self, net: &mut Ctx<'_>, filter: &SubjectFilter) {
        let is_new = {
            let count = self
                .my_filters
                .entry(filter.as_str().to_owned())
                .or_insert(0);
            *count += 1;
            *count == 1
        };
        if is_new {
            self.pending_announce_add.push(filter.as_str().to_owned());
            self.arm_announce_flush(net);
        }
    }

    /// Debounces announcements: thousands of subscriptions made in one
    /// handler (Figure 8's 10,000-subject consumers) travel in one packet.
    fn arm_announce_flush(&mut self, net: &mut Ctx<'_>) {
        if !self.announce_flush_armed {
            self.announce_flush_armed = true;
            net.set_timer(5_000, TOK_ANN_FLUSH);
        }
    }

    pub(crate) fn flush_announcements(&mut self, net: &mut Ctx<'_>) {
        self.announce_flush_armed = false;
        if self.pending_announce_add.is_empty() && self.pending_announce_remove.is_empty() {
            return;
        }
        let add = std::mem::take(&mut self.pending_announce_add);
        let remove = std::mem::take(&mut self.pending_announce_remove);
        self.send_packet_broadcast(
            net,
            &Packet::SubAnnounce {
                host: self.host32,
                full: false,
                add,
                remove,
            },
        );
    }

    fn announce_remove(&mut self, net: &mut Ctx<'_>, filter: &SubjectFilter) {
        let now_zero = match self.my_filters.get_mut(filter.as_str()) {
            Some(count) => {
                *count -= 1;
                *count == 0
            }
            None => false,
        };
        if now_zero {
            self.my_filters.remove(filter.as_str());
            self.pending_announce_remove
                .push(filter.as_str().to_owned());
            self.arm_announce_flush(net);
        }
    }

    fn announce_full(&mut self, net: &mut Ctx<'_>) {
        let add: Vec<String> = self.my_filters.keys().cloned().collect();
        self.send_packet_broadcast(
            net,
            &Packet::SubAnnounce {
                host: self.host32,
                full: true,
                add,
                remove: vec![],
            },
        );
    }

    pub(crate) fn subscribe_app(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        filter: &SubjectFilter,
    ) -> SubscriptionId {
        let id = self.trie.insert(filter, SubTarget::App { app_idx });
        self.sub_times.insert(id, net.now());
        if let Some(Some(meta)) = self.app_meta.get_mut(app_idx) {
            meta.subs.push(id);
        }
        self.announce_add(net, filter);
        id
    }

    fn subscribe_internal(
        &mut self,
        net: &mut Ctx<'_>,
        filter: &SubjectFilter,
        target: SubTarget,
    ) -> SubscriptionId {
        let id = self.trie.insert(filter, target);
        self.sub_times.insert(id, net.now());
        self.announce_add(net, filter);
        id
    }

    pub(crate) fn unsubscribe(&mut self, net: &mut Ctx<'_>, id: SubscriptionId) {
        let mut filter: Option<SubjectFilter> = None;
        self.trie.for_each(|sid, f, _| {
            if sid == id {
                filter = Some(f.clone());
            }
        });
        if self.trie.remove(id).is_some() {
            self.sub_times.remove(&id);
            if let Some(f) = filter {
                self.announce_remove(net, &f);
            }
            for meta in self.app_meta.iter_mut().flatten() {
                meta.subs.retain(|s| *s != id);
            }
        }
    }

    pub(crate) fn known_subscriptions(&self) -> Vec<SubjectFilter> {
        let mut seen: HashSet<String> = HashSet::new();
        let mut out = Vec::new();
        for f in self.my_filters.keys() {
            if seen.insert(f.clone()) {
                if let Ok(filter) = SubjectFilter::new(f) {
                    out.push(filter);
                }
            }
        }
        for peers in self.peer_subs.values() {
            for (s, f) in peers {
                if seen.insert(s.clone()) {
                    out.push(f.clone());
                }
            }
        }
        out.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        out
    }

    // ----- packet transmission ------------------------------------------------

    fn send_packet_broadcast(&mut self, net: &mut Ctx<'_>, packet: &Packet) {
        let bytes = packet.encode();
        if let Some(seg) = self.seg0 {
            let _ = net.broadcast_on(seg, DAEMON_PORT, bytes);
        }
    }

    fn send_packet_unicast(&mut self, net: &mut Ctx<'_>, host: u32, packet: &Packet) {
        let bytes = packet.encode();
        let _ = net.send_datagram(
            SockAddr::new(infobus_netsim::HostId(host), DAEMON_PORT),
            bytes,
        );
    }

    // ----- publishing -----------------------------------------------------------

    pub(crate) fn publish(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        subject: &Subject,
        value: &Value,
        qos: QoS,
    ) -> Result<(), BusError> {
        let payload = wire::marshal_self_describing(value, &self.registry.borrow())
            .map_err(|e| BusError::Marshal(e.to_string()))?;
        self.publish_payload(net, app_idx, subject, qos, EnvelopeKind::Data, 0, payload)
    }

    #[allow(clippy::too_many_arguments)]
    fn publish_payload(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        subject: &Subject,
        qos: QoS,
        kind: EnvelopeKind,
        corr: u64,
        payload: Vec<u8>,
    ) -> Result<(), BusError> {
        let (app_name, inc) = match self.app_meta.get(app_idx).and_then(|m| m.as_ref()) {
            Some(m) => (m.name.clone(), m.inc),
            None if app_idx == APP_STATS => ("_daemon".to_owned(), self.daemon_inc),
            None => ("router".to_owned(), self.daemon_inc),
        };
        // Model the application→daemon IPC hop.
        let ipc = net.host_config().ipc_cost(payload.len());
        net.charge_cpu(ipc);
        let key = (app_name.clone(), subject.as_str().to_owned());
        let now = net.now();
        let sync_rounds = self.cfg.sync_rounds;
        let stream = self.out_streams.entry(key).or_insert(OutStream {
            inc,
            next_seq: 1,
            recent_retrans: HashMap::new(),
            started: now,
            last_pub_at: now,
            digests_left: sync_rounds,
            retain: VecDeque::new(),
        });
        stream.last_pub_at = now;
        stream.digests_left = sync_rounds;
        let env = Envelope {
            stream: StreamKey {
                host: self.host32,
                app: app_name,
                inc: stream.inc,
            },
            seq: stream.next_seq,
            stream_start: stream.started,
            subject: subject.as_str().to_owned(),
            qos,
            kind,
            corr,
            redelivery: false,
            payload,
        };
        stream.next_seq += 1;
        stream.retain.push_back(env.clone());
        let retain_cap = self.cfg.retain_per_stream;
        while stream.retain.len() > retain_cap {
            stream.retain.pop_front();
        }
        self.stats.published += 1;
        self.stats.published_bytes += env.payload.len() as u64;

        if qos == QoS::Guaranteed {
            self.gd_persist(net, &env);
        }

        // Local delivery to co-resident subscribers (excluding the
        // publishing application itself). Control envelopes route to the
        // local protocol handlers too: a service or responder on the
        // *same* host as the querier must answer just like a remote one.
        match kind {
            EnvelopeKind::Data => {
                let delivered = self.deliver_local(net, &env, Some(app_idx));
                if qos == QoS::Guaranteed && delivered > 0 {
                    if let Some(entry) = self.pending_gd.get_mut(&Self::gd_key(&env)) {
                        entry.local_done = true;
                    }
                }
            }
            EnvelopeKind::DiscoverQuery => self.answer_discovery(net, &env),
            EnvelopeKind::DiscoverAnnounce => self.collect_discovery(&env),
            EnvelopeKind::RmiQuery => self.answer_rmi_query(net, &env),
            EnvelopeKind::RmiOffer => self.collect_offer(net, &env),
        }

        // Queue or send.
        if self.cfg.batch_enabled {
            self.batch_payload += env.wire_size();
            self.batch.push(env.clone());
            if self.batch_payload >= self.cfg.batch_bytes {
                self.flush_batch(net);
            } else if !self.batch_timer_armed {
                self.batch_timer_armed = true;
                net.set_timer(self.cfg.batch_delay_us, TOK_BATCH);
            }
        } else {
            let packet = Packet::Data {
                envelopes: vec![env.clone()],
                retrans: false,
            };
            self.send_packet_broadcast(net, &packet);
        }
        // Forward locally published traffic to linked buses whose remote
        // side subscribes (split horizon for re-published forwards).
        let horizon = self.forward_horizon;
        self.maybe_forward(net, &env, horizon);
        Ok(())
    }

    fn flush_batch(&mut self, net: &mut Ctx<'_>) {
        if self.batch.is_empty() {
            return;
        }
        let envelopes = std::mem::take(&mut self.batch);
        self.batch_payload = 0;
        self.stats.batch_flushes += 1;
        self.stats.batch_envelopes += envelopes.len() as u64;
        self.send_packet_broadcast(
            net,
            &Packet::Data {
                envelopes,
                retrans: false,
            },
        );
    }

    // ----- guaranteed delivery ----------------------------------------------------

    fn gd_key(env: &Envelope) -> (String, String, u64) {
        (env.stream.app.clone(), env.subject.clone(), env.seq)
    }

    fn gd_nv_key(env: &Envelope) -> String {
        format!("gd/{}/{}/{:016x}", env.stream.app, env.subject, env.seq)
    }

    fn gd_persist(&mut self, net: &mut Ctx<'_>, env: &Envelope) {
        // Log to non-volatile storage *before* the message is sent.
        let mut bytes = Vec::new();
        env.encode(&mut bytes);
        net.nv_put(&Self::gd_nv_key(env), bytes);
        self.pending_gd.insert(
            Self::gd_key(env),
            GdEntry {
                env: env.clone(),
                acked: HashSet::new(),
                local_done: false,
                rounds: 0,
            },
        );
        self.stats.gd_pending = self.pending_gd.len() as u64;
        if !self.gd_timer_armed {
            self.gd_timer_armed = true;
            net.set_timer(self.cfg.gd_retry_us, TOK_GD_RETRY);
        }
    }

    fn gd_load_ledger(&mut self, net: &mut Ctx<'_>) {
        for key in net.nv_keys("gd/") {
            if let Some(bytes) = net.nv_get(&key) {
                if let Ok(mut env) = Envelope::decode(&mut bytes.as_slice()) {
                    env.redelivery = true;
                    self.pending_gd.insert(
                        Self::gd_key(&env),
                        GdEntry {
                            env,
                            acked: HashSet::new(),
                            local_done: false,
                            rounds: 0,
                        },
                    );
                }
            }
        }
        self.stats.gd_pending = self.pending_gd.len() as u64;
        if !self.pending_gd.is_empty() && !self.gd_timer_armed {
            self.gd_timer_armed = true;
            net.set_timer(self.cfg.gd_retry_us, TOK_GD_RETRY);
        }
    }

    fn gd_retry_round(&mut self, net: &mut Ctx<'_>) {
        let mut completed: Vec<(String, String, u64)> = Vec::new();
        let mut to_send: Vec<Envelope> = Vec::new();
        let mut to_deliver_locally: Vec<Envelope> = Vec::new();
        for (key, entry) in self.pending_gd.iter_mut() {
            let subject = match Subject::new(&entry.env.subject) {
                Ok(s) => s,
                Err(_) => {
                    completed.push(key.clone());
                    continue;
                }
            };
            let interested: Vec<u32> = self
                .peer_subs
                .iter()
                .filter(|(_, filters)| filters.values().any(|f| f.matches(&subject)))
                .map(|(h, _)| *h)
                .collect();
            let outstanding: Vec<u32> = interested
                .iter()
                .copied()
                .filter(|h| !entry.acked.contains(h))
                .collect();
            // The message is held "until a reply is received": completion
            // requires that *someone* took delivery (a local subscriber
            // or at least one remote ack) and that nobody currently
            // interested is still un-acked. With no interested party at
            // all the entry simply waits for one to appear.
            let someone_has_it = entry.local_done || !entry.acked.is_empty();
            if outstanding.is_empty() && entry.rounds > 0 && someone_has_it {
                completed.push(key.clone());
                continue;
            }
            entry.rounds += 1;
            if !outstanding.is_empty() || (!someone_has_it && !interested.is_empty()) {
                let mut env = entry.env.clone();
                // Every retransmission is flagged: a receiver daemon that
                // restarted since the original send must deliver it even
                // though its sequencing state says "duplicate". Healthy
                // receivers that merely lost an ack may see a duplicate —
                // exactly the at-least-once contract.
                env.redelivery = true;
                to_send.push(env);
            }
            if !entry.local_done {
                // A subscriber may have (re)attached on this very host
                // after the daemon reloaded its ledger.
                let mut env = entry.env.clone();
                env.redelivery = true;
                to_deliver_locally.push(env);
            }
        }
        for env in to_send {
            self.stats.gd_retries += 1;
            self.send_packet_broadcast(
                net,
                &Packet::Data {
                    envelopes: vec![env],
                    retrans: true,
                },
            );
        }
        for env in to_deliver_locally {
            if self.deliver_local(net, &env, None) > 0 {
                if let Some(entry) = self.pending_gd.get_mut(&Self::gd_key(&env)) {
                    entry.local_done = true;
                }
            }
        }
        for key in completed {
            if let Some(entry) = self.pending_gd.remove(&key) {
                net.nv_delete(&Self::gd_nv_key(&entry.env));
                self.stats.gd_completed += 1;
            }
        }
        self.stats.gd_pending = self.pending_gd.len() as u64;
        if self.pending_gd.is_empty() {
            self.gd_timer_armed = false;
        } else {
            net.set_timer(self.cfg.gd_retry_us, TOK_GD_RETRY);
        }
    }

    fn gd_ack_received(
        &mut self,
        net: &mut Ctx<'_>,
        stream: &StreamKey,
        subject: &str,
        seq: u64,
        from: u32,
    ) {
        let key = (stream.app.clone(), subject.to_owned(), seq);
        self.stats.gd_acks_received += 1;
        if let Some(entry) = self.pending_gd.get_mut(&key) {
            entry.acked.insert(from);
            // Completion is decided on the next retry round, which also
            // gives late subscribers one window to appear.
            let _ = net;
        }
    }

    // ----- receiving ---------------------------------------------------------------

    fn accept_envelope(&mut self, net: &mut Ctx<'_>, env: Envelope) {
        if env.stream.host == self.host32 {
            return; // Our own broadcast looped back; locals were served directly.
        }
        let Ok(subject) = Subject::new(&env.subject) else {
            return;
        };
        if !self.trie.matches_any(&subject) && !self.link_interested(&subject) {
            // The cheap filter: nothing on this host (or linked bus) cares.
            self.stats.filtered += 1;
            return;
        }
        let skey = (env.stream.clone(), env.subject.clone());
        if !self.in_streams.contains_key(&skey) {
            // First contact with this stream. If the stream began after
            // our earliest matching subscription, we are entitled to it
            // from sequence 1 (losses of early messages are NAKed);
            // otherwise we are a late subscriber and take it from here.
            let entitled = self
                .earliest_matching_sub(&subject)
                .is_some_and(|sub_at| env.stream_start >= sub_at);
            let expected = if entitled { 1 } else { env.seq };
            self.in_streams.insert(
                skey.clone(),
                InStream {
                    expected,
                    known_top: 0,
                    holdback: BTreeMap::new(),
                    gap_since: None,
                },
            );
        }
        let st = self.in_streams.get_mut(&skey).expect("just ensured");
        st.known_top = st.known_top.max(env.seq);
        if env.seq < st.expected {
            if env.qos == QoS::Guaranteed {
                self.send_ack(net, &env);
                if env.redelivery {
                    // A guaranteed redelivery (ledger replay / repeated
                    // retry): the consumer's delivery state may have been
                    // lost with a restart, so deliver out of band rather
                    // than dedup. At-least-once permits the duplicate.
                    self.deliver_remote(net, &env);
                    return;
                }
            }
            self.stats.dups_dropped += 1;
            return;
        }
        if env.seq == st.expected {
            st.expected += 1;
            // Drain any consecutive held-back envelopes.
            let mut ready = vec![env];
            loop {
                let next_seq = {
                    let key = (ready[0].stream.clone(), ready[0].subject.clone());
                    let st = self.in_streams.get_mut(&key).expect("created above");
                    if let Some(e) = st.holdback.remove(&st.expected) {
                        st.expected += 1;
                        Some(e)
                    } else {
                        let gap = !st.holdback.is_empty() || st.expected <= st.known_top;
                        st.gap_since = if gap { Some(net.now()) } else { None };
                        None
                    }
                };
                match next_seq {
                    Some(e) => ready.push(e),
                    None => break,
                }
            }
            for e in ready {
                if e.qos == QoS::Guaranteed {
                    self.send_ack(net, &e);
                }
                self.deliver_remote(net, &e);
            }
        } else {
            let now = net.now();
            let st = self
                .in_streams
                .get_mut(&(env.stream.clone(), env.subject.clone()))
                .expect("created above");
            if st.gap_since.is_none() {
                st.gap_since = Some(now);
            }
            st.holdback.insert(env.seq, env);
        }
    }

    fn send_ack(&mut self, net: &mut Ctx<'_>, env: &Envelope) {
        let packet = Packet::Ack {
            stream: env.stream.clone(),
            subject: env.subject.clone(),
            seq: env.seq,
            from_host: self.host32,
        };
        let host = env.stream.host;
        self.send_packet_unicast(net, host, &packet);
        self.stats.acks_sent += 1;
    }

    /// The earliest creation time among local subscriptions matching
    /// `subject` (data, control, responder, or service entries alike).
    fn earliest_matching_sub(&self, subject: &Subject) -> Option<Micros> {
        self.trie
            .matches(subject)
            .filter_map(|(id, _)| self.sub_times.get(&id).copied())
            .min()
    }

    /// Broadcasts top-sequence digests for streams idle since the last
    /// sync period, so receivers can detect tail losses.
    fn sync_round(&mut self, net: &mut Ctx<'_>) {
        let now = net.now();
        let period = self.cfg.sync_period_us;
        let mut entries = Vec::new();
        for ((app, subject), stream) in self.out_streams.iter_mut() {
            if stream.digests_left == 0
                || stream.next_seq == 1
                || now.saturating_sub(stream.last_pub_at) < period
            {
                continue;
            }
            stream.digests_left -= 1;
            entries.push(SyncEntry {
                stream: StreamKey {
                    host: self.host32,
                    app: app.clone(),
                    inc: stream.inc,
                },
                subject: subject.clone(),
                top_seq: stream.next_seq - 1,
                stream_start: stream.started,
            });
            if entries.len() >= 256 {
                break;
            }
        }
        if !entries.is_empty() {
            self.send_packet_broadcast(net, &Packet::SeqSync { entries });
        }
        net.set_timer(self.cfg.sync_period_us, TOK_SYNC);
    }

    /// Handles a received stream digest: opens/extends gap detection.
    fn handle_seqsync(&mut self, net: &mut Ctx<'_>, entries: Vec<SyncEntry>) {
        let now = net.now();
        for e in entries {
            if e.stream.host == self.host32 {
                continue;
            }
            let Ok(subject) = Subject::new(&e.subject) else {
                continue;
            };
            let Some(sub_at) = self.earliest_matching_sub(&subject) else {
                continue;
            };
            let skey = (e.stream.clone(), e.subject.clone());
            if !self.in_streams.contains_key(&skey) {
                // We never saw any message of this stream. If it began
                // after we subscribed, we are entitled to all of it.
                if e.stream_start < sub_at {
                    continue;
                }
                self.in_streams.insert(
                    skey.clone(),
                    InStream {
                        expected: 1,
                        known_top: 0,
                        holdback: BTreeMap::new(),
                        gap_since: None,
                    },
                );
            }
            let st = self.in_streams.get_mut(&skey).expect("just ensured");
            st.known_top = st.known_top.max(e.top_seq);
            if st.expected <= st.known_top && st.gap_since.is_none() {
                st.gap_since = Some(now);
            }
        }
    }

    /// Scans in-streams for aged gaps and sends NAKs.
    fn nak_check(&mut self, net: &mut Ctx<'_>) {
        let now = net.now();
        let mut naks: Vec<Packet> = Vec::new();
        for ((stream, subject), st) in self.in_streams.iter_mut() {
            let Some(since) = st.gap_since else { continue };
            if now.saturating_sub(since) < self.cfg.nak_delay_us {
                continue;
            }
            let first_held = st.holdback.keys().next().copied();
            let end = match first_held {
                Some(k) => k,
                None => st.known_top + 1,
            };
            let missing: Vec<u64> = (st.expected..end).take(64).collect();
            if missing.is_empty() {
                st.gap_since = None;
                continue;
            }
            st.gap_since = Some(now); // re-NAK next period if still missing
            naks.push(Packet::Nak {
                stream: stream.clone(),
                subject: subject.clone(),
                requester: self.host32,
                missing,
            });
        }
        for nak in naks {
            if let Packet::Nak { ref stream, .. } = nak {
                let host = stream.host;
                self.stats.naks_sent += 1;
                self.send_packet_unicast(net, host, &nak);
            }
        }
        net.set_timer(self.cfg.nak_check_us, TOK_NAK_CHECK);
    }

    fn handle_nak(
        &mut self,
        net: &mut Ctx<'_>,
        stream: StreamKey,
        subject: String,
        requester: u32,
        missing: Vec<u64>,
    ) {
        self.stats.naks_served += 1;
        let key = (stream.app.clone(), subject.clone());
        let Some(out) = self.out_streams.get(&key) else {
            // Unknown stream (for example, we restarted): tell the
            // receiver to skip everything it asked for.
            let through = missing.iter().copied().max().unwrap_or(0);
            self.stats.gapskips_sent += 1;
            self.send_packet_unicast(
                net,
                requester,
                &Packet::GapSkip {
                    stream,
                    subject,
                    through,
                },
            );
            return;
        };
        if out.inc != stream.inc {
            let through = missing.iter().copied().max().unwrap_or(0);
            self.stats.gapskips_sent += 1;
            self.send_packet_unicast(
                net,
                requester,
                &Packet::GapSkip {
                    stream,
                    subject,
                    through,
                },
            );
            return;
        }
        let now = net.now();
        let out = self.out_streams.get_mut(&key).expect("checked above");
        if std::env::var("IB_NAK_DEBUG").is_ok() {
            let lo = out.retain.front().map(|e| e.seq).unwrap_or(0);
            let hi = out.retain.back().map(|e| e.seq).unwrap_or(0);
            eprintln!(
                "NAK from {requester}: stream inc {} (out inc {}), missing {:?}, retention [{lo},{hi}]",
                stream.inc, out.inc, &missing[..missing.len().min(5)]
            );
        }
        out.recent_retrans
            .retain(|_, at| now.saturating_sub(*at) < 20_000);
        let mut found: Vec<Envelope> = Vec::new();
        let mut lost_max: u64 = 0;
        for seq in &missing {
            if out.recent_retrans.contains_key(seq) {
                // Another receiver already triggered this repair; the
                // broadcast retransmission serves everyone.
                continue;
            }
            match out.retain.iter().find(|e| e.seq == *seq) {
                Some(e) => {
                    found.push(e.clone());
                    out.recent_retrans.insert(*seq, now);
                }
                None => lost_max = lost_max.max(*seq),
            }
        }
        if !found.is_empty() {
            self.stats.retransmitted += found.len() as u64;
            // Retransmissions are *broadcast*: when several receivers
            // lost the same frame (a collision corrupts it for everyone),
            // one retransmission repairs them all; receivers that already
            // have the sequence drop it as a duplicate.
            self.send_packet_broadcast(
                net,
                &Packet::Data {
                    envelopes: found,
                    retrans: true,
                },
            );
        }
        if lost_max > 0 {
            self.stats.gapskips_sent += 1;
            self.send_packet_unicast(
                net,
                requester,
                &Packet::GapSkip {
                    stream,
                    subject,
                    through: lost_max,
                },
            );
        }
    }

    fn handle_gapskip(
        &mut self,
        net: &mut Ctx<'_>,
        stream: StreamKey,
        subject: String,
        through: u64,
    ) {
        let key = (stream, subject);
        let Some(st) = self.in_streams.get_mut(&key) else {
            return;
        };
        if through + 1 > st.expected {
            self.stats.gaps_skipped += through + 1 - st.expected;
            st.expected = through + 1;
        }
        // Drain anything now deliverable.
        let mut ready = Vec::new();
        while let Some(e) = st.holdback.remove(&st.expected) {
            st.expected += 1;
            ready.push(e);
        }
        let gap = !st.holdback.is_empty() || st.expected <= st.known_top;
        st.gap_since = if gap { Some(net.now()) } else { None };
        for e in ready {
            if e.qos == QoS::Guaranteed {
                self.send_ack(net, &e);
            }
            self.deliver_remote(net, &e);
        }
    }

    // ----- delivery --------------------------------------------------------------

    /// Routes a remotely received, in-order envelope.
    fn deliver_remote(&mut self, net: &mut Ctx<'_>, env: &Envelope) {
        match env.kind {
            EnvelopeKind::Data => {
                self.deliver_local(net, env, None);
                self.maybe_forward(net, env, None);
            }
            EnvelopeKind::DiscoverQuery => self.answer_discovery(net, env),
            EnvelopeKind::DiscoverAnnounce => self.collect_discovery(env),
            EnvelopeKind::RmiQuery => self.answer_rmi_query(net, env),
            EnvelopeKind::RmiOffer => self.collect_offer(net, env),
        }
    }

    /// Delivers a data envelope to matching local applications; returns
    /// how many local deliveries were queued.
    fn deliver_local(
        &mut self,
        net: &mut Ctx<'_>,
        env: &Envelope,
        exclude_app: Option<usize>,
    ) -> usize {
        if env.kind != EnvelopeKind::Data {
            return 0;
        }
        let Ok(subject) = Subject::new(&env.subject) else {
            return 0;
        };
        let targets: Vec<usize> = self
            .trie
            .matches(&subject)
            .filter_map(|(_, t)| match t {
                SubTarget::App { app_idx } if Some(*app_idx) != exclude_app => Some(*app_idx),
                _ => None,
            })
            .collect();
        if targets.is_empty() {
            return 0;
        }
        let value = match wire::unmarshal(&env.payload, &mut self.registry.borrow_mut()) {
            Ok(v) => v,
            Err(_) => {
                self.stats.unmarshal_errors += 1;
                return 0;
            }
        };
        let delivered = targets.len();
        let ipc = net.host_config().ipc_cost(env.payload.len());
        for app_idx in targets {
            // Model the daemon→application IPC hop per recipient.
            net.charge_cpu(ipc);
            self.stats.delivered += 1;
            self.stats.delivered_bytes += env.payload.len() as u64;
            self.pending.push_back(AppEvent::Msg {
                app_idx,
                msg: BusMessage {
                    subject: subject.clone(),
                    value: value.clone(),
                    qos: env.qos,
                    redelivery: env.redelivery,
                },
            });
        }
        delivered
    }

    // ----- discovery ---------------------------------------------------------------

    pub(crate) fn discover(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        subject: &Subject,
        token: u64,
    ) -> Result<(), BusError> {
        let corr = self.next_corr;
        self.next_corr += 1;
        self.stats.discovery_rounds += 1;
        let temp_sub =
            self.subscribe_internal(net, &SubjectFilter::exact(subject), SubTarget::Control);
        self.discoveries.insert(
            corr,
            DiscoveryState {
                app_idx,
                token,
                replies: Vec::new(),
                temp_sub,
            },
        );
        // "Who's out there?" is itself a publication on the subject.
        self.publish_payload(
            net,
            app_idx,
            subject,
            QoS::Reliable,
            EnvelopeKind::DiscoverQuery,
            corr,
            wire::marshal_value(&Value::Nil),
        )?;
        let window = self.cfg.discovery_window_us;
        self.dyn_timer(net, window, TimerTarget::DiscoveryClose { corr });
        Ok(())
    }

    pub(crate) fn add_discovery_responder(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        filter: &SubjectFilter,
        info: Value,
    ) {
        self.subscribe_internal(net, filter, SubTarget::Responder { app_idx, info });
    }

    /// A "Who's out there?" query arrived: matching responders publish
    /// "I am" on the same subject.
    fn answer_discovery(&mut self, net: &mut Ctx<'_>, env: &Envelope) {
        let Ok(subject) = Subject::new(&env.subject) else {
            return;
        };
        let responders: Vec<(usize, Value)> = self
            .trie
            .matches(&subject)
            .filter_map(|(_, t)| match t {
                SubTarget::Responder { app_idx, info } => Some((*app_idx, info.clone())),
                _ => None,
            })
            .collect();
        for (app_idx, info) in responders {
            let _ = self.publish_payload(
                net,
                app_idx,
                &subject,
                QoS::Reliable,
                EnvelopeKind::DiscoverAnnounce,
                env.corr,
                wire::marshal_value(&info),
            );
        }
    }

    fn collect_discovery(&mut self, env: &Envelope) {
        if let Some(d) = self.discoveries.get_mut(&env.corr) {
            if let Ok(info) = wire::unmarshal_value(&env.payload) {
                d.replies.push(DiscoveryReply { info });
            }
        }
    }

    fn close_discovery(&mut self, net: &mut Ctx<'_>, corr: u64) {
        if let Some(d) = self.discoveries.remove(&corr) {
            self.unsubscribe(net, d.temp_sub);
            self.pending.push_back(AppEvent::Discovery {
                app_idx: d.app_idx,
                token: d.token,
                replies: d.replies,
            });
        }
    }

    // ----- RMI client -----------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rmi_call(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        subject: &Subject,
        op: &str,
        args: Vec<Value>,
        policy: SelectionPolicy,
        retry: RetryMode,
    ) -> CallId {
        let call_id = self.next_corr;
        self.next_corr += 1;
        self.stats.rmi_calls += 1;
        let temp_sub =
            self.subscribe_internal(net, &SubjectFilter::exact(subject), SubTarget::Control);
        self.calls.insert(
            call_id,
            CallState {
                app_idx,
                subject: subject.clone(),
                op: op.to_owned(),
                args,
                policy,
                retry,
                started: net.now(),
                attempts: 0,
                offers: Vec::new(),
                tried: HashSet::new(),
                rediscovered: false,
                phase: CallPhase::Discover,
                temp_sub: Some(temp_sub),
                timeout_timer: None,
            },
        );
        // The client searches for all servers by publishing a query
        // message on a subject specific to that service (§3.3, Figure 2).
        let _ = self.publish_payload(
            net,
            app_idx,
            subject,
            QoS::Reliable,
            EnvelopeKind::RmiQuery,
            call_id,
            wire::marshal_value(&Value::Nil),
        );
        let window = self.cfg.offer_window_us;
        self.dyn_timer(net, window, TimerTarget::OfferWindowClose { call: call_id });
        CallId(call_id)
    }

    /// An RMI query arrived: local services matching the subject publish
    /// their point-to-point address.
    fn answer_rmi_query(&mut self, net: &mut Ctx<'_>, env: &Envelope) {
        let Ok(subject) = Subject::new(&env.subject) else {
            return;
        };
        let services: Vec<usize> = self
            .trie
            .matches(&subject)
            .filter_map(|(_, t)| match t {
                SubTarget::Service { svc_idx } => Some(*svc_idx),
                _ => None,
            })
            .collect();
        for svc_idx in services {
            let Some(Some(meta)) = self.svc_meta.get(svc_idx) else {
                continue;
            };
            let offer = Value::List(vec![
                Value::I64(self.host32 as i64),
                Value::I64(RMI_PORT as i64),
                Value::I64(meta.outstanding),
            ]);
            let app_idx = meta.app_idx;
            let _ = self.publish_payload(
                net,
                app_idx,
                &subject,
                QoS::Reliable,
                EnvelopeKind::RmiOffer,
                env.corr,
                wire::marshal_value(&offer),
            );
        }
    }

    fn collect_offer(&mut self, net: &mut Ctx<'_>, env: &Envelope) {
        let Some(call) = self.calls.get_mut(&env.corr) else {
            return;
        };
        if !matches!(call.phase, CallPhase::Discover) {
            return;
        }
        let Ok(value) = wire::unmarshal_value(&env.payload) else {
            return;
        };
        let Some(items) = value.as_list() else { return };
        if items.len() < 3 {
            return;
        }
        let (Some(host), Some(port), Some(load)) =
            (items[0].as_i64(), items[1].as_i64(), items[2].as_i64())
        else {
            return;
        };
        call.offers.push(Offer {
            host: host as u32,
            port: port as u16,
            load,
        });
        if matches!(call.policy, SelectionPolicy::First) {
            self.try_connect(net, env.corr);
        }
    }

    fn offer_window_closed(&mut self, net: &mut Ctx<'_>, call_id: u64) {
        let Some(call) = self.calls.get(&call_id) else {
            return;
        };
        if matches!(call.phase, CallPhase::Discover) {
            if call.offers.is_empty() {
                self.complete_call(net, call_id, Err(RmiError::NoServer));
            } else {
                self.try_connect(net, call_id);
            }
        }
    }

    fn try_connect(&mut self, net: &mut Ctx<'_>, call_id: u64) {
        let host32 = self.host32;
        let chosen: Option<Offer> = {
            let Some(call) = self.calls.get(&call_id) else {
                return;
            };
            let candidates: Vec<&Offer> = call
                .offers
                .iter()
                .filter(|o| !call.tried.contains(&o.host))
                .collect();
            match call.policy {
                SelectionPolicy::First => candidates.first().map(|o| (*o).clone()),
                SelectionPolicy::Random => {
                    if candidates.is_empty() {
                        None
                    } else {
                        let idx = (net.random() * candidates.len() as f64) as usize;
                        candidates
                            .get(idx.min(candidates.len() - 1))
                            .map(|o| (*o).clone())
                    }
                }
                SelectionPolicy::LeastLoaded => candidates
                    .iter()
                    .min_by_key(|o| o.load)
                    .map(|o| (*o).clone()),
            }
        };
        let Some(offer) = chosen else {
            self.complete_call(net, call_id, Err(RmiError::NoServer));
            return;
        };
        let (app_idx, subject, op, args) = {
            let Some(call) = self.calls.get_mut(&call_id) else {
                return;
            };
            call.tried.insert(offer.host);
            call.attempts += 1;
            (
                call.app_idx,
                call.subject.clone(),
                call.op.clone(),
                call.args.clone(),
            )
        };
        // Arguments travel self-describing so the server can handle
        // instances of types it has never seen.
        let args_bytes: Result<Vec<Vec<u8>>, _> = {
            let registry = self.registry.borrow();
            args.iter()
                .map(|v| wire::marshal_self_describing(v, &registry))
                .collect()
        };
        let args_bytes = match args_bytes {
            Ok(b) => b,
            Err(e) => {
                self.complete_call(net, call_id, Err(RmiError::App(format!("marshal: {e}"))));
                return;
            }
        };
        let conn = net.connect(SockAddr::new(
            infobus_netsim::HostId(offer.host),
            offer.port,
        ));
        let request = RmiMsg::Request {
            call: (host32, self.app_name(app_idx), call_id),
            service: subject.as_str().to_owned(),
            op,
            args: args_bytes,
        };
        let _ = net.conn_send(conn, request.encode());
        self.conn_calls.insert(conn, call_id);
        let timeout = self.cfg.rmi_timeout_us;
        let timer = self.dyn_timer(net, timeout, TimerTarget::RmiTimeout { call: call_id });
        if let Some(call) = self.calls.get_mut(&call_id) {
            call.phase = CallPhase::Connecting { conn };
            call.timeout_timer = Some(timer);
        }
    }

    fn call_failed(&mut self, net: &mut Ctx<'_>, call_id: u64, error: RmiError) {
        let (retry, attempts, max) = match self.calls.get(&call_id) {
            Some(c) => (c.retry, c.attempts, self.cfg.rmi_max_attempts),
            None => return,
        };
        if retry == RetryMode::Failover && attempts < max {
            // Fail over to another offered server with the same call id.
            let has_candidates = self
                .calls
                .get(&call_id)
                .map(|c| c.offers.iter().any(|o| !c.tried.contains(&o.host)))
                .unwrap_or(false);
            if has_candidates {
                self.try_connect(net, call_id);
                return;
            }
            // No untried servers: rediscover once.
            let rediscover = {
                let call = self.calls.get_mut(&call_id).expect("checked above");
                if !call.rediscovered {
                    call.rediscovered = true;
                    call.phase = CallPhase::Discover;
                    call.offers.clear();
                    call.tried.clear();
                    true
                } else {
                    false
                }
            };
            if rediscover {
                let (subject, app_idx) = {
                    let call = self.calls.get(&call_id).expect("checked above");
                    (call.subject.clone(), call.app_idx)
                };
                let _ = self.publish_payload(
                    net,
                    app_idx,
                    &subject,
                    QoS::Reliable,
                    EnvelopeKind::RmiQuery,
                    call_id,
                    wire::marshal_value(&Value::Nil),
                );
                let window = self.cfg.offer_window_us;
                self.dyn_timer(net, window, TimerTarget::OfferWindowClose { call: call_id });
                return;
            }
        }
        self.complete_call(net, call_id, Err(error));
    }

    fn complete_call(&mut self, net: &mut Ctx<'_>, call_id: u64, result: Result<Value, RmiError>) {
        let Some(mut call) = self.calls.remove(&call_id) else {
            return;
        };
        self.stats
            .rmi_latency
            .record(net.now().saturating_sub(call.started));
        if let CallPhase::Connecting { conn } = call.phase {
            self.conn_calls.remove(&conn);
            net.conn_close(conn);
        }
        call.phase = CallPhase::Done;
        if let Some(sub) = call.temp_sub.take() {
            self.unsubscribe(net, sub);
        }
        self.pending.push_back(AppEvent::RmiReply {
            app_idx: call.app_idx,
            call: CallId(call_id),
            result,
        });
    }

    // ----- RMI server ------------------------------------------------------------------

    pub(crate) fn export_service(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        subject: &Subject,
        service: Box<dyn ServiceObject>,
    ) -> Result<(), BusError> {
        if self.services.contains_key(subject.as_str()) {
            return Err(BusError::Duplicate(subject.as_str().to_owned()));
        }
        let svc_idx = self.svc_meta.len();
        self.svc_meta.push(Some(SvcMeta {
            subject: subject.as_str().to_owned(),
            app_idx,
            outstanding: 0,
            dedup: HashMap::new(),
            dedup_order: VecDeque::new(),
        }));
        self.services.insert(subject.as_str().to_owned(), svc_idx);
        self.subscribe_internal(
            net,
            &SubjectFilter::exact(subject),
            SubTarget::Service { svc_idx },
        );
        self.pending_services.push((svc_idx, service));
        Ok(())
    }

    pub(crate) fn withdraw_service(
        &mut self,
        net: &mut Ctx<'_>,
        subject: &str,
    ) -> Result<(), BusError> {
        let Some(svc_idx) = self.services.remove(subject) else {
            return Err(BusError::NotFound(format!("service {subject}")));
        };
        self.svc_meta[svc_idx] = None;
        // Remove the trie entry pointing at this service.
        let mut to_remove = Vec::new();
        self.trie.for_each(|id, _, t| {
            if matches!(t, SubTarget::Service { svc_idx: s } if *s == svc_idx) {
                to_remove.push(id);
            }
        });
        for id in to_remove {
            self.unsubscribe(net, id);
        }
        self.dropped_services.push(svc_idx);
        Ok(())
    }

    /// Handles an incoming RMI request on a server connection.
    fn handle_rmi_request(
        &mut self,
        net: &mut Ctx<'_>,
        conn: ConnId,
        call: (u32, String, u64),
        service: String,
        op: String,
        args: Vec<Vec<u8>>,
    ) {
        let Some(&svc_idx) = self.services.get(&service) else {
            let reply = RmiMsg::Reply {
                call,
                ok: false,
                value: wire::marshal_value(&Value::Nil),
                error: format!("bad-operation: no service {service} here"),
            };
            let _ = net.conn_send(conn, reply.encode());
            return;
        };
        let Some(Some(meta)) = self.svc_meta.get_mut(svc_idx) else {
            return;
        };
        if let Some(cached) = meta.dedup.get(&call) {
            // The retry layer: duplicate requests get the cached reply,
            // so the operation executes at most once per server.
            self.stats.rmi_deduped += 1;
            let bytes = cached.clone();
            let _ = net.conn_send(conn, bytes);
            return;
        }
        meta.outstanding += 1;
        self.pending.push_back(AppEvent::SvcInvoke {
            svc_idx,
            conn,
            call,
            op,
            args,
        });
    }

    // ----- information-router links ---------------------------------------------------------

    fn link_interested(&self, subject: &Subject) -> bool {
        self.router_links
            .values()
            .any(|link| Self::link_wants(link, subject).is_some())
    }

    /// Decides whether `link`'s remote side subscribes to this subject,
    /// returning the subject to forward under (rewritten if the link has
    /// a matching rewrite rule).
    fn link_wants(link: &RouterLink, subject: &Subject) -> Option<String> {
        let forwarded: String = match &link.rewrite {
            Some(rule) => rule
                .apply(subject.as_str())
                .unwrap_or_else(|| subject.as_str().to_owned()),
            None => subject.as_str().to_owned(),
        };
        let fsubj = Subject::new(&forwarded).ok()?;
        link.subs
            .iter()
            .any(|f| f.matches(&fsubj))
            .then_some(forwarded)
    }

    /// Forwards a data envelope over every link whose remote side
    /// subscribes to its subject, except `from_link` (split horizon).
    fn maybe_forward(&mut self, net: &mut Ctx<'_>, env: &Envelope, from_link: Option<ConnId>) {
        if env.kind != EnvelopeKind::Data {
            return;
        }
        let Ok(subject) = Subject::new(&env.subject) else {
            return;
        };
        let targets: Vec<(ConnId, String)> = self
            .router_links
            .iter()
            .filter(|(conn, _)| Some(**conn) != from_link)
            .filter_map(|(conn, link)| Self::link_wants(link, &subject).map(|s| (*conn, s)))
            .collect();
        self.stats.router_forwarded += targets.len() as u64;
        for (conn, forwarded_subject) in targets {
            let mut fwd = env.clone();
            fwd.subject = forwarded_subject;
            let _ = net.conn_send(conn, RouterMsg::Forward { env: fwd }.encode());
        }
    }

    /// Opens a router link to a peer daemon (driver command).
    pub(crate) fn open_link(&mut self, net: &mut Ctx<'_>, peer: u32, rewrite: Option<RewriteRule>) {
        let conn = net.connect(SockAddr::new(infobus_netsim::HostId(peer), RMI_PORT));
        self.router_links.insert(
            conn,
            RouterLink {
                peer_host: peer,
                subs: Vec::new(),
                rewrite,
            },
        );
        let _ = net.conn_send(conn, RouterMsg::Hello { host: self.host32 }.encode());
        self.send_link_subs(net, Some(conn));
    }

    /// The subscription set advertised over `link`: everything this bus
    /// knows locally or via broadcast announcements, plus the sets of all
    /// *other* links (split-horizon aggregation for bus chains).
    fn link_advertisement(&self, link: ConnId) -> Vec<String> {
        let mut set: HashSet<String> = HashSet::new();
        for f in self.my_filters.keys() {
            set.insert(f.clone());
        }
        for peers in self.peer_subs.values() {
            for f in peers.keys() {
                set.insert(f.clone());
            }
        }
        for (conn, other) in &self.router_links {
            if *conn != link {
                for f in &other.subs {
                    set.insert(f.as_str().to_owned());
                }
            }
        }
        let mut v: Vec<String> = set.into_iter().collect();
        v.sort();
        v
    }

    /// Sends subscription advertisements over one or all links.
    fn send_link_subs(&mut self, net: &mut Ctx<'_>, only: Option<ConnId>) {
        let conns: Vec<ConnId> = self
            .router_links
            .keys()
            .copied()
            .filter(|c| only.is_none() || only == Some(*c))
            .collect();
        for conn in conns {
            let filters = self.link_advertisement(conn);
            let _ = net.conn_send(conn, RouterMsg::Subs { filters }.encode());
        }
    }

    /// Handles a router message arriving on a connection.
    fn handle_router_msg(&mut self, net: &mut Ctx<'_>, conn: ConnId, msg: RouterMsg) {
        match msg {
            RouterMsg::Hello { host } => {
                // The accepting side learns this connection is a link.
                self.router_links.entry(conn).or_insert(RouterLink {
                    peer_host: host,
                    subs: Vec::new(),
                    rewrite: None,
                });
                self.send_link_subs(net, Some(conn));
            }
            RouterMsg::Subs { filters } => {
                if let Some(link) = self.router_links.get_mut(&conn) {
                    link.subs = filters
                        .iter()
                        .filter_map(|f| SubjectFilter::new(f).ok())
                        .collect();
                }
            }
            RouterMsg::Forward { env } => {
                if !self.router_links.contains_key(&conn) {
                    return;
                }
                let Ok(subject) = Subject::new(&env.subject) else {
                    return;
                };
                // Re-publish on this bus as a fresh publication from the
                // router; never forward it back where it came from.
                self.forward_horizon = Some(conn);
                let _ = self.publish_payload(
                    net,
                    usize::MAX,
                    &subject,
                    env.qos,
                    EnvelopeKind::Data,
                    0,
                    env.payload,
                );
                self.forward_horizon = None;
            }
        }
    }

    // ----- subscription gossip -----------------------------------------------------------

    fn handle_sub_announce(
        &mut self,
        host: u32,
        full: bool,
        add: Vec<String>,
        remove: Vec<String>,
    ) {
        if host == self.host32 {
            return;
        }
        let entry = self.peer_subs.entry(host).or_default();
        if full {
            entry.clear();
        }
        for f in add {
            if let Ok(filter) = SubjectFilter::new(&f) {
                entry.insert(f, filter);
            }
        }
        for f in remove {
            entry.remove(&f);
        }
    }

    // ----- observability plane -----------------------------------------------------------

    /// This daemon's identity element on the stats subject.
    fn stats_daemon_name(&self) -> String {
        format!("d{}", self.host32)
    }

    /// A host name reduced to a valid subject element (defensive: host
    /// names in simulations are already plain identifiers).
    fn subject_element(raw: &str) -> String {
        let cleaned: String = raw
            .chars()
            .map(|c| {
                if c.is_ascii_graphic() && c != '.' && c != '*' && c != '>' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        if cleaned.is_empty() {
            "unknown".to_owned()
        } else {
            cleaned
        }
    }

    /// Publishes the current [`BusStats`] snapshot as a self-describing
    /// object on `_INBUS.STATS.<host>.<daemon>` and re-arms the timer.
    fn publish_stats(&mut self, net: &mut Ctx<'_>) {
        let host = Self::subject_element(&net.host_name());
        let daemon = self.stats_daemon_name();
        let obj = self.stats.to_object(&host, &daemon, net.now());
        let text = format!("{STATS_SUBJECT_PREFIX}.{host}.{daemon}");
        if let Ok(subject) = Subject::new(&text) {
            let value = Value::Object(Box::new(obj));
            let _ = self.publish(net, APP_STATS, &subject, &value, QoS::Reliable);
            self.stats.stats_published += 1;
        }
        net.set_timer(self.cfg.stats_period_us, TOK_STATS);
    }
}

// ---------------------------------------------------------------------------
// The daemon process
// ---------------------------------------------------------------------------

/// The bus daemon process: one per host.
///
/// Owns the local applications ([`BusApp`]) and exported services
/// ([`ServiceObject`]); implements the reliable and guaranteed delivery
/// protocols, discovery, and RMI.
pub struct BusDaemon {
    state: DaemonState,
    apps: Vec<Option<AppSlot>>,
    services: Vec<Option<Box<dyn ServiceObject>>>,
}

struct AppSlot {
    app: Box<dyn BusApp>,
}

impl BusDaemon {
    /// Creates a daemon with the given configuration.
    pub fn new(cfg: BusConfig) -> Self {
        BusDaemon {
            state: DaemonState::new(cfg),
            apps: Vec::new(),
            services: Vec::new(),
        }
    }

    /// The daemon's protocol counters.
    pub fn stats(&self) -> &BusStats {
        &self.state.stats
    }

    /// The daemon's shared type registry.
    pub fn registry(&self) -> Rc<RefCell<TypeRegistry>> {
        self.state.registry()
    }

    /// Runs `f` against a named application's concrete state (driver-side
    /// inspection via `Sim::with_proc`).
    pub fn with_app<T: BusApp, R>(&mut self, name: &str, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let idx = self.app_idx(name)?;
        let slot = self.apps.get_mut(idx)?.as_mut()?;
        let any: &mut dyn Any = slot.app.as_mut();
        any.downcast_mut::<T>().map(f)
    }

    fn app_idx(&self, name: &str) -> Option<usize> {
        self.state
            .app_meta
            .iter()
            .position(|m| m.as_ref().is_some_and(|m| m.name == name))
    }

    /// Attaches an application (normally done via
    /// [`BusFabric`](crate::BusFabric)).
    pub fn attach(&mut self, net: &mut Ctx<'_>, name: &str, app: Box<dyn BusApp>) {
        let app_idx = self.apps.len();
        self.apps.push(Some(AppSlot { app }));
        self.state.app_meta.push(Some(AppMeta {
            name: name.to_owned(),
            inc: net.now().max(1),
            subs: Vec::new(),
        }));
        self.state.pending.push_back(AppEvent::Start { app_idx });
        self.drain(net);
    }

    /// Detaches (crashes) an application: volatile state is dropped, its
    /// subscriptions are removed.
    pub fn detach(&mut self, net: &mut Ctx<'_>, name: &str) {
        let Some(idx) = self.app_idx(name) else {
            return;
        };
        self.apps[idx] = None;
        if let Some(meta) = self.state.app_meta[idx].take() {
            for sub in meta.subs {
                self.state.unsubscribe(net, sub);
            }
        }
        // Withdraw services exported by this application.
        let subjects: Vec<String> = self
            .state
            .svc_meta
            .iter()
            .flatten()
            .filter(|m| m.app_idx == idx)
            .map(|m| m.subject.clone())
            .collect();
        for s in subjects {
            let _ = self.state.withdraw_service(net, &s);
        }
        self.sync_services();
    }

    /// Moves newly exported service boxes into the daemon's table and
    /// drops withdrawn ones.
    fn sync_services(&mut self) {
        for (idx, svc) in self.state.pending_services.drain(..) {
            while self.services.len() <= idx {
                self.services.push(None);
            }
            self.services[idx] = Some(svc);
        }
        for idx in self.state.dropped_services.drain(..) {
            if idx < self.services.len() {
                self.services[idx] = None;
            }
        }
    }

    /// Drains queued application events, allowing handlers to enqueue
    /// more (up to a cap).
    fn drain(&mut self, net: &mut Ctx<'_>) {
        self.sync_services();
        let mut processed = 0usize;
        while let Some(event) = self.state.pending.pop_front() {
            processed += 1;
            if processed > DRAIN_CAP {
                net.trace(|| "bus daemon: delivery drain cap hit; dropping remainder".to_owned());
                self.state.pending.clear();
                break;
            }
            match event {
                AppEvent::Start { app_idx } => {
                    self.with_app_slot(net, app_idx, |app, bus| app.on_start(bus));
                }
                AppEvent::Msg { app_idx, msg } => {
                    self.with_app_slot(net, app_idx, |app, bus| app.on_message(bus, &msg));
                }
                AppEvent::Timer { app_idx, token } => {
                    self.with_app_slot(net, app_idx, |app, bus| app.on_timer(bus, token));
                }
                AppEvent::Discovery {
                    app_idx,
                    token,
                    replies,
                } => {
                    self.with_app_slot(net, app_idx, |app, bus| {
                        app.on_discovery(bus, token, replies)
                    });
                }
                AppEvent::RmiReply {
                    app_idx,
                    call,
                    result,
                } => {
                    self.with_app_slot(net, app_idx, |app, bus| {
                        app.on_rmi_reply(bus, call, result)
                    });
                }
                AppEvent::SvcInvoke {
                    svc_idx,
                    conn,
                    call,
                    op,
                    args,
                } => {
                    self.invoke_service(net, svc_idx, conn, call, op, args);
                }
            }
            self.sync_services();
        }
    }

    fn with_app_slot(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        f: impl FnOnce(&mut dyn BusApp, &mut BusCtx<'_, '_>),
    ) {
        let Some(mut slot) = self.apps.get_mut(app_idx).and_then(Option::take) else {
            return;
        };
        {
            let mut bus = BusCtx {
                d: &mut self.state,
                net,
                app_idx,
            };
            f(slot.app.as_mut(), &mut bus);
        }
        if self.apps.get(app_idx).is_some_and(Option::is_none)
            && self
                .state
                .app_meta
                .get(app_idx)
                .is_some_and(Option::is_some)
        {
            self.apps[app_idx] = Some(slot);
        }
    }

    fn invoke_service(
        &mut self,
        net: &mut Ctx<'_>,
        svc_idx: usize,
        conn: ConnId,
        call: (u32, String, u64),
        op: String,
        args: Vec<Vec<u8>>,
    ) {
        let Some(mut service) = self.services.get_mut(svc_idx).and_then(Option::take) else {
            return;
        };
        // Unmarshal the self-describing arguments, learning any carried
        // types into this daemon's registry.
        let args: Result<Vec<Value>, _> = {
            let mut registry = self.state.registry.borrow_mut();
            args.iter()
                .map(|b| wire::unmarshal(b, &mut registry))
                .collect()
        };
        let args = match args {
            Ok(a) => a,
            Err(e) => {
                let reply = RmiMsg::Reply {
                    call,
                    ok: false,
                    value: wire::marshal_value(&Value::Nil),
                    error: format!("bad-operation: malformed arguments: {e}"),
                };
                let _ = net.conn_send(conn, reply.encode());
                self.services[svc_idx] = Some(service);
                return;
            }
        };
        let app_idx = self
            .state
            .svc_meta
            .get(svc_idx)
            .and_then(|m| m.as_ref())
            .map(|m| m.app_idx)
            .unwrap_or(usize::MAX);
        // Validate the operation against the self-describing interface.
        let descriptor = service.descriptor();
        let known = descriptor.own_operation(&op);
        let result = match known {
            None => Err(RmiError::BadOperation(format!(
                "{op} is not in the interface"
            ))),
            Some(sig) if sig.params.len() != args.len() => Err(RmiError::BadOperation(format!(
                "{op} expects {} arguments, got {}",
                sig.params.len(),
                args.len()
            ))),
            Some(_) => {
                let mut bus = BusCtx {
                    d: &mut self.state,
                    net,
                    app_idx,
                };
                service.invoke(&op, args, &mut bus)
            }
        };
        self.state.stats.rmi_served += 1;
        let reply = match result {
            Ok(value) => {
                let bytes = wire::marshal_self_describing(&value, &self.state.registry.borrow())
                    .unwrap_or_else(|_| wire::marshal_value(&Value::Nil));
                RmiMsg::Reply {
                    call: call.clone(),
                    ok: true,
                    value: bytes,
                    error: String::new(),
                }
            }
            Err(e) => RmiMsg::Reply {
                call: call.clone(),
                ok: false,
                value: wire::marshal_value(&Value::Nil),
                error: match &e {
                    RmiError::BadOperation(m) => format!("bad-operation: {m}"),
                    other => format!("app: {other}"),
                },
            },
        };
        let bytes = reply.encode();
        if let Some(Some(meta)) = self.state.svc_meta.get_mut(svc_idx) {
            meta.outstanding -= 1;
            meta.dedup.insert(call.clone(), bytes.clone());
            meta.dedup_order.push_back(call);
            while meta.dedup_order.len() > DEDUP_CAP {
                if let Some(old) = meta.dedup_order.pop_front() {
                    meta.dedup.remove(&old);
                }
            }
        }
        let _ = net.conn_send(conn, bytes);
        // Put the service back if it was not withdrawn meanwhile.
        if self
            .state
            .svc_meta
            .get(svc_idx)
            .is_some_and(Option::is_some)
        {
            self.services[svc_idx] = Some(service);
        }
    }
}

impl Process for BusDaemon {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.state.host32 = ctx.host().0;
        self.state.daemon_inc = ctx.now().max(1);
        self.state.seg0 = ctx.segments().first().copied();
        let _ = ctx.bind(DAEMON_PORT);
        let _ = ctx.listen_conn(RMI_PORT);
        // Soft-state resync: ask peers to re-announce their tables.
        self.state.send_packet_broadcast(
            ctx,
            &Packet::SubResync {
                host: self.state.host32,
            },
        );
        ctx.set_timer(self.state.cfg.nak_check_us, TOK_NAK_CHECK);
        ctx.set_timer(self.state.cfg.announce_period_us, TOK_ANNOUNCE);
        ctx.set_timer(self.state.cfg.sync_period_us, TOK_SYNC);
        // The observability plane: every daemon can describe its own
        // counters, and publishes them when a stats period is configured.
        BusStats::register_type(&mut self.state.registry.borrow_mut());
        if self.state.cfg.stats_period_us > 0 {
            ctx.set_timer(self.state.cfg.stats_period_us, TOK_STATS);
        }
        // Reload the guaranteed-delivery ledger written before any crash.
        self.state.gd_load_ledger(ctx);
        self.drain(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let Ok(packet) = Packet::decode(&dgram.payload) else {
            return;
        };
        match packet {
            Packet::Data { envelopes, .. } => {
                for env in envelopes {
                    self.state.accept_envelope(ctx, env);
                }
            }
            Packet::Nak {
                stream,
                subject,
                requester,
                missing,
            } => {
                self.state
                    .handle_nak(ctx, stream, subject, requester, missing);
            }
            Packet::GapSkip {
                stream,
                subject,
                through,
            } => {
                self.state.handle_gapskip(ctx, stream, subject, through);
            }
            Packet::Ack {
                stream,
                subject,
                seq,
                from_host,
            } => {
                self.state
                    .gd_ack_received(ctx, &stream, &subject, seq, from_host);
            }
            Packet::SubAnnounce {
                host,
                full,
                add,
                remove,
            } => {
                self.state.handle_sub_announce(host, full, add, remove);
            }
            Packet::SubResync { host } => {
                if host != self.state.host32 {
                    self.state.announce_full(ctx);
                }
            }
            Packet::SeqSync { entries } => {
                self.state.handle_seqsync(ctx, entries);
            }
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOK_BATCH => {
                self.state.batch_timer_armed = false;
                self.state.flush_batch(ctx);
            }
            TOK_NAK_CHECK => self.state.nak_check(ctx),
            TOK_SYNC => self.state.sync_round(ctx),
            TOK_STATS => self.state.publish_stats(ctx),
            TOK_ANN_FLUSH => self.state.flush_announcements(ctx),
            TOK_GD_RETRY => self.state.gd_retry_round(ctx),
            TOK_ANNOUNCE => {
                self.state.announce_full(ctx);
                self.state.send_link_subs(ctx, None);
                ctx.set_timer(self.state.cfg.announce_period_us, TOK_ANNOUNCE);
            }
            dyn_token => {
                let Some(target) = self.state.timer_targets.remove(&dyn_token) else {
                    return;
                };
                match target {
                    TimerTarget::App { app_idx, token } => {
                        self.state
                            .pending
                            .push_back(AppEvent::Timer { app_idx, token });
                    }
                    TimerTarget::DiscoveryClose { corr } => self.state.close_discovery(ctx, corr),
                    TimerTarget::OfferWindowClose { call } => {
                        self.state.offer_window_closed(ctx, call)
                    }
                    TimerTarget::RmiTimeout { call } => {
                        let waiting = self
                            .state
                            .calls
                            .get(&call)
                            .map(|c| matches!(c.phase, CallPhase::Connecting { .. }))
                            .unwrap_or(false);
                        if waiting {
                            self.state.call_failed(ctx, call, RmiError::Timeout);
                        }
                    }
                }
            }
        }
        self.drain(ctx);
    }

    fn on_conn(&mut self, ctx: &mut Ctx<'_>, event: ConnEvent) {
        match event {
            ConnEvent::Accepted { conn, .. } => {
                self.state.server_conns.insert(conn);
            }
            ConnEvent::Connected { .. } => {}
            ConnEvent::Data { conn, msg } => {
                if let Ok(Some(rmsg)) = RouterMsg::decode(&msg) {
                    self.state.handle_router_msg(ctx, conn, rmsg);
                    self.drain(ctx);
                    return;
                }
                let Ok(msg) = RmiMsg::decode(&msg) else {
                    return;
                };
                match msg {
                    RmiMsg::Request {
                        call,
                        service,
                        op,
                        args,
                    } => {
                        self.state
                            .handle_rmi_request(ctx, conn, call, service, op, args);
                    }
                    RmiMsg::Reply {
                        call,
                        ok,
                        value,
                        error,
                    } => {
                        let call_id = call.2;
                        if self.state.conn_calls.get(&conn) == Some(&call_id) {
                            self.state.conn_calls.remove(&conn);
                            let result = if ok {
                                let mut registry = self.state.registry.borrow_mut();
                                match wire::unmarshal(&value, &mut registry) {
                                    Ok(v) => Ok(v),
                                    Err(e) => Err(RmiError::App(format!("malformed reply: {e}"))),
                                }
                            } else if let Some(msg) = error.strip_prefix("bad-operation: ") {
                                Err(RmiError::BadOperation(msg.to_owned()))
                            } else {
                                Err(RmiError::App(error))
                            };
                            self.state.complete_call(ctx, call_id, result);
                        }
                    }
                }
            }
            ConnEvent::Closed { conn } => {
                self.state.server_conns.remove(&conn);
                self.state.router_links.remove(&conn);
                if let Some(call_id) = self.state.conn_calls.remove(&conn) {
                    let waiting = self
                        .state
                        .calls
                        .get(&call_id)
                        .map(|c| matches!(c.phase, CallPhase::Connecting { .. }))
                        .unwrap_or(false);
                    if waiting {
                        self.state
                            .call_failed(ctx, call_id, RmiError::ConnectionFailed);
                    }
                }
            }
        }
        self.drain(ctx);
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_>, cmd: Box<dyn Any>) {
        match cmd.downcast::<crate::fabric::AttachApp>() {
            Ok(attach) => {
                let attach = *attach;
                self.attach(ctx, &attach.name, attach.app);
            }
            Err(cmd) => match cmd.downcast::<crate::fabric::DetachApp>() {
                Ok(detach) => self.detach(ctx, &detach.name),
                Err(cmd) => {
                    if let Ok(link) = cmd.downcast::<crate::fabric::LinkBuses>() {
                        let link = *link;
                        self.state.open_link(ctx, link.peer.0, link.rewrite);
                    }
                }
            },
        }
        self.drain(ctx);
    }
}

impl DaemonState {
    /// Application timer (public to `BusCtx`).
    pub(crate) fn set_app_timer(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        delay: Micros,
        token: u64,
    ) {
        self.dyn_timer(net, delay, TimerTarget::App { app_idx, token });
    }
}
