//! The per-host bus daemon: the netsim driver of the protocol engine.
//!
//! "In our implementation of subject-based addressing, we use a daemon on
//! every host. Each application registers with its local daemon, and tells
//! the daemon to which subjects it has subscribed. The daemon forwards
//! each message to each application that has subscribed. It uses the
//! subject contained in the message to decide which application receives
//! which message." (§3.1)
//!
//! All protocol logic (sequencing, NAK repair, guaranteed-delivery
//! ledgers, batching) lives in the sans-I/O [`Engine`](crate::engine):
//! this module translates simulator events into engine [`Event`]s and
//! performs the returned [`Action`]s against the simulated network
//! ([`DaemonTransport`]). Driver-only concerns stay here and in the
//! sibling modules: interest management (`interest`), RMI calls and
//! services (`calls`), router links (`links`), and application hosting
//! (`apps`).

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use infobus_netsim::{ConnEvent, ConnId, Ctx, Datagram, Process, SegmentId, SockAddr};
use infobus_router::{ForwardTarget, LinkId, RouteStamp, RouterEngine, RouterTimer};
use infobus_subject::{Subject, SubjectFilter, SubjectTrie, SubscriptionId};
use infobus_types::{wire, TypeRegistry, Value};

use crate::apps::{AppEvent, AppMeta, AppQueue, AppSlot, TimerTarget};
use crate::calls::{CallPhase, CallState, SvcMeta};
use crate::config::BusConfig;
use crate::engine::{
    run_sharded_actions, Action, BusStats, Event, Micros, PubSource, ShardId, ShardTransport,
    ShardedEngine, ShardedStats, TimerKind, Transport, STATS_SUBJECT_PREFIX,
};
use crate::envelope::{Envelope, EnvelopeKind};
use crate::interest::SubTarget;
use crate::msg::{Packet, RmiMsg, RouterMsg, SyncEntry};
use crate::nvstore::NvStore;
use crate::rmi::{RmiError, ServiceObject};
use crate::{BusError, QoS};

/// Datagram port used by bus daemons (broadcast and unicast).
pub const DAEMON_PORT: u16 = 75;

/// Connection port used for RMI point-to-point requests.
pub const RMI_PORT: u16 = 76;

/// Reserved timer tokens.
const TOK_ANNOUNCE: u64 = 4;
pub(crate) const TOK_ANN_FLUSH: u64 = 6;
const TOK_STATS: u64 = 7;
/// Router summary refresh + route aging.
pub(crate) const TOK_RT_SUMMARY: u64 = 8;
/// Router self-stabilization pass.
pub(crate) const TOK_RT_STAB: u64 = 9;
/// Dynamic timer tokens start here.
const TOK_DYN: u64 = 10;
/// Shard-tagged engine timers start here: token =
/// `TOK_SHARD_BASE + shard * 4 + kind`. The base sits far above any
/// dynamic token a simulation could allocate (they increment from
/// [`TOK_DYN`]), so the ranges cannot collide.
const TOK_SHARD_BASE: u64 = 1 << 32;

/// The publisher slot used for daemon-originated publications (stats
/// snapshots): not a real application index.
const APP_STATS: usize = usize::MAX - 1;

/// Maps a shard's engine timer onto this driver's simulator timer token.
fn shard_token(shard: ShardId, kind: TimerKind) -> u64 {
    let k = match kind {
        TimerKind::Batch => 0,
        TimerKind::NakScan => 1,
        TimerKind::GdRetry => 2,
        TimerKind::Sync => 3,
    };
    TOK_SHARD_BASE + shard as u64 * 4 + k
}

/// Inverse of [`shard_token`]; `None` for non-engine tokens.
fn decode_shard_token(token: u64) -> Option<(ShardId, TimerKind)> {
    let off = token.checked_sub(TOK_SHARD_BASE)?;
    let kind = match off % 4 {
        0 => TimerKind::Batch,
        1 => TimerKind::NakScan,
        2 => TimerKind::GdRetry,
        _ => TimerKind::Sync,
    };
    Some(((off / 4) as ShardId, kind))
}

// ---------------------------------------------------------------------------
// DaemonState: the engine plus everything driver-side
// ---------------------------------------------------------------------------

pub(crate) struct DaemonState {
    /// The sans-I/O protocol engine this daemon drives — sharded by the
    /// subject's first segment ([`BusConfig::shards`] instances; one by
    /// default).
    pub(crate) engine: ShardedEngine,
    pub(crate) host32: u32,
    pub(crate) seg0: Option<SegmentId>,
    pub(crate) registry: Rc<RefCell<TypeRegistry>>,
    pub(crate) trie: SubjectTrie<SubTarget>,
    pub(crate) app_meta: Vec<Option<AppMeta>>,
    /// Filter strings announced to peers, each carrying its live local
    /// subscriptions `(id, predicate)` — the list derives both the
    /// refcount (empty = withdraw) and the announced predicate
    /// ([`DaemonState::announced_pred_for`]).
    #[allow(clippy::type_complexity)]
    pub(crate) my_filters: HashMap<
        String,
        Vec<(
            SubscriptionId,
            Option<std::sync::Arc<crate::engine::filter::CompiledPredicate>>,
        )>,
    >,
    /// Per-subscription compiled content predicates (the delivery gate).
    pub(crate) sub_preds:
        HashMap<SubscriptionId, std::sync::Arc<crate::engine::filter::CompiledPredicate>>,
    /// Semantic expansion families: the head subscription id mapped to
    /// the sibling ids the [`SubjectMap`](infobus_router::SubjectMap)
    /// materialized; unsubscribing the head removes them all.
    pub(crate) expansions: HashMap<SubscriptionId, Vec<SubscriptionId>>,
    /// Filters whose announcement is pending the debounce flush (batching
    /// thousands of subscriptions into one packet).
    pub(crate) pending_announce_add: Vec<String>,
    pub(crate) pending_announce_remove: Vec<String>,
    pub(crate) announce_flush_armed: bool,
    /// Virtual time each live subscription was created (first-contact
    /// stream policy).
    pub(crate) sub_times: HashMap<SubscriptionId, Micros>,
    pub(crate) peer_subs: HashMap<u32, HashMap<String, crate::interest::PeerInterest>>,
    pub(crate) calls: HashMap<u64, CallState>,
    pub(crate) conn_calls: HashMap<ConnId, u64>,
    pub(crate) services: HashMap<String, usize>,
    pub(crate) svc_meta: Vec<Option<SvcMeta>>,
    pub(crate) server_conns: HashSet<ConnId>,
    /// The federation router engine, created lazily when this daemon
    /// opens or accepts its first link.
    pub(crate) router: Option<RouterEngine>,
    /// Link id for each router connection, and the reverse index.
    pub(crate) conn_links: HashMap<ConnId, LinkId>,
    pub(crate) link_conns: HashMap<LinkId, ConnId>,
    pub(crate) next_link_id: LinkId,
    /// Peers this daemon dialed (vs. accepted): these links self-heal by
    /// redialing after their connection breaks.
    pub(crate) link_dials: HashMap<ConnId, u32>,
    /// The rewrite rule for each dialed peer, kept across redials.
    pub(crate) link_rules: HashMap<u32, Option<crate::router::RewriteRule>>,
    /// Predicate tables mirrored from each link's latest summary: the
    /// remote side's filters (in the remote namespace) with their
    /// content predicates (`None` = unfiltered). Gates forwarded copies
    /// in `send_forwards` — a WAN copy matched only by rejecting
    /// predicates never leaves this daemon.
    #[allow(clippy::type_complexity)]
    pub(crate) link_preds: HashMap<
        LinkId,
        Vec<(
            SubjectFilter,
            Option<std::sync::Arc<crate::engine::filter::CompiledPredicate>>,
        )>,
    >,
    /// The [`RouteStamp`] the currently re-published forwarded envelope
    /// must carry (threaded into the engine via
    /// [`PubSource`](crate::engine::PubSource) so NAK repairs and
    /// guaranteed-delivery ledgers keep it).
    pub(crate) forward_stamp: Option<RouteStamp>,
    /// The already-routed forwarding decision for that envelope,
    /// consumed by `maybe_forward` instead of routing a second time.
    pub(crate) pending_forward: Option<(Option<RouteStamp>, Vec<ForwardTarget>)>,
    pub(crate) daemon_inc: u64,
    pub(crate) timer_targets: HashMap<u64, TimerTarget>,
    pub(crate) next_dyn_token: u64,
    pub(crate) next_corr: u64,
    pub(crate) pending: AppQueue,
    /// Service boxes exported during a handler, moved into the daemon's
    /// table after it returns.
    pub(crate) pending_services: Vec<(usize, Box<dyn ServiceObject>)>,
    /// Service indices withdrawn during a handler.
    pub(crate) dropped_services: Vec<usize>,
    /// Optional write-ahead-ledger mirror of the simulator's
    /// non-volatile store, opened when [`BusConfig::durable_dir`] is
    /// set. The simulated store stays authoritative (it survives
    /// simulated crashes by construction); the mirror receives every
    /// `Persist`/`Unpersist` so determinism checks can compare real
    /// on-disk ledger contents across seeded runs. Give each simulated
    /// daemon its own directory.
    pub(crate) nv_mirror: Option<NvStore>,
}

impl DaemonState {
    fn new(cfg: BusConfig) -> Self {
        let nv_mirror = cfg
            .durable_dir
            .is_some()
            .then(|| NvStore::open(&cfg).expect("open guaranteed-delivery ledger mirror"));
        DaemonState {
            engine: ShardedEngine::new(cfg, 0),
            nv_mirror,
            host32: 0,
            seg0: None,
            registry: Rc::new(RefCell::new(TypeRegistry::with_fundamentals())),
            trie: SubjectTrie::new(),
            app_meta: Vec::new(),
            my_filters: HashMap::new(),
            sub_preds: HashMap::new(),
            expansions: HashMap::new(),
            pending_announce_add: Vec::new(),
            pending_announce_remove: Vec::new(),
            announce_flush_armed: false,
            sub_times: HashMap::new(),
            peer_subs: HashMap::new(),
            calls: HashMap::new(),
            conn_calls: HashMap::new(),
            services: HashMap::new(),
            svc_meta: Vec::new(),
            server_conns: HashSet::new(),
            router: None,
            conn_links: HashMap::new(),
            link_conns: HashMap::new(),
            next_link_id: 0,
            link_dials: HashMap::new(),
            link_rules: HashMap::new(),
            link_preds: HashMap::new(),
            forward_stamp: None,
            pending_forward: None,
            daemon_inc: 1,
            timer_targets: HashMap::new(),
            next_dyn_token: TOK_DYN,
            next_corr: 1,
            pending: VecDeque::new(),
            pending_services: Vec::new(),
            dropped_services: Vec::new(),
        }
    }

    pub(crate) fn registry(&self) -> Rc<RefCell<TypeRegistry>> {
        self.registry.clone()
    }

    // ----- engine plumbing ----------------------------------------------------

    /// Performs a batch of shard-tagged engine actions against the
    /// simulated network.
    pub(crate) fn apply(&mut self, net: &mut Ctx<'_>, actions: Vec<(ShardId, Action)>) {
        if actions.is_empty() {
            return;
        }
        let mut transport = DaemonTransport { d: self, net };
        run_sharded_actions(actions, &mut transport);
    }

    // ----- packet transmission ------------------------------------------------

    pub(crate) fn send_packet_broadcast(&mut self, net: &mut Ctx<'_>, packet: &Packet) {
        let bytes = packet.encode();
        if let Some(seg) = self.seg0 {
            let _ = net.broadcast_on(seg, DAEMON_PORT, bytes);
        }
    }

    pub(crate) fn send_packet_unicast(&mut self, net: &mut Ctx<'_>, host: u32, packet: &Packet) {
        let bytes = packet.encode();
        let _ = net.send_datagram(
            SockAddr::new(infobus_netsim::HostId(host), DAEMON_PORT),
            bytes,
        );
    }

    // ----- publishing -----------------------------------------------------------

    pub(crate) fn publish(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        subject: &Subject,
        value: &Value,
        qos: QoS,
    ) -> Result<(), BusError> {
        // Semantic layer: synonym subjects collapse to canonical form
        // before the trie, the engine, or the wire see them.
        let canon;
        let subject = match self
            .engine
            .config()
            .semantic_map()
            .and_then(|m| m.canonicalize(subject.as_str()))
        {
            Some(c) => {
                self.engine.stats.sem_canonicalized += 1;
                canon = Subject::new(&c)?;
                &canon
            }
            None => subject,
        };
        // Publish gate: when every matching interest — local data
        // subscriptions and peer-announced filters — carries a rejecting
        // predicate, the publication is suppressed before marshalling
        // and sequencing. Link interest counts as unfiltered here; the
        // per-link gate runs at the forward hop, where subjects are in
        // the remote namespace.
        if !self.publish_interest_accepts(subject, value) {
            return Ok(());
        }
        let payload = wire::marshal_self_describing(value, &self.registry.borrow())
            .map_err(|e| BusError::Marshal(e.to_string()))?;
        self.publish_payload(net, app_idx, subject, qos, EnvelopeKind::Data, 0, payload)
    }

    /// The publisher-side content gate (see
    /// [`interest_accepts`](crate::engine::filter::interest_accepts) for
    /// the suppression rule). Returns `true` when the publication must
    /// be sent.
    fn publish_interest_accepts(&mut self, subject: &Subject, value: &Value) -> bool {
        let mut evals = 0u64;
        let mut matched_any = false;
        let mut accept = false;
        for (id, t) in self.trie.matches(subject) {
            if !matches!(t, crate::interest::SubTarget::App { .. }) {
                continue;
            }
            matched_any = true;
            match self.sub_preds.get(&id) {
                None => {
                    accept = true;
                    break;
                }
                Some(p) => {
                    evals += 1;
                    if p.eval(value) {
                        accept = true;
                        break;
                    }
                }
            }
        }
        if !accept {
            'peers: for peers in self.peer_subs.values() {
                for pi in peers.values() {
                    if !pi.filter.matches(subject) {
                        continue;
                    }
                    matched_any = true;
                    match &pi.pred {
                        None => {
                            accept = true;
                            break 'peers;
                        }
                        Some(p) => {
                            evals += 1;
                            if p.eval(value) {
                                accept = true;
                                break 'peers;
                            }
                        }
                    }
                }
            }
        }
        if !accept && self.link_interested(subject) {
            accept = true;
        }
        let send = accept || !matched_any;
        self.engine.stats.filt_evals += evals;
        if !send {
            self.engine.stats.filt_pub_suppressed += 1;
            self.engine.stats.filt_suppressed_bytes +=
                crate::engine::filter::approx_wire_bytes(value) as u64;
        }
        send
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn publish_payload(
        &mut self,
        net: &mut Ctx<'_>,
        app_idx: usize,
        subject: &Subject,
        qos: QoS,
        kind: EnvelopeKind,
        corr: u64,
        payload: impl Into<crate::buf::Bytes>,
    ) -> Result<(), BusError> {
        let payload: crate::buf::Bytes = payload.into();
        let (app_name, inc): (std::sync::Arc<str>, u64) =
            match self.app_meta.get(app_idx).and_then(|m| m.as_ref()) {
                Some(m) => (m.name.as_str().into(), m.inc),
                None if app_idx == APP_STATS => ("_daemon".into(), self.daemon_inc),
                None => ("router".into(), self.daemon_inc),
            };
        // Model the application→daemon IPC hop.
        let ipc = net.host_config().ipc_cost(payload.len());
        net.charge_cpu(ipc);
        // Sequence through the engine; for guaranteed publications the
        // pre-send actions log to non-volatile storage *before* the
        // message hits the wire.
        let source = PubSource {
            app: app_name,
            inc,
            route: self.forward_stamp,
        };
        let subject = self.engine.table().intern_subject(subject);
        let (env, actions) =
            self.engine
                .publish(net.now(), &source, &subject, qos, kind, corr, payload);
        self.apply(net, actions);

        // Local delivery to co-resident subscribers (excluding the
        // publishing application itself). Control envelopes route to the
        // local protocol handlers too: a service or responder on the
        // *same* host as the querier must answer just like a remote one.
        match kind {
            EnvelopeKind::Data => {
                let delivered = self.deliver_local(net, &env, Some(app_idx));
                if qos == QoS::Guaranteed && delivered > 0 {
                    self.engine.gd_local_done(&env);
                }
            }
            EnvelopeKind::DiscoverQuery => self.answer_discovery(net, &env),
            EnvelopeKind::DiscoverAnnounce => self.engine.discovery_collect(&env),
            EnvelopeKind::RmiQuery => self.answer_rmi_query(net, &env),
            EnvelopeKind::RmiOffer => self.collect_offer(net, &env),
        }

        // Queue or send.
        let send_actions = self.engine.enqueue(&env);
        self.apply(net, send_actions);
        // Forward locally published traffic to linked buses whose remote
        // side subscribes (re-published forwards consume their pending,
        // already-routed decision instead).
        self.maybe_forward(net, &env);
        Ok(())
    }

    // ----- receiving ---------------------------------------------------------------

    fn accept_envelope(&mut self, net: &mut Ctx<'_>, env: Envelope) {
        if env.stream.host == self.host32 {
            return; // Our own broadcast looped back; locals were served directly.
        }
        if !self.trie.matches_any(&env.subject) && !self.link_interested(&env.subject) {
            // The cheap filter: nothing on this host (or linked bus) cares.
            self.engine.stats.filtered += 1;
            return;
        }
        // The engine consults entitlement only on first contact with the
        // stream: if the stream began after our earliest matching
        // subscription we are owed it from sequence 1 (losses of early
        // messages are NAKed); otherwise we take it from here.
        let entitled = self
            .earliest_matching_sub(&env.subject)
            .is_some_and(|sub_at| env.stream_start >= sub_at);
        let actions = self
            .engine
            .handle(net.now(), Event::Envelope { env, entitled });
        self.apply(net, actions);
    }

    /// Handles a received stream digest: opens/extends gap detection.
    fn handle_seqsync(&mut self, net: &mut Ctx<'_>, entries: Vec<SyncEntry>) {
        for entry in entries {
            if entry.stream.host == self.host32 {
                continue;
            }
            let sub_at = self.earliest_matching_sub(&entry.subject);
            let actions = self
                .engine
                .handle(net.now(), Event::Digest { entry, sub_at });
            self.apply(net, actions);
        }
    }

    // ----- delivery --------------------------------------------------------------

    /// Routes a remotely received, in-order envelope.
    pub(crate) fn deliver_remote(&mut self, net: &mut Ctx<'_>, env: &Envelope) {
        match env.kind {
            EnvelopeKind::Data => {
                self.deliver_local(net, env, None);
                self.maybe_forward(net, env);
            }
            EnvelopeKind::DiscoverQuery => self.answer_discovery(net, env),
            EnvelopeKind::DiscoverAnnounce => self.engine.discovery_collect(env),
            EnvelopeKind::RmiQuery => self.answer_rmi_query(net, env),
            EnvelopeKind::RmiOffer => self.collect_offer(net, env),
        }
    }

    /// Delivers a data envelope to matching local applications; returns
    /// how many local deliveries were queued.
    pub(crate) fn deliver_local(
        &mut self,
        net: &mut Ctx<'_>,
        env: &Envelope,
        exclude_app: Option<usize>,
    ) -> usize {
        if env.kind != EnvelopeKind::Data {
            return 0;
        }
        let targets: Vec<(SubscriptionId, usize)> = self
            .trie
            .matches(&env.subject)
            .filter_map(|(id, t)| match t {
                SubTarget::App { app_idx } if Some(*app_idx) != exclude_app => Some((id, *app_idx)),
                _ => None,
            })
            .collect();
        if targets.is_empty() {
            return 0;
        }
        let value = match wire::unmarshal(&env.payload, &mut self.registry.borrow_mut()) {
            Ok(v) => v,
            Err(_) => {
                self.engine.stats.unmarshal_errors += 1;
                return 0;
            }
        };
        // Delivery gate: each subscription's own predicate decides its
        // copy. A rejected copy still counts as *consumed* for guaranteed
        // delivery — the subscriber saw and declined it, so the ledger
        // entry completes rather than retrying forever.
        let mut delivered = 0usize;
        let mut suppressed = 0usize;
        let ipc = net.host_config().ipc_cost(env.payload.len());
        for (id, app_idx) in targets {
            if let Some(p) = self.sub_preds.get(&id) {
                self.engine.stats.filt_evals += 1;
                if !p.eval(&value) {
                    suppressed += 1;
                    self.engine.stats.filt_delivery_suppressed += 1;
                    self.engine.stats.filt_suppressed_bytes += env.payload.len() as u64;
                    continue;
                }
            }
            delivered += 1;
            // Model the daemon→application IPC hop per recipient.
            net.charge_cpu(ipc);
            self.engine.stats.delivered += 1;
            self.engine.stats.delivered_bytes += env.payload.len() as u64;
            self.pending.push_back(AppEvent::Msg {
                app_idx,
                msg: crate::app::BusMessage {
                    subject: env.subject.subject().clone(),
                    value: value.clone(),
                    qos: env.qos,
                    redelivery: env.redelivery,
                },
            });
        }
        delivered + suppressed
    }

    // ----- guaranteed-delivery driver glue ----------------------------------------

    /// Reloads the guaranteed-delivery ledger written before any crash.
    fn gd_load_ledger(&mut self, net: &mut Ctx<'_>) {
        let mut envs = Vec::new();
        for key in net.nv_keys("gd/") {
            if let Some(bytes) = net.nv_get(&key) {
                if let Ok(env) = Envelope::decode(&mut bytes.as_slice(), self.engine.table()) {
                    envs.push(env);
                }
            }
        }
        let actions = self.engine.gd_load(envs);
        self.apply(net, actions);
    }

    /// Snapshot of per-subject remote interest for the pending guaranteed
    /// envelopes, fed to one shard's retry round. The interest map covers
    /// the union of every shard's pending subjects (each shard only
    /// consults the subjects its own ledger slice holds).
    fn gd_retry_round(&mut self, net: &mut Ctx<'_>, shard: ShardId) {
        let mut interest: HashMap<String, Vec<u32>> = HashMap::new();
        for s in self.engine.gd_subjects() {
            let Ok(subject) = Subject::new(&s) else {
                // Invalid subject: leave it out of the map and the engine
                // completes (abandons) its entries.
                continue;
            };
            let interested: Vec<u32> = self
                .peer_subs
                .iter()
                .filter(|(_, filters)| filters.values().any(|pi| pi.filter.matches(&subject)))
                .map(|(h, _)| *h)
                .collect();
            interest.insert(s, interested);
        }
        let actions = self.engine.handle_gd_retry(net.now(), shard, interest);
        self.apply(net, actions);
    }

    // ----- observability plane -----------------------------------------------------

    /// This daemon's identity element on the stats subject.
    fn stats_daemon_name(&self) -> String {
        format!("d{}", self.host32)
    }

    /// A host name reduced to a valid subject element (defensive: host
    /// names in simulations are already plain identifiers).
    fn subject_element(raw: &str) -> String {
        let cleaned: String = raw
            .chars()
            .map(|c| {
                if c.is_ascii_graphic() && c != '.' && c != '*' && c != '>' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        if cleaned.is_empty() {
            "unknown".to_owned()
        } else {
            cleaned
        }
    }

    /// Publishes the current [`BusStats`] snapshot as a self-describing
    /// object on `_INBUS.STATS.<host>.<daemon>` and re-arms the timer.
    fn publish_stats(&mut self, net: &mut Ctx<'_>) {
        let host = Self::subject_element(&net.host_name());
        let daemon = self.stats_daemon_name();
        // The published snapshot fans the shards in: one merged object.
        let mut stats = self.engine.merged_stats();
        self.stamp_route_stats(&mut stats);
        let obj = stats.to_object(&host, &daemon, net.now());
        let text = format!("{STATS_SUBJECT_PREFIX}.{host}.{daemon}");
        if let Ok(subject) = Subject::new(&text) {
            let value = Value::Object(Box::new(obj));
            let _ = self.publish(net, APP_STATS, &subject, &value, QoS::Reliable);
            self.engine.stats.stats_published += 1;
        }
        net.set_timer(self.engine.config().stats_period_us, TOK_STATS);
    }
}

// ---------------------------------------------------------------------------
// DaemonTransport: performs engine actions against the simulator
// ---------------------------------------------------------------------------

/// The netsim [`Transport`]: broadcasts ride the first attached segment,
/// timers map onto the daemon's reserved tokens, deliveries route through
/// the subject trie, and the guaranteed-delivery ledger lives in the
/// simulator's non-volatile store.
struct DaemonTransport<'a, 'b> {
    d: &'a mut DaemonState,
    net: &'a mut Ctx<'b>,
}

impl Transport for DaemonTransport<'_, '_> {
    fn broadcast(&mut self, packet: Packet) {
        self.d.send_packet_broadcast(self.net, &packet);
    }

    fn unicast(&mut self, host: u32, packet: Packet) {
        self.d.send_packet_unicast(self.net, host, &packet);
    }

    fn set_timer(&mut self, delay_us: Micros, timer: TimerKind) {
        // Untagged fallback: attribute to shard 0 (only correct when
        // unsharded; the sharded path below is what apply() uses).
        self.net.set_timer(delay_us, shard_token(0, timer));
    }

    fn deliver(&mut self, env: Envelope) {
        self.d.deliver_remote(self.net, &env);
    }

    fn deliver_gd(&mut self, env: Envelope) {
        // A subscriber may have (re)attached on this very host after the
        // daemon reloaded its ledger.
        if self.d.deliver_local(self.net, &env, None) > 0 {
            self.d.engine.gd_local_done(&env);
        }
    }

    fn persist(&mut self, key: String, bytes: Vec<u8>) {
        if let Some(nv) = &mut self.d.nv_mirror {
            nv.persist(0, &key, &bytes);
        }
        self.net.nv_put(&key, bytes);
    }

    fn unpersist(&mut self, key: &str) {
        if let Some(nv) = &mut self.d.nv_mirror {
            nv.unpersist(0, key);
        }
        self.net.nv_delete(key);
    }
}

impl ShardTransport for DaemonTransport<'_, '_> {
    fn set_shard_timer(&mut self, shard: ShardId, delay_us: Micros, timer: TimerKind) {
        self.net.set_timer(delay_us, shard_token(shard, timer));
    }

    fn persist_shard(&mut self, shard: ShardId, key: String, bytes: Vec<u8>) {
        if let Some(nv) = &mut self.d.nv_mirror {
            nv.persist(shard, &key, &bytes);
        }
        self.net.nv_put(&key, bytes);
    }

    fn unpersist_shard(&mut self, shard: ShardId, key: &str) {
        if let Some(nv) = &mut self.d.nv_mirror {
            nv.unpersist(shard, key);
        }
        self.net.nv_delete(key);
    }
}

// ---------------------------------------------------------------------------
// The daemon process
// ---------------------------------------------------------------------------

/// The bus daemon process: one per host.
///
/// Owns the local applications ([`BusApp`](crate::BusApp)) and exported services
/// ([`ServiceObject`]); drives the protocol [`Engine`](crate::engine::Engine)
/// (one per shard, behind a [`ShardedEngine`](crate::engine::ShardedEngine))
/// for reliable and guaranteed delivery, and implements discovery windows,
/// RMI, and router links on top.
pub struct BusDaemon {
    pub(crate) state: DaemonState,
    pub(crate) apps: Vec<Option<AppSlot>>,
    pub(crate) services: Vec<Option<Box<dyn ServiceObject>>>,
}

impl BusDaemon {
    /// Creates a daemon with the given configuration.
    pub fn new(cfg: BusConfig) -> Self {
        BusDaemon {
            state: DaemonState::new(cfg),
            apps: Vec::new(),
            services: Vec::new(),
        }
    }

    /// The daemon's protocol counters, merged across engine shards.
    pub fn stats(&self) -> BusStats {
        let mut stats = self.state.engine.merged_stats();
        if let Some(nv) = &self.state.nv_mirror {
            nv.stamp_stats(&mut stats);
        }
        self.state.stamp_route_stats(&mut stats);
        stats
    }

    /// The merged counters together with the per-shard breakdown (depth
    /// and occupancy maxima survive only in the breakdown).
    pub fn sharded_stats(&self) -> ShardedStats {
        let mut stats = self.state.engine.sharded_stats();
        if let Some(nv) = &self.state.nv_mirror {
            nv.stamp_stats(&mut stats.merged);
        }
        self.state.stamp_route_stats(&mut stats.merged);
        stats
    }

    /// Deterministic fault injection for federation tests: garbles this
    /// daemon's router tables, stamp counters, and dedup windows. The
    /// next self-stabilization pass must detect and repair all of it.
    /// No-op on daemons that run no router.
    pub fn scramble_router(&mut self, seed: u64) {
        if let Some(r) = self.state.router.as_mut() {
            r.scramble(seed);
        }
    }

    /// The daemon's shared type registry.
    pub fn registry(&self) -> Rc<RefCell<TypeRegistry>> {
        self.state.registry()
    }
}

impl Process for BusDaemon {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.state.host32 = ctx.host().0;
        self.state.engine.set_host(ctx.host().0);
        self.state.daemon_inc = ctx.now().max(1);
        self.state.seg0 = ctx.segments().first().copied();
        let _ = ctx.bind(DAEMON_PORT);
        let _ = ctx.listen_conn(RMI_PORT);
        // Soft-state resync: ask peers to re-announce their tables.
        self.state.send_packet_broadcast(
            ctx,
            &Packet::SubResync {
                host: self.state.host32,
            },
        );
        let cfg = self.state.engine.config();
        let (nak_check, announce, sync, stats_period) = (
            cfg.nak_check_us,
            cfg.announce_period_us,
            cfg.sync_period_us,
            cfg.stats_period_us,
        );
        // Each shard scans its own gaps and digests its own idle streams,
        // so the periodic engine timers are per shard (tagged tokens).
        let shards = self.state.engine.shard_count();
        for shard in 0..shards {
            ctx.set_timer(nak_check, shard_token(shard, TimerKind::NakScan));
        }
        ctx.set_timer(announce, TOK_ANNOUNCE);
        for shard in 0..shards {
            ctx.set_timer(sync, shard_token(shard, TimerKind::Sync));
        }
        // The observability plane: every daemon can describe its own
        // counters, and publishes them when a stats period is configured.
        BusStats::register_type(&mut self.state.registry.borrow_mut());
        if stats_period > 0 {
            ctx.set_timer(stats_period, TOK_STATS);
        }
        // Reload the guaranteed-delivery ledger written before any crash.
        self.state.gd_load_ledger(ctx);
        self.drain(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let Ok(packet) = Packet::decode(&dgram.payload, self.state.engine.table()) else {
            return;
        };
        match packet {
            Packet::Data { envelopes, .. } => {
                for env in envelopes {
                    self.state.accept_envelope(ctx, env);
                }
            }
            Packet::Nak {
                stream,
                subject,
                requester,
                missing,
            } => {
                let actions = self.state.engine.handle(
                    ctx.now(),
                    Event::Nak {
                        stream,
                        subject,
                        requester,
                        missing,
                    },
                );
                self.state.apply(ctx, actions);
            }
            Packet::GapSkip {
                stream,
                subject,
                through,
            } => {
                let actions = self.state.engine.handle(
                    ctx.now(),
                    Event::GapSkip {
                        stream,
                        subject,
                        through,
                    },
                );
                self.state.apply(ctx, actions);
            }
            Packet::Ack {
                stream,
                subject,
                seq,
                from_host,
            } => {
                let actions = self.state.engine.handle(
                    ctx.now(),
                    Event::Ack {
                        stream,
                        subject,
                        seq,
                        from_host,
                    },
                );
                self.state.apply(ctx, actions);
            }
            Packet::SubAnnounce {
                host,
                full,
                add,
                remove,
            } => {
                self.state.handle_sub_announce(host, full, add, remove);
            }
            Packet::SubResync { host } => {
                if host != self.state.host32 {
                    self.state.announce_full(ctx);
                }
            }
            Packet::SeqSync { entries } => {
                self.state.handle_seqsync(ctx, entries);
            }
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some((shard, kind)) = decode_shard_token(token) {
            if shard < self.state.engine.shard_count() {
                match kind {
                    TimerKind::GdRetry => self.state.gd_retry_round(ctx, shard),
                    kind => {
                        let actions = self.state.engine.handle_timer(ctx.now(), shard, kind);
                        self.state.apply(ctx, actions);
                    }
                }
            }
            self.drain(ctx);
            return;
        }
        match token {
            TOK_STATS => self.state.publish_stats(ctx),
            TOK_ANN_FLUSH => self.state.flush_announcements(ctx),
            TOK_ANNOUNCE => {
                self.state.announce_full(ctx);
                ctx.set_timer(self.state.engine.config().announce_period_us, TOK_ANNOUNCE);
            }
            TOK_RT_SUMMARY => self.state.router_timer(ctx, RouterTimer::Summary),
            TOK_RT_STAB => self.state.router_timer(ctx, RouterTimer::Stabilize),
            dyn_token => {
                let Some(target) = self.state.timer_targets.remove(&dyn_token) else {
                    return;
                };
                match target {
                    TimerTarget::App { app_idx, token } => {
                        self.state
                            .pending
                            .push_back(AppEvent::Timer { app_idx, token });
                    }
                    TimerTarget::DiscoveryClose { corr } => self.state.close_discovery(ctx, corr),
                    TimerTarget::OfferWindowClose { call } => {
                        self.state.offer_window_closed(ctx, call)
                    }
                    TimerTarget::LinkRedial { peer } => {
                        // Only redial while no live dial to this peer
                        // exists (a racing reconnect may have won).
                        if !self.state.link_dials.values().any(|p| *p == peer) {
                            let rewrite = self.state.link_rules.get(&peer).cloned().unwrap_or(None);
                            self.state.open_link(ctx, peer, rewrite);
                        }
                    }
                    TimerTarget::RmiTimeout { call } => {
                        let waiting = self
                            .state
                            .calls
                            .get(&call)
                            .map(|c| matches!(c.phase, CallPhase::Connecting { .. }))
                            .unwrap_or(false);
                        if waiting {
                            self.state.call_failed(ctx, call, RmiError::Timeout);
                        }
                    }
                }
            }
        }
        self.drain(ctx);
    }

    fn on_conn(&mut self, ctx: &mut Ctx<'_>, event: ConnEvent) {
        match event {
            ConnEvent::Accepted { conn, .. } => {
                self.state.server_conns.insert(conn);
            }
            ConnEvent::Connected { .. } => {}
            ConnEvent::Data { conn, msg } => {
                if let Ok(Some(rmsg)) = RouterMsg::decode(&msg, self.state.engine.table()) {
                    self.state.handle_router_msg(ctx, conn, rmsg);
                    self.drain(ctx);
                    return;
                }
                let Ok(msg) = RmiMsg::decode(&msg) else {
                    return;
                };
                match msg {
                    RmiMsg::Request {
                        call,
                        service,
                        op,
                        args,
                    } => {
                        self.state
                            .handle_rmi_request(ctx, conn, call, service, op, args);
                    }
                    RmiMsg::Reply {
                        call,
                        ok,
                        value,
                        error,
                    } => {
                        let call_id = call.2;
                        if self.state.conn_calls.get(&conn) == Some(&call_id) {
                            self.state.conn_calls.remove(&conn);
                            let result = if ok {
                                let mut registry = self.state.registry.borrow_mut();
                                match wire::unmarshal(&value, &mut registry) {
                                    Ok(v) => Ok(v),
                                    Err(e) => Err(RmiError::App(format!("malformed reply: {e}"))),
                                }
                            } else if let Some(msg) = error.strip_prefix("bad-operation: ") {
                                Err(RmiError::BadOperation(msg.to_owned()))
                            } else {
                                Err(RmiError::App(error))
                            };
                            self.state.complete_call(ctx, call_id, result);
                        }
                    }
                }
            }
            ConnEvent::Closed { conn } => {
                self.state.server_conns.remove(&conn);
                self.state.close_link(ctx, conn);
                if let Some(call_id) = self.state.conn_calls.remove(&conn) {
                    let waiting = self
                        .state
                        .calls
                        .get(&call_id)
                        .map(|c| matches!(c.phase, CallPhase::Connecting { .. }))
                        .unwrap_or(false);
                    if waiting {
                        self.state
                            .call_failed(ctx, call_id, RmiError::ConnectionFailed);
                    }
                }
            }
        }
        self.drain(ctx);
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_>, cmd: Box<dyn Any>) {
        match cmd.downcast::<crate::fabric::AttachApp>() {
            Ok(attach) => {
                let attach = *attach;
                self.attach(ctx, &attach.name, attach.app);
            }
            Err(cmd) => match cmd.downcast::<crate::fabric::DetachApp>() {
                Ok(detach) => self.detach(ctx, &detach.name),
                Err(cmd) => match cmd.downcast::<crate::fabric::AppCommand>() {
                    Ok(appcmd) => {
                        let appcmd = *appcmd;
                        if let Some(app_idx) = self.app_idx(&appcmd.name) {
                            self.state
                                .pending
                                .push_back(crate::apps::AppEvent::Command {
                                    app_idx,
                                    cmd: appcmd.cmd,
                                });
                        }
                    }
                    Err(cmd) => {
                        if let Ok(link) = cmd.downcast::<crate::fabric::LinkBuses>() {
                            let link = *link;
                            self.state.open_link(ctx, link.peer.0, link.rewrite);
                        }
                    }
                },
            },
        }
        self.drain(ctx);
    }
}
