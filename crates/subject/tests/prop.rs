//! Randomized tests for subjects, filters, and the subscription trie.
//!
//! Deterministic property testing: inputs are generated from a seeded
//! [`SimRng`], so every run explores the same (large) sample of the input
//! space and failures reproduce exactly.

use infobus_netsim::SimRng;
use infobus_subject::{Subject, SubjectFilter, SubjectTrie};

const CASES: usize = 300;

/// A valid subject element over `[a-z0-9_-]{1,8}`.
fn element(r: &mut SimRng) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
    let len = r.gen_range_inclusive(1, 8) as usize;
    (0..len)
        .map(|_| CHARS[r.gen_range_inclusive(0, CHARS.len() as u64 - 1) as usize] as char)
        .collect()
}

/// A valid subject of 1..=6 elements.
fn subject(r: &mut SimRng) -> Subject {
    let n = r.gen_range_inclusive(1, 6);
    let elems: Vec<String> = (0..n).map(|_| element(r)).collect();
    Subject::new(&elems.join(".")).expect("generated subject is valid")
}

/// A valid filter of 1..=5 elements plus an optional `>` tail, with `*`
/// wildcards mixed in.
fn filter(r: &mut SimRng) -> SubjectFilter {
    let n = r.gen_range_inclusive(1, 5);
    let mut elems: Vec<String> = (0..n)
        .map(|_| {
            if r.gen_f64() < 0.2 {
                "*".to_owned()
            } else {
                element(r)
            }
        })
        .collect();
    if r.gen_f64() < 0.5 {
        elems.push(">".to_owned());
    }
    SubjectFilter::new(&elems.join(".")).expect("generated filter is valid")
}

/// A deliberately naive matcher used as the test oracle.
fn reference_match(filter: &str, subject: &[&str]) -> bool {
    let felems: Vec<&str> = filter.split('.').collect();
    fn go(f: &[&str], s: &[&str]) -> bool {
        match f.first() {
            None => s.is_empty(),
            Some(&">") => !s.is_empty(),
            Some(&"*") => !s.is_empty() && go(&f[1..], &s[1..]),
            Some(&lit) => !s.is_empty() && s[0] == lit && go(&f[1..], &s[1..]),
        }
    }
    go(&felems, subject)
}

/// Every valid subject round-trips through its textual form.
#[test]
fn subject_text_round_trip() {
    let mut r = SimRng::seed_from_u64(1);
    for _ in 0..CASES {
        let s = subject(&mut r);
        let again = Subject::new(s.as_str()).unwrap();
        assert_eq!(s, again);
        assert_eq!(s.depth(), s.elements().count());
    }
}

/// A subject used as an exact filter matches itself and nothing with a
/// different depth.
#[test]
fn exact_filter_matches_self() {
    let mut r = SimRng::seed_from_u64(2);
    for _ in 0..CASES {
        let s = subject(&mut r);
        let f = SubjectFilter::exact(&s);
        assert!(f.matches(&s));
        let deeper = s.child("zz").unwrap();
        assert!(!f.matches(&deeper));
    }
}

/// `filter.matches(subject)` agrees with the naive reference matcher.
#[test]
fn filter_matches_reference() {
    let mut r = SimRng::seed_from_u64(3);
    for _ in 0..CASES * 4 {
        let f = filter(&mut r);
        let s = subject(&mut r);
        let reference = reference_match(f.as_str(), &s.elements().collect::<Vec<_>>());
        assert_eq!(f.matches(&s), reference, "filter={f} subject={s}");
    }
}

/// The trie returns exactly the set of subscriptions whose filter matches
/// the subject, per a linear-scan reference.
#[test]
fn trie_agrees_with_linear_scan() {
    let mut r = SimRng::seed_from_u64(4);
    for _ in 0..CASES {
        let filters: Vec<SubjectFilter> = (0..r.gen_range_inclusive(1, 19))
            .map(|_| filter(&mut r))
            .collect();
        let subjects: Vec<Subject> = (0..r.gen_range_inclusive(1, 19))
            .map(|_| subject(&mut r))
            .collect();
        let mut trie = SubjectTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        for s in &subjects {
            let mut got: Vec<usize> = trie.matches(s).map(|(_, v)| *v).collect();
            got.sort_unstable();
            got.dedup();
            let mut want: Vec<usize> = filters
                .iter()
                .enumerate()
                .filter(|(_, f)| f.matches(s))
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "subject={s}");
            assert_eq!(trie.matches_any(s), !want.is_empty());
        }
    }
}

/// Removing every subscription empties the trie; removals only affect the
/// removed subscription.
#[test]
fn trie_remove_is_precise() {
    let mut r = SimRng::seed_from_u64(5);
    for _ in 0..CASES {
        let filters: Vec<SubjectFilter> = (0..r.gen_range_inclusive(1, 14))
            .map(|_| filter(&mut r))
            .collect();
        let s = subject(&mut r);
        let mut trie = SubjectTrie::new();
        let ids: Vec<_> = filters
            .iter()
            .enumerate()
            .map(|(i, f)| (trie.insert(f, i), i))
            .collect();
        let mut remaining: Vec<usize> = (0..filters.len()).collect();
        for (id, i) in ids {
            assert_eq!(trie.remove(id), Some(i));
            remaining.retain(|&x| x != i);
            let mut got: Vec<usize> = trie.matches(&s).map(|(_, v)| *v).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&x| filters[x].matches(&s))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
        assert!(trie.is_empty());
    }
}

/// If `a.covers(b)` then every subject matched by `b` is matched by `a`.
#[test]
fn covers_is_sound() {
    let mut r = SimRng::seed_from_u64(6);
    for _ in 0..CASES * 4 {
        let a = filter(&mut r);
        let b = filter(&mut r);
        let s = subject(&mut r);
        if a.covers(&b) && b.matches(&s) {
            assert!(a.matches(&s), "a={a} b={b} s={s}");
        }
    }
}
