//! Property-based tests for subjects, filters, and the subscription trie.

use infobus_subject::{Subject, SubjectFilter, SubjectTrie};
use proptest::prelude::*;

/// Strategy producing a valid subject element.
fn element() -> impl Strategy<Value = String> {
    "[a-z0-9_-]{1,8}"
}

/// Strategy producing a valid subject of 1..=6 elements.
fn subject() -> impl Strategy<Value = Subject> {
    prop::collection::vec(element(), 1..=6)
        .prop_map(|elems| Subject::new(&elems.join(".")).expect("generated subject is valid"))
}

/// Strategy producing a valid filter of 1..=6 elements, with wildcards.
fn filter() -> impl Strategy<Value = SubjectFilter> {
    let elem = prop_oneof![
        4 => element(),
        1 => Just("*".to_owned()),
    ];
    (prop::collection::vec(elem, 1..=5), prop::bool::ANY).prop_map(|(mut elems, tail)| {
        if tail {
            elems.push(">".to_owned());
        }
        SubjectFilter::new(&elems.join(".")).expect("generated filter is valid")
    })
}

proptest! {
    /// Every valid subject round-trips through its textual form.
    #[test]
    fn subject_text_round_trip(s in subject()) {
        let again = Subject::new(s.as_str()).unwrap();
        prop_assert_eq!(&s, &again);
        prop_assert_eq!(s.depth(), s.elements().count());
    }

    /// A subject used as an exact filter matches itself and nothing with a
    /// different depth.
    #[test]
    fn exact_filter_matches_self(s in subject()) {
        let f = SubjectFilter::exact(&s);
        prop_assert!(f.matches(&s));
        let deeper = s.child("zz").unwrap();
        prop_assert!(!f.matches(&deeper));
    }

    /// `filter.matches(subject)` agrees with a naive reference matcher.
    #[test]
    fn filter_matches_reference(f in filter(), s in subject()) {
        let reference = reference_match(
            f.as_str(),
            &s.elements().collect::<Vec<_>>(),
        );
        prop_assert_eq!(f.matches(&s), reference, "filter={} subject={}", f, s);
    }

    /// The trie returns exactly the set of subscriptions whose filter
    /// matches the subject, per a linear scan reference.
    #[test]
    fn trie_agrees_with_linear_scan(
        filters in prop::collection::vec(filter(), 1..20),
        subjects in prop::collection::vec(subject(), 1..20),
    ) {
        let mut trie = SubjectTrie::new();
        let mut ids = Vec::new();
        for (i, f) in filters.iter().enumerate() {
            ids.push(trie.insert(f, i));
        }
        for s in &subjects {
            let mut got: Vec<usize> = trie.matches(s).map(|(_, v)| *v).collect();
            got.sort_unstable();
            got.dedup();
            let mut want: Vec<usize> = filters
                .iter()
                .enumerate()
                .filter(|(_, f)| f.matches(s))
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(&got, &want, "subject={}", s);
            prop_assert_eq!(trie.matches_any(s), !want.is_empty());
        }
    }

    /// Removing every subscription empties the trie; removals only affect
    /// the removed subscription.
    #[test]
    fn trie_remove_is_precise(
        filters in prop::collection::vec(filter(), 1..15),
        s in subject(),
    ) {
        let mut trie = SubjectTrie::new();
        let ids: Vec<_> = filters.iter().enumerate().map(|(i, f)| (trie.insert(f, i), i)).collect();
        let mut remaining: Vec<usize> = (0..filters.len()).collect();
        for (id, i) in ids {
            assert_eq!(trie.remove(id), Some(i));
            remaining.retain(|&r| r != i);
            let mut got: Vec<usize> = trie.matches(&s).map(|(_, v)| *v).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&r| filters[r].matches(&s))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
        prop_assert!(trie.is_empty());
    }

    /// If `a.covers(b)` then every subject matched by `b` is matched by `a`.
    #[test]
    fn covers_is_sound(a in filter(), b in filter(), s in subject()) {
        if a.covers(&b) && b.matches(&s) {
            prop_assert!(a.matches(&s), "a={} b={} s={}", a, b, s);
        }
    }
}

/// A deliberately naive matcher used as the test oracle.
fn reference_match(filter: &str, subject: &[&str]) -> bool {
    let felems: Vec<&str> = filter.split('.').collect();
    fn go(f: &[&str], s: &[&str]) -> bool {
        match f.first() {
            None => s.is_empty(),
            Some(&">") => !s.is_empty(),
            Some(&"*") => !s.is_empty() && go(&f[1..], &s[1..]),
            Some(&lit) => !s.is_empty() && s[0] == lit && go(&f[1..], &s[1..]),
        }
    }
    go(&felems, subject)
}
