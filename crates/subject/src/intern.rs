//! Subject interning: dense integer ids for subject names.
//!
//! Every layer of the bus names messages by subject, and before
//! interning every layer paid for that name separately: the string was
//! re-validated, re-hashed, and re-cloned at each hop of the hot path
//! (publish → sequence → batch → fan-out). A [`SubjectTable`] collapses
//! that cost to one lookup: the first time a daemon sees a subject it
//! validates the text once and assigns the next dense [`SubjectId`];
//! every later use travels as an [`InternedSubject`] — the id plus a
//! reference-counted handle to the *single* shared [`Subject`] value —
//! so clones are a pointer bump and driver-side caches (trie-match
//! memoization, per-subject routing) can key on a `u32` instead of
//! hashing text.
//!
//! # Ids are per-daemon, never on the wire
//!
//! Two daemons intern subjects in whatever order traffic reaches them,
//! so the same subject may get different ids on different hosts. Ids
//! are therefore **driver-local accelerators only**: the wire format
//! and the durable ledger keep full subject strings, translated at
//! frame encode/decode, and every equality, hash, and ordering of an
//! [`InternedSubject`] is defined by the subject *text*, not the id.
//! Correctness never depends on two tables agreeing.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

use crate::{Subject, SubjectError};

/// Dense per-daemon identifier of an interned subject (`0..table.len()`).
///
/// Ids are assigned in first-appearance order by a [`SubjectTable`] and
/// are meaningful only to the daemon that assigned them — see the
/// module docs. Use them as cache keys; never compare ids from
/// different tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubjectId(pub u32);

impl SubjectId {
    /// The id as a plain index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SubjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A subject that has been interned in some daemon's [`SubjectTable`]:
/// the validated [`Subject`] plus the dense [`SubjectId`] the table
/// assigned it.
///
/// Cloning is two pointer-sized copies (the id and a reference-count
/// bump on the shared text). Equality, hashing, and ordering all follow
/// the subject **text** — the id is deliberately excluded, so values
/// interned by different tables (or different shards at different
/// times) compare exactly like the underlying strings and map/set
/// behavior is identical to the pre-interning code.
#[derive(Clone)]
pub struct InternedSubject {
    id: SubjectId,
    name: Subject,
}

impl InternedSubject {
    /// Pairs an already-validated subject with its table-assigned id.
    /// Exposed for drivers that maintain their own side tables; normal
    /// code obtains values from [`SubjectTable::intern`].
    pub fn from_parts(id: SubjectId, name: Subject) -> InternedSubject {
        InternedSubject { id, name }
    }

    /// The dense id assigned by the interning table.
    pub fn id(&self) -> SubjectId {
        self.id
    }

    /// The underlying validated subject.
    pub fn subject(&self) -> &Subject {
        &self.name
    }

    /// The subject's textual form.
    pub fn as_str(&self) -> &str {
        self.name.as_str()
    }

    /// Unwraps into the underlying [`Subject`].
    pub fn into_subject(self) -> Subject {
        self.name
    }
}

impl PartialEq for InternedSubject {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for InternedSubject {}

impl std::hash::Hash for InternedSubject {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

impl PartialOrd for InternedSubject {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InternedSubject {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.name.cmp(&other.name)
    }
}

impl PartialEq<str> for InternedSubject {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for InternedSubject {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl AsRef<str> for InternedSubject {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl std::borrow::Borrow<str> for InternedSubject {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl std::ops::Deref for InternedSubject {
    type Target = Subject;

    fn deref(&self) -> &Subject {
        &self.name
    }
}

impl fmt::Display for InternedSubject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for InternedSubject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InternedSubject({}{})", self.as_str(), self.id)
    }
}

/// The per-daemon intern table: subject text → dense [`SubjectId`],
/// first-appearance ordered.
///
/// The table is a cheap cloneable handle (shards of one daemon share a
/// single table, so an id means the same thing on every shard). Lookups
/// of already-interned subjects take a read lock only; a miss validates
/// the text, assigns the next id under the write lock, and stores the
/// one shared [`Subject`] every later [`InternedSubject`] will alias.
#[derive(Clone, Default)]
pub struct SubjectTable {
    inner: Arc<TableInner>,
}

#[derive(Default)]
struct TableInner {
    /// text → id. Keyed by the same `Subject` values `rev` holds, so
    /// the text allocation exists exactly once per distinct subject.
    map: RwLock<HashMap<Subject, u32>>,
    /// id → subject, dense (index == id).
    rev: RwLock<Vec<Subject>>,
}

impl SubjectTable {
    /// Creates an empty table.
    pub fn new() -> SubjectTable {
        SubjectTable::default()
    }

    /// Interns `text`, validating it on first appearance.
    ///
    /// # Errors
    ///
    /// Returns the [`SubjectError`] from subject validation if `text`
    /// is not a well-formed plain subject.
    pub fn intern(&self, text: &str) -> Result<InternedSubject, SubjectError> {
        self.intern_full(text).map(|(s, _)| s)
    }

    /// Interns `text` and reports whether this call created the entry
    /// (`true` exactly once per distinct subject per table) — the hook
    /// the stats plane uses to count interned subjects.
    ///
    /// # Errors
    ///
    /// Returns the [`SubjectError`] from subject validation if `text`
    /// is not a well-formed plain subject.
    pub fn intern_full(&self, text: &str) -> Result<(InternedSubject, bool), SubjectError> {
        if let Some(found) = self.get(text) {
            return Ok((found, false));
        }
        let name = Subject::new(text)?;
        Ok(self.insert(name))
    }

    /// Interns an already-validated subject (no re-validation).
    pub fn intern_subject(&self, name: &Subject) -> InternedSubject {
        if let Some(found) = self.get(name.as_str()) {
            return found;
        }
        self.insert(name.clone()).0
    }

    fn insert(&self, name: Subject) -> (InternedSubject, bool) {
        let mut map = self.inner.map.write().unwrap_or_else(|e| e.into_inner());
        // Double-check under the write lock: another thread may have
        // interned the same subject between our read miss and here.
        if let Some(&id) = map.get(name.as_str()) {
            let rev = self.inner.rev.read().unwrap_or_else(|e| e.into_inner());
            let stored = rev[id as usize].clone();
            return (InternedSubject::from_parts(SubjectId(id), stored), false);
        }
        let mut rev = self.inner.rev.write().unwrap_or_else(|e| e.into_inner());
        let id = u32::try_from(rev.len()).expect("more than u32::MAX distinct subjects");
        rev.push(name.clone());
        map.insert(name.clone(), id);
        (InternedSubject::from_parts(SubjectId(id), name), true)
    }

    /// Looks up `text` without interning it; `None` if never seen.
    pub fn get(&self, text: &str) -> Option<InternedSubject> {
        let map = self.inner.map.read().unwrap_or_else(|e| e.into_inner());
        let &id = map.get(text)?;
        // `rev` is append-only and `map` never points past its end, so
        // the indexed read cannot fail.
        let rev = self.inner.rev.read().unwrap_or_else(|e| e.into_inner());
        let stored = rev[id as usize].clone();
        Some(InternedSubject::from_parts(SubjectId(id), stored))
    }

    /// Resolves an id previously assigned by **this** table; `None` if
    /// the id was never assigned.
    pub fn resolve(&self, id: SubjectId) -> Option<Subject> {
        let rev = self.inner.rev.read().unwrap_or_else(|e| e.into_inner());
        rev.get(id.index()).cloned()
    }

    /// Number of distinct subjects interned so far.
    pub fn len(&self) -> usize {
        self.inner
            .rev
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for SubjectTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubjectTable(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_first_appearance_ordered() {
        let t = SubjectTable::new();
        let a = t.intern("news.equity.gmc").unwrap();
        let b = t.intern("fab5.cc.litho8").unwrap();
        let a2 = t.intern("news.equity.gmc").unwrap();
        assert_eq!(a.id(), SubjectId(0));
        assert_eq!(b.id(), SubjectId(1));
        assert_eq!(a2.id(), a.id());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn round_trips_id_to_text_to_id() {
        let t = SubjectTable::new();
        for text in ["a", "a.b", "a.b.c", "zz.top"] {
            let s = t.intern(text).unwrap();
            let back = t.resolve(s.id()).unwrap();
            assert_eq!(back.as_str(), text);
            let again = t.intern(back.as_str()).unwrap();
            assert_eq!(again.id(), s.id());
        }
    }

    #[test]
    fn interned_subjects_share_one_text_allocation() {
        let t = SubjectTable::new();
        let a = t.intern("news.equity.gmc").unwrap();
        let b = t.intern("news.equity.gmc").unwrap();
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn equality_hash_and_order_follow_text_not_id() {
        let t1 = SubjectTable::new();
        let t2 = SubjectTable::new();
        t2.intern("zz.filler").unwrap(); // skew t2's ids
        let a = t1.intern("news.equity.gmc").unwrap();
        let b = t2.intern("news.equity.gmc").unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(a, b);
        use std::collections::HashSet;
        let set: HashSet<InternedSubject> = [a.clone(), b].into_iter().collect();
        assert_eq!(set.len(), 1);
        let c = t1.intern("news.equity.ibm").unwrap();
        assert!(a < c);
        assert_eq!(a, "news.equity.gmc");
    }

    #[test]
    fn rejects_invalid_text() {
        let t = SubjectTable::new();
        assert!(t.intern("bad..subject").is_err());
        assert!(t.intern("wild.*").is_err());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn intern_full_reports_first_appearance() {
        let t = SubjectTable::new();
        assert!(t.intern_full("a.b").unwrap().1);
        assert!(!t.intern_full("a.b").unwrap().1);
        assert!(t.intern_full("a.c").unwrap().1);
    }

    #[test]
    fn get_does_not_intern() {
        let t = SubjectTable::new();
        assert!(t.get("a.b").is_none());
        t.intern("a.b").unwrap();
        assert_eq!(t.get("a.b").unwrap().id(), SubjectId(0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn shared_handle_sees_all_interns() {
        let t = SubjectTable::new();
        let t2 = t.clone();
        let a = t.intern("x.y").unwrap();
        assert_eq!(t2.get("x.y").unwrap().id(), a.id());
        assert_eq!(t2.len(), 1);
    }
}
