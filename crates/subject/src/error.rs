use std::fmt;

/// Errors produced when parsing a [`Subject`](crate::Subject) or
/// [`SubjectFilter`](crate::SubjectFilter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubjectError {
    /// The string was empty.
    Empty,
    /// The string exceeded [`MAX_LENGTH`](crate::MAX_LENGTH) bytes.
    TooLong {
        /// Actual length of the offending string.
        len: usize,
    },
    /// The string had more than [`MAX_ELEMENTS`](crate::MAX_ELEMENTS)
    /// elements.
    TooManyElements {
        /// Actual number of elements.
        count: usize,
    },
    /// An element was empty (leading, trailing, or doubled dot).
    EmptyElement {
        /// Zero-based index of the empty element.
        index: usize,
    },
    /// An element contained a character outside the allowed set.
    BadCharacter {
        /// Zero-based index of the offending element.
        index: usize,
        /// The offending character.
        ch: char,
    },
    /// A wildcard (`*` or `>`) appeared in a plain [`Subject`](crate::Subject).
    WildcardInSubject {
        /// Zero-based index of the wildcard element.
        index: usize,
    },
    /// A `>` wildcard appeared somewhere other than the final element.
    TailWildcardNotLast {
        /// Zero-based index of the misplaced `>`.
        index: usize,
    },
    /// A wildcard character was combined with other characters in one
    /// element (for example `foo*` or `ba>r`).
    PartialWildcard {
        /// Zero-based index of the offending element.
        index: usize,
    },
}

impl fmt::Display for SubjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubjectError::Empty => write!(f, "subject is empty"),
            SubjectError::TooLong { len } => {
                write!(
                    f,
                    "subject is {len} bytes, exceeding the maximum of {}",
                    crate::MAX_LENGTH
                )
            }
            SubjectError::TooManyElements { count } => write!(
                f,
                "subject has {count} elements, exceeding the maximum of {}",
                crate::MAX_ELEMENTS
            ),
            SubjectError::EmptyElement { index } => {
                write!(f, "element {index} is empty")
            }
            SubjectError::BadCharacter { index, ch } => {
                write!(f, "element {index} contains disallowed character {ch:?}")
            }
            SubjectError::WildcardInSubject { index } => {
                write!(
                    f,
                    "element {index} is a wildcard, which is not allowed in a plain subject"
                )
            }
            SubjectError::TailWildcardNotLast { index } => {
                write!(f, "'>' at element {index} must be the final element")
            }
            SubjectError::PartialWildcard { index } => {
                write!(f, "element {index} mixes a wildcard with other characters")
            }
        }
    }
}

impl std::error::Error for SubjectError {}
