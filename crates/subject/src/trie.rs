use std::collections::HashMap;

use crate::{FilterElement, Subject, SubjectFilter};

/// Identifier of a subscription stored in a [`SubjectTrie`].
///
/// Identifiers are unique within one trie and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

/// A subscription index: maps [`SubjectFilter`]s to values and answers
/// "which subscriptions match this published subject?".
///
/// Matching walks the trie once per subject element, visiting literal
/// children, `*` children, and `>` terminals, so the cost is proportional
/// to the subject depth and the filter fan-out — not to the total number of
/// subscriptions. This is the data structure behind the per-host bus
/// daemon, the information routers, and the paper's claim (§6) that
/// subject-based addressing scales better than attribute qualification.
///
/// # Examples
///
/// ```
/// use infobus_subject::{Subject, SubjectFilter, SubjectTrie};
///
/// let mut trie = SubjectTrie::new();
/// let id = trie.insert(&SubjectFilter::new("news.>").unwrap(), "monitor");
/// assert!(trie.matches_any(&Subject::new("news.equity.gmc").unwrap()));
/// trie.remove(id);
/// assert!(!trie.matches_any(&Subject::new("news.equity.gmc").unwrap()));
/// ```
#[derive(Debug, Clone)]
pub struct SubjectTrie<T> {
    root: Node<T>,
    next_id: u64,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<T> {
    literals: HashMap<String, Node<T>>,
    any_one: Option<Box<Node<T>>>,
    /// Subscriptions whose filter ends with `>` at this node.
    tail_subs: Vec<(SubscriptionId, SubjectFilter, T)>,
    /// Subscriptions whose filter ends exactly at this node.
    exact_subs: Vec<(SubscriptionId, SubjectFilter, T)>,
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node {
            literals: HashMap::new(),
            any_one: None,
            tail_subs: Vec::new(),
            exact_subs: Vec::new(),
        }
    }
}

impl<T> Node<T> {
    fn is_empty(&self) -> bool {
        self.literals.is_empty()
            && self.any_one.is_none()
            && self.tail_subs.is_empty()
            && self.exact_subs.is_empty()
    }
}

impl<T> Default for SubjectTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SubjectTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        SubjectTrie {
            root: Node::default(),
            next_id: 0,
            len: 0,
        }
    }

    /// Returns the number of stored subscriptions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the trie holds no subscriptions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a subscription and returns its identifier.
    pub fn insert(&mut self, filter: &SubjectFilter, value: T) -> SubscriptionId {
        let id = SubscriptionId(self.next_id);
        self.next_id += 1;
        let mut node = &mut self.root;
        let elements = filter.elements();
        for (i, elem) in elements.iter().enumerate() {
            match elem {
                FilterElement::Literal(lit) => {
                    node = node.literals.entry(lit.clone()).or_default();
                }
                FilterElement::AnyOne => {
                    node = node.any_one.get_or_insert_with(Box::default);
                }
                FilterElement::Tail => {
                    debug_assert_eq!(i, elements.len() - 1, "'>' is validated to be last");
                    node.tail_subs.push((id, filter.clone(), value));
                    self.len += 1;
                    return id;
                }
            }
        }
        node.exact_subs.push((id, filter.clone(), value));
        self.len += 1;
        id
    }

    /// Removes a subscription by identifier, returning its value.
    ///
    /// Returns `None` if the identifier is unknown (for example, already
    /// removed). Empty interior nodes are pruned.
    pub fn remove(&mut self, id: SubscriptionId) -> Option<T> {
        let (value, _) = Self::remove_rec(&mut self.root, id)?;
        self.len -= 1;
        Some(value)
    }

    fn remove_rec(node: &mut Node<T>, id: SubscriptionId) -> Option<(T, bool)> {
        if let Some(pos) = node.exact_subs.iter().position(|(sid, _, _)| *sid == id) {
            let (_, _, value) = node.exact_subs.swap_remove(pos);
            return Some((value, node.is_empty()));
        }
        if let Some(pos) = node.tail_subs.iter().position(|(sid, _, _)| *sid == id) {
            let (_, _, value) = node.tail_subs.swap_remove(pos);
            return Some((value, node.is_empty()));
        }
        let mut found: Option<(T, bool)> = None;
        let mut prune_key: Option<String> = None;
        for (key, child) in node.literals.iter_mut() {
            if let Some((value, child_empty)) = Self::remove_rec(child, id) {
                if child_empty {
                    prune_key = Some(key.clone());
                }
                found = Some((value, false));
                break;
            }
        }
        if let Some(key) = prune_key {
            node.literals.remove(&key);
        }
        if found.is_none() {
            if let Some(child) = node.any_one.as_deref_mut() {
                if let Some((value, child_empty)) = Self::remove_rec(child, id) {
                    if child_empty {
                        node.any_one = None;
                    }
                    found = Some((value, false));
                }
            }
        }
        found.map(|(value, _)| (value, node.is_empty()))
    }

    /// Returns all subscriptions whose filter matches `subject`.
    ///
    /// The iterator yields `(SubscriptionId, &value)` pairs; a value is
    /// yielded once per matching subscription.
    pub fn matches<'a>(
        &'a self,
        subject: &Subject,
    ) -> impl Iterator<Item = (SubscriptionId, &'a T)> {
        let elements: Vec<&str> = subject.elements().collect();
        let mut out: Vec<(SubscriptionId, &'a T)> = Vec::new();
        Self::match_rec(&self.root, &elements, &mut out);
        out.into_iter()
    }

    fn match_rec<'a>(node: &'a Node<T>, rest: &[&str], out: &mut Vec<(SubscriptionId, &'a T)>) {
        if rest.is_empty() {
            for (id, _, value) in &node.exact_subs {
                out.push((*id, value));
            }
            return;
        }
        // `>` here matches the non-empty remainder.
        for (id, _, value) in &node.tail_subs {
            out.push((*id, value));
        }
        if let Some(child) = node.literals.get(rest[0]) {
            Self::match_rec(child, &rest[1..], out);
        }
        if let Some(child) = node.any_one.as_deref() {
            Self::match_rec(child, &rest[1..], out);
        }
    }

    /// Returns `true` if at least one subscription matches `subject`.
    ///
    /// Cheaper than [`SubjectTrie::matches`] when only the existence of
    /// interest matters (for example, a daemon deciding whether to accept
    /// a broadcast frame at all).
    pub fn matches_any(&self, subject: &Subject) -> bool {
        let elements: Vec<&str> = subject.elements().collect();
        Self::any_rec(&self.root, &elements)
    }

    fn any_rec(node: &Node<T>, rest: &[&str]) -> bool {
        if rest.is_empty() {
            return !node.exact_subs.is_empty();
        }
        if !node.tail_subs.is_empty() {
            return true;
        }
        if let Some(child) = node.literals.get(rest[0]) {
            if Self::any_rec(child, &rest[1..]) {
                return true;
            }
        }
        if let Some(child) = node.any_one.as_deref() {
            if Self::any_rec(child, &rest[1..]) {
                return true;
            }
        }
        false
    }

    /// Visits every stored subscription as `(id, filter, value)`.
    pub fn for_each(&self, mut f: impl FnMut(SubscriptionId, &SubjectFilter, &T)) {
        Self::visit(&self.root, &mut f);
    }

    fn visit(node: &Node<T>, f: &mut impl FnMut(SubscriptionId, &SubjectFilter, &T)) {
        for (id, filter, value) in node.exact_subs.iter().chain(node.tail_subs.iter()) {
            f(*id, filter, value);
        }
        for child in node.literals.values() {
            Self::visit(child, f);
        }
        if let Some(child) = node.any_one.as_deref() {
            Self::visit(child, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subj(s: &str) -> Subject {
        Subject::new(s).unwrap()
    }

    fn filt(s: &str) -> SubjectFilter {
        SubjectFilter::new(s).unwrap()
    }

    fn hit_values(trie: &SubjectTrie<&'static str>, s: &str) -> Vec<&'static str> {
        let mut v: Vec<_> = trie.matches(&subj(s)).map(|(_, val)| *val).collect();
        v.sort();
        v
    }

    #[test]
    fn exact_and_wildcard_matching() {
        let mut trie = SubjectTrie::new();
        trie.insert(&filt("news.equity.gmc"), "exact");
        trie.insert(&filt("news.equity.*"), "star");
        trie.insert(&filt("news.>"), "tail");
        trie.insert(&filt("fab5.>"), "fab");

        assert_eq!(
            hit_values(&trie, "news.equity.gmc"),
            vec!["exact", "star", "tail"]
        );
        assert_eq!(hit_values(&trie, "news.equity.ibm"), vec!["star", "tail"]);
        assert_eq!(hit_values(&trie, "news.bond"), vec!["tail"]);
        assert_eq!(hit_values(&trie, "fab5.cc.litho8"), vec!["fab"]);
        assert!(hit_values(&trie, "sports.scores").is_empty());
    }

    #[test]
    fn tail_requires_at_least_one_element() {
        let mut trie = SubjectTrie::new();
        trie.insert(&filt("news.>"), "tail");
        assert!(hit_values(&trie, "news").is_empty());
        assert_eq!(hit_values(&trie, "news.x"), vec!["tail"]);
    }

    #[test]
    fn remove_prunes_and_returns_value() {
        let mut trie = SubjectTrie::new();
        let a = trie.insert(&filt("a.b.c"), 1);
        let b = trie.insert(&filt("a.*.c"), 2);
        assert_eq!(trie.len(), 2);
        assert_eq!(trie.remove(a), Some(1));
        assert_eq!(trie.len(), 1);
        assert_eq!(hit_values_int(&trie, "a.b.c"), vec![2]);
        assert_eq!(trie.remove(a), None);
        assert_eq!(trie.remove(b), Some(2));
        assert!(trie.is_empty());
        // The root should have been fully pruned.
        assert!(trie.root.is_empty());
    }

    fn hit_values_int(trie: &SubjectTrie<i32>, s: &str) -> Vec<i32> {
        let mut v: Vec<_> = trie.matches(&subj(s)).map(|(_, val)| *val).collect();
        v.sort();
        v
    }

    #[test]
    fn duplicate_filters_both_match() {
        let mut trie = SubjectTrie::new();
        let a = trie.insert(&filt("x.y"), 1);
        let b = trie.insert(&filt("x.y"), 2);
        assert_ne!(a, b);
        assert_eq!(hit_values_int(&trie, "x.y"), vec![1, 2]);
    }

    #[test]
    fn matches_any_agrees_with_matches() {
        let mut trie = SubjectTrie::new();
        trie.insert(&filt("a.>"), 0);
        trie.insert(&filt("b.*"), 0);
        for s in ["a.x", "a.x.y", "b.q", "b", "c.d", "a"] {
            let subject = subj(s);
            let has = trie.matches(&subject).count() > 0;
            assert_eq!(trie.matches_any(&subject), has, "subject {s}");
        }
    }

    #[test]
    fn for_each_visits_all() {
        let mut trie = SubjectTrie::new();
        trie.insert(&filt("a.b"), 1);
        trie.insert(&filt("a.>"), 2);
        trie.insert(&filt("*.b"), 3);
        let mut seen = Vec::new();
        trie.for_each(|_, f, v| seen.push((f.as_str().to_owned(), *v)));
        seen.sort();
        assert_eq!(
            seen,
            vec![
                ("*.b".to_owned(), 3),
                ("a.>".to_owned(), 2),
                ("a.b".to_owned(), 1)
            ]
        );
    }

    #[test]
    fn deep_fanout() {
        let mut trie = SubjectTrie::new();
        for i in 0..100 {
            trie.insert(&filt(&format!("news.s{i}.>")), i);
        }
        trie.insert(&filt("news.*.extra"), 1000);
        assert_eq!(hit_values_int(&trie, "news.s42.extra"), vec![42, 1000]);
        assert_eq!(trie.len(), 101);
    }
}
