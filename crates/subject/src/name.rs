use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use crate::{is_element_char, SubjectError, MAX_ELEMENTS, MAX_LENGTH};

/// A validated, immutable, hierarchically structured subject name.
///
/// A subject is a sequence of one or more non-empty *elements* separated by
/// dots, for example `fab5.cc.litho8.thick` or `news.equity.gmc`. Plain
/// subjects never contain wildcards; wildcards belong to
/// [`SubjectFilter`](crate::SubjectFilter).
///
/// `Subject` is cheap to clone (the text is reference-counted) and can be
/// used as a map key.
///
/// # Examples
///
/// ```
/// use infobus_subject::Subject;
///
/// let s = Subject::new("news.equity.gmc").unwrap();
/// assert_eq!(s.depth(), 3);
/// assert_eq!(s.element(1), Some("equity"));
/// assert!(Subject::new("news..gmc").is_err());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Subject {
    text: Arc<str>,
}

impl Subject {
    /// Parses and validates a subject from its textual form.
    ///
    /// # Errors
    ///
    /// Returns a [`SubjectError`] if the string is empty, too long, has
    /// too many or empty elements, contains disallowed characters, or
    /// contains a wildcard.
    pub fn new(text: &str) -> Result<Self, SubjectError> {
        validate_subject(text)?;
        Ok(Subject {
            text: Arc::from(text),
        })
    }

    /// Builds a subject from individual elements, joining them with dots.
    ///
    /// # Errors
    ///
    /// Returns a [`SubjectError`] under the same conditions as
    /// [`Subject::new`].
    pub fn from_elements<I, S>(elements: I) -> Result<Self, SubjectError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let joined = elements
            .into_iter()
            .map(|e| e.as_ref().to_owned())
            .collect::<Vec<_>>()
            .join(".");
        Subject::new(&joined)
    }

    /// Returns the full textual form of the subject.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Returns the number of elements.
    pub fn depth(&self) -> usize {
        self.elements().count()
    }

    /// Iterates over the elements in order.
    pub fn elements(&self) -> impl Iterator<Item = &str> {
        self.text.split('.')
    }

    /// Returns the element at `index`, if any.
    pub fn element(&self, index: usize) -> Option<&str> {
        self.elements().nth(index)
    }

    /// Returns `true` if `prefix` is a prefix of this subject, element-wise.
    ///
    /// `news.equity` is a prefix of `news.equity.gmc` but not of
    /// `news.equityx.gmc`.
    pub fn has_prefix(&self, prefix: &Subject) -> bool {
        let mut ours = self.elements();
        for want in prefix.elements() {
            match ours.next() {
                Some(have) if have == want => continue,
                _ => return false,
            }
        }
        true
    }

    /// Returns a new subject with `element` appended.
    ///
    /// # Errors
    ///
    /// Returns a [`SubjectError`] if the resulting subject would be invalid.
    pub fn child(&self, element: &str) -> Result<Subject, SubjectError> {
        Subject::new(&format!("{}.{element}", self.text))
    }

    /// Returns the parent subject (all but the last element), or `None`
    /// for a single-element subject.
    pub fn parent(&self) -> Option<Subject> {
        let idx = self.text.rfind('.')?;
        Some(Subject {
            text: Arc::from(&self.text[..idx]),
        })
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Subject({})", self.text)
    }
}

impl AsRef<str> for Subject {
    fn as_ref(&self) -> &str {
        &self.text
    }
}

impl Borrow<str> for Subject {
    fn borrow(&self) -> &str {
        &self.text
    }
}

impl std::str::FromStr for Subject {
    type Err = SubjectError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Subject::new(s)
    }
}

/// Validates the textual form of a plain (wildcard-free) subject.
fn validate_subject(text: &str) -> Result<(), SubjectError> {
    if text.is_empty() {
        return Err(SubjectError::Empty);
    }
    if text.len() > MAX_LENGTH {
        return Err(SubjectError::TooLong { len: text.len() });
    }
    let mut count = 0;
    for (index, element) in text.split('.').enumerate() {
        count += 1;
        if element.is_empty() {
            return Err(SubjectError::EmptyElement { index });
        }
        if element == "*" || element == ">" {
            return Err(SubjectError::WildcardInSubject { index });
        }
        for ch in element.chars() {
            if ch == '*' || ch == '>' {
                return Err(SubjectError::WildcardInSubject { index });
            }
            if !is_element_char(ch) {
                return Err(SubjectError::BadCharacter { index, ch });
            }
        }
    }
    if count > MAX_ELEMENTS {
        return Err(SubjectError::TooManyElements { count });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_examples() {
        for text in ["fab5.cc.litho8.thick", "news.equity.gmc", "a", "a.b"] {
            let s = Subject::new(text).unwrap();
            assert_eq!(s.as_str(), text);
        }
    }

    #[test]
    fn depth_and_elements() {
        let s = Subject::new("fab5.cc.litho8.thick").unwrap();
        assert_eq!(s.depth(), 4);
        assert_eq!(
            s.elements().collect::<Vec<_>>(),
            vec!["fab5", "cc", "litho8", "thick"]
        );
        assert_eq!(s.element(0), Some("fab5"));
        assert_eq!(s.element(3), Some("thick"));
        assert_eq!(s.element(4), None);
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert_eq!(Subject::new(""), Err(SubjectError::Empty));
        assert_eq!(
            Subject::new("a..b"),
            Err(SubjectError::EmptyElement { index: 1 })
        );
        assert_eq!(
            Subject::new(".a"),
            Err(SubjectError::EmptyElement { index: 0 })
        );
        assert_eq!(
            Subject::new("a."),
            Err(SubjectError::EmptyElement { index: 1 })
        );
        assert!(matches!(
            Subject::new("a b"),
            Err(SubjectError::BadCharacter { .. })
        ));
        assert!(matches!(
            Subject::new("a\tb"),
            Err(SubjectError::BadCharacter { .. })
        ));
    }

    #[test]
    fn rejects_wildcards_in_plain_subjects() {
        assert_eq!(
            Subject::new("news.*"),
            Err(SubjectError::WildcardInSubject { index: 1 })
        );
        assert_eq!(
            Subject::new(">"),
            Err(SubjectError::WildcardInSubject { index: 0 })
        );
        assert_eq!(
            Subject::new("a.b>c"),
            Err(SubjectError::WildcardInSubject { index: 1 })
        );
    }

    #[test]
    fn rejects_oversize() {
        let long = "a".repeat(MAX_LENGTH + 1);
        assert!(matches!(
            Subject::new(&long),
            Err(SubjectError::TooLong { .. })
        ));
        let deep = vec!["x"; MAX_ELEMENTS + 1].join(".");
        assert!(matches!(
            Subject::new(&deep),
            Err(SubjectError::TooManyElements { .. })
        ));
    }

    #[test]
    fn prefix_relation() {
        let full = Subject::new("news.equity.gmc").unwrap();
        assert!(full.has_prefix(&Subject::new("news").unwrap()));
        assert!(full.has_prefix(&Subject::new("news.equity").unwrap()));
        assert!(full.has_prefix(&full));
        assert!(!full.has_prefix(&Subject::new("news.equityx").unwrap()));
        assert!(!full.has_prefix(&Subject::new("news.equity.gmc.extra").unwrap()));
    }

    #[test]
    fn child_and_parent() {
        let s = Subject::new("news.equity").unwrap();
        let c = s.child("gmc").unwrap();
        assert_eq!(c.as_str(), "news.equity.gmc");
        assert_eq!(c.parent().unwrap(), s);
        assert_eq!(Subject::new("solo").unwrap().parent(), None);
    }

    #[test]
    fn from_elements_round_trip() {
        let s = Subject::from_elements(["fab5", "cc", "litho8"]).unwrap();
        assert_eq!(s.as_str(), "fab5.cc.litho8");
        assert!(Subject::from_elements(["ok", ""]).is_err());
    }

    #[test]
    fn ordering_and_hashing_follow_text() {
        let a = Subject::new("a.b").unwrap();
        let b = Subject::new("a.c").unwrap();
        assert!(a < b);
        let a2 = Subject::new("a.b").unwrap();
        assert_eq!(a, a2);
        use std::collections::HashSet;
        let set: HashSet<Subject> = [a.clone(), a2, b].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
