//! Subject-based addressing for the Information Bus.
//!
//! Subjects are hierarchically structured, dot-separated names such as
//! `fab5.cc.litho8.thick` (plant "fab5", cell controller, lithography
//! station "litho8", wafer thickness). Data producers label every published
//! object with a subject; consumers subscribe with a [`SubjectFilter`] that
//! may be partially specified ("wildcarded"). The bus itself enforces no
//! policy on the *interpretation* of subjects — conventions are established
//! by system designers (principle P4, anonymous communication).
//!
//! This crate provides:
//!
//! * [`Subject`] — a validated, immutable subject name,
//! * [`SubjectFilter`] — a subscription pattern with `*` (exactly one
//!   element) and `>` (one or more trailing elements) wildcards,
//! * [`SubjectTrie`] — an index from filters to subscriber values that
//!   answers "which subscriptions match this published subject?" in time
//!   proportional to the subject depth, not the number of subscriptions.
//!
//! # Examples
//!
//! ```
//! use infobus_subject::{Subject, SubjectFilter, SubjectTrie};
//!
//! let subject = Subject::new("news.equity.gmc").unwrap();
//! let filter = SubjectFilter::new("news.equity.*").unwrap();
//! assert!(filter.matches(&subject));
//!
//! let mut trie: SubjectTrie<&'static str> = SubjectTrie::new();
//! trie.insert(&SubjectFilter::new("news.>").unwrap(), "monitor");
//! trie.insert(&SubjectFilter::new("fab5.cc.>").unwrap(), "wip");
//! let hits: Vec<_> = trie.matches(&subject).map(|(_, v)| *v).collect();
//! assert_eq!(hits, vec!["monitor"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod filter;
mod intern;
mod name;
mod trie;

pub use error::SubjectError;
pub use filter::{FilterElement, SubjectFilter};
pub use intern::{InternedSubject, SubjectId, SubjectTable};
pub use name::Subject;
pub use trie::{SubjectTrie, SubscriptionId};

/// Maximum number of dot-separated elements in a subject or filter.
pub const MAX_ELEMENTS: usize = 32;

/// Maximum total length, in bytes, of a subject or filter string.
pub const MAX_LENGTH: usize = 255;

/// Returns `true` if `ch` may appear inside a subject element.
///
/// Elements may contain any printable ASCII character except the separator
/// (`.`), the wildcards (`*`, `>`), and whitespace.
pub(crate) fn is_element_char(ch: char) -> bool {
    ch.is_ascii_graphic() && !matches!(ch, '.' | '*' | '>')
}
