use std::fmt;

use crate::{is_element_char, Subject, SubjectError, MAX_ELEMENTS, MAX_LENGTH};

/// One element of a [`SubjectFilter`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FilterElement {
    /// Matches exactly this literal element.
    Literal(String),
    /// `*` — matches exactly one element, whatever it is.
    AnyOne,
    /// `>` — matches one or more trailing elements; only valid in the
    /// final position.
    Tail,
}

impl fmt::Display for FilterElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterElement::Literal(s) => f.write_str(s),
            FilterElement::AnyOne => f.write_str("*"),
            FilterElement::Tail => f.write_str(">"),
        }
    }
}

/// A subscription pattern over subjects.
///
/// A filter looks like a subject but may use wildcards: `*` matches exactly
/// one element, and a final `>` matches one or more trailing elements.
/// A filter with no wildcards matches exactly one subject.
///
/// # Examples
///
/// ```
/// use infobus_subject::{Subject, SubjectFilter};
///
/// let f = SubjectFilter::new("news.*.gmc").unwrap();
/// assert!(f.matches(&Subject::new("news.equity.gmc").unwrap()));
/// assert!(!f.matches(&Subject::new("news.gmc").unwrap()));
///
/// let tail = SubjectFilter::new("fab5.>").unwrap();
/// assert!(tail.matches(&Subject::new("fab5.cc.litho8.thick").unwrap()));
/// assert!(!tail.matches(&Subject::new("fab5").unwrap()));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SubjectFilter {
    elements: Vec<FilterElement>,
    text: String,
}

impl SubjectFilter {
    /// Parses and validates a filter from its textual form.
    ///
    /// # Errors
    ///
    /// Returns a [`SubjectError`] if the string is malformed, a `>` is not
    /// final, or a wildcard is mixed with literal characters in a single
    /// element.
    pub fn new(text: &str) -> Result<Self, SubjectError> {
        if text.is_empty() {
            return Err(SubjectError::Empty);
        }
        if text.len() > MAX_LENGTH {
            return Err(SubjectError::TooLong { len: text.len() });
        }
        let raw: Vec<&str> = text.split('.').collect();
        if raw.len() > MAX_ELEMENTS {
            return Err(SubjectError::TooManyElements { count: raw.len() });
        }
        let last = raw.len() - 1;
        let mut elements = Vec::with_capacity(raw.len());
        for (index, elem) in raw.iter().enumerate() {
            if elem.is_empty() {
                return Err(SubjectError::EmptyElement { index });
            }
            let parsed = match *elem {
                "*" => FilterElement::AnyOne,
                ">" => {
                    if index != last {
                        return Err(SubjectError::TailWildcardNotLast { index });
                    }
                    FilterElement::Tail
                }
                literal => {
                    for ch in literal.chars() {
                        if ch == '*' || ch == '>' {
                            return Err(SubjectError::PartialWildcard { index });
                        }
                        if !is_element_char(ch) {
                            return Err(SubjectError::BadCharacter { index, ch });
                        }
                    }
                    FilterElement::Literal(literal.to_owned())
                }
            };
            elements.push(parsed);
        }
        Ok(SubjectFilter {
            elements,
            text: text.to_owned(),
        })
    }

    /// Builds the filter that matches exactly one subject.
    pub fn exact(subject: &Subject) -> Self {
        // A plain subject is always a valid literal-only filter.
        SubjectFilter::new(subject.as_str()).expect("a valid subject is a valid filter")
    }

    /// Returns the textual form of this filter.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Returns the parsed elements of this filter.
    pub fn elements(&self) -> &[FilterElement] {
        &self.elements
    }

    /// Returns `true` if the filter contains any wildcard.
    pub fn is_wildcarded(&self) -> bool {
        self.elements
            .iter()
            .any(|e| matches!(e, FilterElement::AnyOne | FilterElement::Tail))
    }

    /// Returns `true` if this filter matches `subject`.
    pub fn matches(&self, subject: &Subject) -> bool {
        self.matches_elements(&subject.elements().collect::<Vec<_>>())
    }

    /// Returns `true` if this filter matches the given subject elements.
    pub fn matches_elements(&self, subject: &[&str]) -> bool {
        let mut si = 0;
        for fe in &self.elements {
            match fe {
                FilterElement::Literal(lit) => {
                    if si >= subject.len() || subject[si] != lit.as_str() {
                        return false;
                    }
                    si += 1;
                }
                FilterElement::AnyOne => {
                    if si >= subject.len() {
                        return false;
                    }
                    si += 1;
                }
                FilterElement::Tail => {
                    // `>` requires at least one remaining element and
                    // consumes all of them.
                    return si < subject.len();
                }
            }
        }
        si == subject.len()
    }

    /// Returns `true` if this filter provably matches a superset of the
    /// subjects matched by `other`.
    ///
    /// Used by information routers to avoid forwarding duplicate
    /// subscriptions upstream.
    pub fn covers(&self, other: &SubjectFilter) -> bool {
        covers(&self.elements, &other.elements)
    }
}

fn covers(a: &[FilterElement], b: &[FilterElement]) -> bool {
    match (a.first(), b.first()) {
        (None, None) => true,
        (Some(FilterElement::Tail), Some(_)) => {
            // `>` covers any non-empty remainder.
            true
        }
        (Some(FilterElement::AnyOne), Some(FilterElement::Tail)) => false,
        (Some(FilterElement::AnyOne), Some(_)) => covers(&a[1..], &b[1..]),
        (Some(FilterElement::Literal(x)), Some(FilterElement::Literal(y))) if x == y => {
            covers(&a[1..], &b[1..])
        }
        _ => false,
    }
}

impl fmt::Display for SubjectFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for SubjectFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubjectFilter({})", self.text)
    }
}

impl std::str::FromStr for SubjectFilter {
    type Err = SubjectError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SubjectFilter::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subj(s: &str) -> Subject {
        Subject::new(s).unwrap()
    }

    #[test]
    fn literal_filter_matches_exactly() {
        let f = SubjectFilter::new("news.equity.gmc").unwrap();
        assert!(f.matches(&subj("news.equity.gmc")));
        assert!(!f.matches(&subj("news.equity")));
        assert!(!f.matches(&subj("news.equity.gmc.more")));
        assert!(!f.is_wildcarded());
    }

    #[test]
    fn star_matches_exactly_one_element() {
        let f = SubjectFilter::new("news.*.gmc").unwrap();
        assert!(f.matches(&subj("news.equity.gmc")));
        assert!(f.matches(&subj("news.bond.gmc")));
        assert!(!f.matches(&subj("news.gmc")));
        assert!(!f.matches(&subj("news.a.b.gmc")));
        assert!(f.is_wildcarded());
    }

    #[test]
    fn trailing_star() {
        let f = SubjectFilter::new("news.equity.*").unwrap();
        assert!(f.matches(&subj("news.equity.gmc")));
        assert!(!f.matches(&subj("news.equity")));
        assert!(!f.matches(&subj("news.equity.gmc.q1")));
    }

    #[test]
    fn tail_matches_one_or_more() {
        let f = SubjectFilter::new("fab5.>").unwrap();
        assert!(f.matches(&subj("fab5.cc")));
        assert!(f.matches(&subj("fab5.cc.litho8.thick")));
        assert!(!f.matches(&subj("fab5")));
        assert!(!f.matches(&subj("fab6.cc")));
    }

    #[test]
    fn tail_must_be_last() {
        assert_eq!(
            SubjectFilter::new("a.>.b"),
            Err(SubjectError::TailWildcardNotLast { index: 1 })
        );
    }

    #[test]
    fn partial_wildcards_rejected() {
        assert_eq!(
            SubjectFilter::new("ne*s.x"),
            Err(SubjectError::PartialWildcard { index: 0 })
        );
        assert_eq!(
            SubjectFilter::new("a.b>"),
            Err(SubjectError::PartialWildcard { index: 1 })
        );
    }

    #[test]
    fn exact_round_trip() {
        let s = subj("fab5.cc.litho8");
        let f = SubjectFilter::exact(&s);
        assert!(f.matches(&s));
        assert!(!f.is_wildcarded());
    }

    #[test]
    fn covers_relation() {
        let gt = |a: &str, b: &str| {
            SubjectFilter::new(a)
                .unwrap()
                .covers(&SubjectFilter::new(b).unwrap())
        };
        assert!(gt("news.>", "news.equity.gmc"));
        assert!(gt("news.>", "news.*.gmc"));
        assert!(gt("news.*.gmc", "news.equity.gmc"));
        assert!(gt("a.b", "a.b"));
        assert!(!gt("news.*.gmc", "news.>"));
        assert!(!gt("news.equity.gmc", "news.*.gmc"));
        assert!(!gt("a.b", "a.c"));
        // `>` requires at least one element, so it does not cover the
        // empty remainder.
        assert!(!gt("a.>", "a"));
    }
}
