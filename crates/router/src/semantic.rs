//! The semantic subject layer: synonym aliases and taxonomy broadening.
//!
//! Subject-based addressing only unifies parties that already agree on a
//! vocabulary: a publisher on `NYSE.IBM` and a subscriber on
//! `tech.hardware.IBM` never meet, even though they mean the same
//! instrument. A [`SubjectMap`] sits *above* the subject trie and closes
//! that gap with two rule kinds, both reusing the router's element-wise
//! [`RewriteRule`] machinery:
//!
//! * **Aliases** (synonyms): `NYSE.IBM → tech.hardware.IBM` declares the
//!   two prefixes equivalent. Publish subjects and subscription filters
//!   are both *canonicalized* — rewritten to a fixpoint — so
//!   semantically-equivalent subjects share one fan-out path, one
//!   sequence stream, and one entry in every soft-state table.
//! * **Broadenings** (taxonomy): `eq.ibm → tech.hardware.ibm` declares
//!   that `eq.ibm` *is-a* `tech.hardware.ibm`. Canonicalization leaves
//!   publishers untouched (the narrow subject keeps its identity), but a
//!   subscription whose filter covers the broad prefix is *expanded*
//!   with the narrow form too, so subscribing to the category also
//!   receives its semantic members.
//!
//! Determinism and termination are load-bearing — the map runs inside
//! every driver's subscribe and publish paths:
//!
//! * at most one alias per `from` prefix ([`SubjectMapError::Conflict`]),
//! * the most-specific (longest) matching rule wins each step, so the
//!   result is independent of rule insertion order (confluence),
//! * inserting a rule that would make any canonicalization loop is
//!   rejected ([`SubjectMapError::Cycle`]), and a defensive iteration cap
//!   ([`MAX_REWRITE_STEPS`]) bounds the walk regardless.

use std::fmt;

use crate::rewrite::{CompiledRewrite, RewriteRule};

/// Hard bound on rewrite steps per canonicalization; with cycle-checked
/// inserts this is defensive, not load-bearing.
pub const MAX_REWRITE_STEPS: usize = 32;

/// Errors from building a [`SubjectMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubjectMapError {
    /// Two alias rules share a `from` prefix with different targets;
    /// which fires would depend on insertion order, so the second is
    /// rejected.
    Conflict(String),
    /// The rule would make canonicalization of the named subject loop.
    Cycle(String),
    /// A rule prefix was empty or contained wildcard elements.
    BadRule(String),
}

impl fmt::Display for SubjectMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubjectMapError::Conflict(p) => {
                write!(f, "conflicting alias for prefix {p:?}")
            }
            SubjectMapError::Cycle(p) => {
                write!(f, "alias rule would loop on {p:?}")
            }
            SubjectMapError::BadRule(p) => write!(f, "malformed rule prefix {p:?}"),
        }
    }
}

impl std::error::Error for SubjectMapError {}

/// Synonym aliases plus taxonomy broadening rules over subject prefixes.
///
/// Built once, shared read-only by every daemon on a segment (typically
/// as an `Arc` inside the bus configuration). See the module docs for
/// semantics.
///
/// ```
/// use infobus_router::SubjectMap;
///
/// let mut map = SubjectMap::new();
/// map.add_alias("NYSE.IBM", "tech.hardware.IBM").unwrap();
/// map.add_broadening("eq.ibm", "tech.hardware.ibm").unwrap();
///
/// assert_eq!(map.canonical("NYSE.IBM.trade"), "tech.hardware.IBM.trade");
/// // A category subscription expands with its semantic members.
/// assert_eq!(
///     map.expand_filter("tech.hardware.ibm.>"),
///     vec!["tech.hardware.ibm.>".to_owned(), "eq.ibm.>".to_owned()],
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct SubjectMap {
    /// Synonym rules, kept sorted by descending `from` element count so
    /// the most-specific match is found first (confluence).
    aliases: Vec<CompiledRewrite>,
    /// Taxonomy rules: `narrow is-a broad`, stored as narrow→broad.
    broadenings: Vec<CompiledRewrite>,
}

impl SubjectMap {
    /// An empty map (every subject is already canonical).
    pub fn new() -> SubjectMap {
        SubjectMap::default()
    }

    /// Whether the map holds no rules at all (the no-op fast path every
    /// driver checks before touching subjects).
    pub fn is_empty(&self) -> bool {
        self.aliases.is_empty() && self.broadenings.is_empty()
    }

    /// Number of alias rules.
    pub fn alias_count(&self) -> usize {
        self.aliases.len()
    }

    /// Number of broadening rules.
    pub fn broadening_count(&self) -> usize {
        self.broadenings.len()
    }

    /// Declares `from` and `to` synonymous, canonical form `to`.
    ///
    /// # Errors
    ///
    /// [`SubjectMapError::Conflict`] if an alias for `from` already
    /// exists with a different target; [`SubjectMapError::Cycle`] if the
    /// rule would make any canonicalization loop;
    /// [`SubjectMapError::BadRule`] on empty or wildcard prefixes.
    pub fn add_alias(&mut self, from: &str, to: &str) -> Result<(), SubjectMapError> {
        validate_prefix(from)?;
        validate_prefix(to)?;
        if let Some(existing) = self.aliases.iter().find(|c| c.rule().from_prefix == from) {
            return if existing.rule().to_prefix == to {
                Ok(()) // idempotent re-insert
            } else {
                Err(SubjectMapError::Conflict(from.to_owned()))
            };
        }
        let compiled = CompiledRewrite::new(&RewriteRule {
            from_prefix: from.to_owned(),
            to_prefix: to.to_owned(),
        });
        self.aliases.push(compiled);
        self.sort_aliases();
        // Cycle check: canonicalization must terminate from every rule
        // endpoint with the new rule in place.
        for probe in self
            .aliases
            .iter()
            .flat_map(|c| [c.rule().from_prefix.clone(), c.rule().to_prefix.clone()])
            .collect::<Vec<_>>()
        {
            if self.canonical_checked(&probe).is_none() {
                self.aliases.retain(|c| c.rule().from_prefix != from);
                return Err(SubjectMapError::Cycle(probe));
            }
        }
        Ok(())
    }

    /// Declares taxonomy membership: subjects under `narrow` are also
    /// members of the category `broad`, so filters covering `broad`
    /// expand with the `narrow` form.
    ///
    /// # Errors
    ///
    /// [`SubjectMapError::BadRule`] on empty or wildcard prefixes.
    pub fn add_broadening(&mut self, narrow: &str, broad: &str) -> Result<(), SubjectMapError> {
        validate_prefix(narrow)?;
        validate_prefix(broad)?;
        let rule = RewriteRule {
            from_prefix: narrow.to_owned(),
            to_prefix: broad.to_owned(),
        };
        if !self.broadenings.iter().any(|c| *c.rule() == rule) {
            self.broadenings.push(CompiledRewrite::new(&rule));
            // Deterministic expansion order regardless of insert order.
            self.broadenings.sort_by(|a, b| {
                (a.rule().from_prefix.as_str(), a.rule().to_prefix.as_str())
                    .cmp(&(b.rule().from_prefix.as_str(), b.rule().to_prefix.as_str()))
            });
        }
        Ok(())
    }

    fn sort_aliases(&mut self) {
        // Longest (most elements, then longest text) first: the
        // most-specific rule wins each rewrite step, making the result
        // independent of insertion order.
        self.aliases.sort_by(|a, b| {
            let ka = (
                b.rule().from_prefix.matches('.').count(),
                b.rule().from_prefix.len(),
            );
            let kb = (
                a.rule().from_prefix.matches('.').count(),
                a.rule().from_prefix.len(),
            );
            ka.cmp(&kb)
                .then_with(|| a.rule().from_prefix.cmp(&b.rule().from_prefix))
        });
    }

    /// Canonicalizes a subject (or a filter whose leading elements are
    /// concrete): applies the most-specific matching alias repeatedly
    /// until no alias matches. Returns the input unchanged (no
    /// allocation beyond the parse) when nothing matches.
    pub fn canonical(&self, subject: &str) -> String {
        self.canonical_checked(subject)
            .unwrap_or_else(|| subject.to_owned())
    }

    /// Like [`SubjectMap::canonical`], reporting whether a rewrite
    /// happened at all — drivers use this to count `sem_canonicalized`
    /// without comparing strings.
    pub fn canonicalize(&self, subject: &str) -> Option<String> {
        let out = self.canonical_checked(subject)?;
        if out == subject {
            None
        } else {
            Some(out)
        }
    }

    /// `None` when the iteration cap is hit (a loop — unreachable after
    /// cycle-checked inserts, kept as the defensive bound).
    fn canonical_checked(&self, subject: &str) -> Option<String> {
        let mut current = subject.to_owned();
        for _ in 0..MAX_REWRITE_STEPS {
            let next = self.aliases.iter().find_map(|c| c.apply(&current));
            match next {
                Some(n) => {
                    if n == current {
                        return Some(current); // self-alias: already canonical
                    }
                    current = n;
                }
                None => return Some(current),
            }
        }
        None
    }

    /// Expands a subscription filter into the full semantic filter set:
    /// the canonicalized filter first, then — deterministically ordered —
    /// the narrow form of every broadening rule whose broad prefix the
    /// filter covers, plus the alias `from` form of every alias whose
    /// `to` side the filter covers (so traffic arriving over a router
    /// link from a segment *without* this map still matches). The first
    /// element is always the canonical filter; duplicates are removed.
    pub fn expand_filter(&self, filter: &str) -> Vec<String> {
        let canonical = self.canonical(filter);
        let mut out = vec![canonical.clone()];
        let mut push = |f: String| {
            if !out.contains(&f) {
                out.push(f);
            }
        };
        for c in &self.broadenings {
            if let Some(expanded) = reverse_apply_to_filter(&canonical, c.rule()) {
                push(expanded);
            }
        }
        for c in &self.aliases {
            if let Some(expanded) = reverse_apply_to_filter(&canonical, c.rule()) {
                push(expanded);
            }
        }
        out
    }
}

/// Rejects empty prefixes and wildcard elements in rule prefixes (rules
/// rewrite concrete element prefixes only).
fn validate_prefix(p: &str) -> Result<(), SubjectMapError> {
    if p.is_empty() || p.split('.').any(|e| e.is_empty() || e == "*" || e == ">") {
        return Err(SubjectMapError::BadRule(p.to_owned()));
    }
    Ok(())
}

/// Applies `rule` in reverse (`to → from`) to a *filter* string: if the
/// filter's leading concrete elements start with the rule's `to` prefix
/// (element-wise; a leading `>` wildcard also covers it), the prefix is
/// replaced with `from`. `None` when the filter does not cover the `to`
/// side.
fn reverse_apply_to_filter(filter: &str, rule: &RewriteRule) -> Option<String> {
    let to_elems: Vec<&str> = rule.to_prefix.split('.').collect();
    let f_elems: Vec<&str> = filter.split('.').collect();
    for (i, want) in to_elems.iter().enumerate() {
        match f_elems.get(i) {
            // `>` swallows the rest of the prefix: the filter covers the
            // whole `to` subtree, so the narrow subtree is covered too.
            Some(&">") => {
                return Some(format!("{}.>", rule.from_prefix));
            }
            Some(&e) if e == *want || e == "*" => continue,
            _ => return None,
        }
    }
    let tail = &f_elems[to_elems.len()..];
    let mut out = String::with_capacity(rule.from_prefix.len() + filter.len());
    out.push_str(&rule.from_prefix);
    for e in tail {
        out.push('.');
        out.push_str(e);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_canonicalization_reaches_fixpoint() {
        let mut m = SubjectMap::new();
        m.add_alias("NYSE.IBM", "tech.hardware.IBM").unwrap();
        m.add_alias("tech", "sector").unwrap();
        // Two steps: NYSE.IBM → tech.hardware.IBM → sector.hardware.IBM.
        assert_eq!(m.canonical("NYSE.IBM.trade"), "sector.hardware.IBM.trade");
        assert_eq!(m.canonical("unrelated.x"), "unrelated.x");
        assert!(m.canonicalize("unrelated.x").is_none());
    }

    #[test]
    fn most_specific_alias_wins_regardless_of_insert_order() {
        let build = |order_flip: bool| {
            let mut m = SubjectMap::new();
            let rules: [(&str, &str); 2] = [("a", "x"), ("a.b", "y")];
            let idx: [usize; 2] = if order_flip { [1, 0] } else { [0, 1] };
            for i in idx {
                m.add_alias(rules[i].0, rules[i].1).unwrap();
            }
            m
        };
        for flip in [false, true] {
            let m = build(flip);
            // `a.b.c` matches both `a` and `a.b`; the specific rule wins.
            assert_eq!(m.canonical("a.b.c"), "y.c", "flip={flip}");
            assert_eq!(m.canonical("a.z"), "x.z", "flip={flip}");
        }
    }

    #[test]
    fn conflicting_alias_rejected_idempotent_accepted() {
        let mut m = SubjectMap::new();
        m.add_alias("a", "b").unwrap();
        assert_eq!(m.add_alias("a", "b"), Ok(()));
        assert_eq!(
            m.add_alias("a", "c"),
            Err(SubjectMapError::Conflict("a".into()))
        );
        assert_eq!(m.alias_count(), 1);
    }

    #[test]
    fn cycles_rejected_at_insert() {
        let mut m = SubjectMap::new();
        m.add_alias("a", "b").unwrap();
        assert!(matches!(
            m.add_alias("b", "a"),
            Err(SubjectMapError::Cycle(_))
        ));
        // The rejected rule is fully rolled back.
        assert_eq!(m.alias_count(), 1);
        assert_eq!(m.canonical("b.x"), "b.x");
        // Longer cycles too.
        m.add_alias("b", "c").unwrap();
        assert!(matches!(
            m.add_alias("c", "a"),
            Err(SubjectMapError::Cycle(_))
        ));
    }

    #[test]
    fn wildcard_and_empty_rule_prefixes_rejected() {
        let mut m = SubjectMap::new();
        for bad in ["", "a.*", ">", "a..b"] {
            assert!(matches!(
                m.add_alias(bad, "x"),
                Err(SubjectMapError::BadRule(_))
            ));
            assert!(matches!(
                m.add_broadening("x", bad),
                Err(SubjectMapError::BadRule(_))
            ));
        }
    }

    #[test]
    fn broadening_expands_covering_filters_only() {
        let mut m = SubjectMap::new();
        m.add_broadening("eq.ibm", "tech.hardware.ibm").unwrap();
        assert_eq!(
            m.expand_filter("tech.hardware.ibm.trade"),
            vec!["tech.hardware.ibm.trade", "eq.ibm.trade"]
        );
        assert_eq!(
            m.expand_filter("tech.>"),
            vec!["tech.>", "eq.ibm.>"],
            "`>` covers the broad prefix"
        );
        assert_eq!(
            m.expand_filter("tech.*.ibm"),
            vec!["tech.*.ibm", "eq.ibm"],
            "`*` covers one element"
        );
        assert_eq!(m.expand_filter("bond.>"), vec!["bond.>"], "no coverage");
    }

    #[test]
    fn alias_filters_expand_with_the_foreign_vocabulary() {
        let mut m = SubjectMap::new();
        m.add_alias("NYSE.IBM", "tech.hardware.IBM").unwrap();
        // A canonical-side subscription also watches the alias form, so
        // un-mapped traffic (a router link from a segment without the
        // map) still matches.
        assert_eq!(
            m.expand_filter("tech.hardware.IBM.*"),
            vec!["tech.hardware.IBM.*", "NYSE.IBM.*"]
        );
        // Subscribing by the alias canonicalizes first, then expands.
        assert_eq!(
            m.expand_filter("NYSE.IBM.*"),
            vec!["tech.hardware.IBM.*", "NYSE.IBM.*"]
        );
    }

    #[test]
    fn expansion_deterministic_across_insert_order() {
        let mut a = SubjectMap::new();
        a.add_broadening("n1", "cat").unwrap();
        a.add_broadening("n2", "cat").unwrap();
        let mut b = SubjectMap::new();
        b.add_broadening("n2", "cat").unwrap();
        b.add_broadening("n1", "cat").unwrap();
        assert_eq!(a.expand_filter("cat.>"), b.expand_filter("cat.>"));
    }
}
