//! Per-message origin/hop stamps: the loop-freedom mechanism.

/// The federation stamp a publication carries once it has crossed (or is
/// about to cross) a router link.
///
/// The first router that forwards a publication assigns the stamp from
/// its own `(epoch, seq)` counter; every router the message subsequently
/// reaches deduplicates on `(origin, epoch, seq)` and decrements `ttl`.
/// Split horizon alone keeps trees quiet; the stamp is what makes cyclic
/// topologies loop-free: a copy that travels all the way around a ring
/// arrives back at its origin (suppressed by the origin check) or at a
/// router that has already seen the triple (suppressed by the dedup
/// window), and a copy that escapes both runs out of hops.
///
/// Epochs are rotated by the origin's self-stabilization pass, so a
/// corrupted sequence counter can mis-stamp for at most one
/// stabilization period before a fresh epoch gives every window a clean
/// slate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteStamp {
    /// Host id of the router (or routing daemon) that stamped the
    /// message on federation entry.
    pub origin: u32,
    /// The origin's stamp epoch at the time (rotated each stabilization
    /// pass).
    pub epoch: u64,
    /// Sequence number within `(origin, epoch)`.
    pub seq: u64,
    /// Remaining hop budget; a router forwards only while `ttl > 0`,
    /// decrementing per crossing.
    pub ttl: u8,
}

impl RouteStamp {
    /// The stamp with one hop spent.
    pub fn hop(self) -> RouteStamp {
        RouteStamp {
            ttl: self.ttl.saturating_sub(1),
            ..self
        }
    }
}
