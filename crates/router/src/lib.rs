//! Information routers: the WAN federation subsystem.
//!
//! "Our implementation uses application-level 'information routers' …
//! Messages are received by one router using a subscription, transmitted
//! to another router, and then re-published on another bus. The router is
//! intelligent about which messages are sent to which routers: messages
//! are only re-published on buses for which there exists a subscription on
//! that subject; the router can also perform other functions, such as
//! transforming subjects … Thus, the overall effect is to create the
//! illusion of a single, large bus." (§3.1)
//!
//! This crate is the sans-I/O half of that story: a [`RouterEngine`] that
//! consumes `(now_us, RouterEvent)` and emits [`RouterAction`]s, in the
//! same style as the core protocol engine. Drivers (the netsim bus
//! daemon, the wall-clock UDP router) own sockets and timers; the engine
//! owns every routing decision:
//!
//! * **subscription summaries** — each link periodically receives an
//!   aggregated subject-prefix summary ([`summarize`]) of everything the
//!   local bus and the *other* links subscribe to (split-horizon
//!   aggregation), never raw subscriber lists;
//! * **loop freedom** — split horizon plus a per-message origin/hop
//!   stamp ([`RouteStamp`]): the first router a publication crosses
//!   stamps it, every router deduplicates on `(origin, epoch, seq)` and
//!   decrements the hop budget, so cyclic topologies cannot echo;
//! * **route aging** — a link whose summary is not refreshed within the
//!   route TTL is flushed and re-requested (soft state);
//! * **subject rewriting** — a [`RewriteRule`] per link, applied
//!   element-wise at the crossing (see [`CompiledRewrite`]);
//! * **self-stabilization** — a periodic pass re-validates every table
//!   against locally-derivable truth, rebuilds what fails, and rotates
//!   the stamp epoch, so arbitrarily corrupted route state converges
//!   back to correct delivery within one stabilization period.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod rewrite;
mod semantic;
mod stamp;
mod summary;

pub use engine::{
    ForwardTarget, LinkId, RouteDecision, RouteStats, RouterAction, RouterConfig, RouterEngine,
    RouterEvent, RouterTimer,
};
pub use rewrite::{CompiledRewrite, RewriteRule};
pub use semantic::{SubjectMap, SubjectMapError, MAX_REWRITE_STEPS};
pub use stamp::RouteStamp;
pub use summary::summarize;

/// Microseconds, the time unit of the engine (matches the core engine).
pub type Micros = u64;
