//! The sans-I/O router engine: every routing decision, no I/O.
//!
//! Drivers feed `(now_us, RouterEvent)` and perform the returned
//! [`RouterAction`]s; the data path goes through [`RouterEngine::route`],
//! which decides — for one publication — whether to accept it locally and
//! which links to forward it on, under what subject, carrying what stamp.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use infobus_subject::{Subject, SubjectFilter};

use crate::rewrite::{CompiledRewrite, RewriteRule};
use crate::stamp::RouteStamp;
use crate::summary::summarize;
use crate::Micros;

/// Identifies one router link, in a namespace chosen by the driver (the
/// netsim daemon uses connection ids, the UDP router its two feet).
pub type LinkId = u32;

/// Tuning knobs for the router engine.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// How often each link's subscription summary is re-sent (soft-state
    /// refresh), and how often stale links are checked.
    pub summary_period_us: Micros,
    /// A link whose summary has not been refreshed within this horizon is
    /// flushed and re-requested (route aging).
    pub route_ttl_us: Micros,
    /// How often the self-stabilization pass revalidates every table and
    /// rotates the stamp epoch.
    pub stabilize_period_us: Micros,
    /// Hop budget assigned when this router stamps a publication on
    /// federation entry.
    pub max_hops: u8,
    /// Maximum number of filters in one link advertisement (deeper sets
    /// are generalized, see [`summarize`]).
    pub summary_budget: usize,
    /// Per-`(origin, epoch)` dedup window size, in sequence numbers.
    pub dedup_window: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            summary_period_us: 200_000,
            route_ttl_us: 1_000_000,
            stabilize_period_us: 1_000_000,
            max_hops: 16,
            summary_budget: 64,
            dedup_window: 4096,
        }
    }
}

/// The two periodic timers the engine asks its driver to arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterTimer {
    /// Summary refresh + route aging.
    Summary,
    /// Self-stabilization pass.
    Stabilize,
}

/// Inputs to the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum RouterEvent {
    /// A link to a peer router came up.
    LinkUp {
        /// Driver-chosen link id.
        link: LinkId,
        /// Subject rewrite applied to publications forwarded *out* on
        /// this link.
        rewrite: Option<RewriteRule>,
    },
    /// A link went down; its routes are flushed immediately.
    LinkDown {
        /// The link that closed.
        link: LinkId,
    },
    /// A subscription summary arrived from the peer on `link`.
    SummaryRecv {
        /// The link it arrived on.
        link: LinkId,
        /// Peer's advertisement sequence number (diagnostic; summaries
        /// are soft state and always replace wholesale).
        seq: u64,
        /// The advertised filters, as subject-filter strings.
        filters: Vec<String>,
    },
    /// The peer on `link` asked for a fresh summary.
    SummaryReq {
        /// The link the request arrived on.
        link: LinkId,
    },
    /// The driver's current view of *local* interest: every subscription
    /// on this router's own bus segment. Re-fed periodically from ground
    /// truth, which is what lets stabilization discard a corrupted copy.
    LocalInterest {
        /// Local subscription filters, as subject-filter strings.
        filters: Vec<String>,
    },
    /// A timer armed via [`RouterAction::SetTimer`] fired.
    Timer(RouterTimer),
}

/// Outputs of the engine, performed by the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterAction {
    /// Send a subscription summary to the peer on `link`.
    SendSummary {
        /// Destination link.
        link: LinkId,
        /// This router's advertisement sequence number for the link.
        seq: u64,
        /// Aggregated filters (at most `summary_budget` of them).
        filters: Vec<String>,
    },
    /// Ask the peer on `link` to re-send its summary now (used after
    /// aging or a stabilization repair flushed the stored copy).
    SendSummaryReq {
        /// Destination link.
        link: LinkId,
    },
    /// Arm `timer` to fire after `delay_us`.
    SetTimer {
        /// Which timer.
        timer: RouterTimer,
        /// Delay from now, in microseconds.
        delay_us: Micros,
    },
}

/// One forwarding target from a [`RouteDecision`]: send the publication
/// out on `link` under `subject` (rewritten if the link has a rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardTarget {
    /// The link to forward on.
    pub link: LinkId,
    /// The subject to forward under.
    pub subject: String,
}

/// The engine's verdict on one publication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDecision {
    /// Whether to deliver/republish the message on the local segment.
    /// `false` means the message is a loop duplicate — drop it entirely.
    pub accept: bool,
    /// The stamp outgoing copies (and a local republication) must carry.
    /// `None` when the message never crossed a link and is not about to.
    pub stamp: Option<RouteStamp>,
    /// Links to forward on, with the subject for each.
    pub targets: Vec<ForwardTarget>,
}

impl RouteDecision {
    fn suppress() -> RouteDecision {
        RouteDecision {
            accept: false,
            stamp: None,
            targets: Vec::new(),
        }
    }
}

/// Federation counters, surfaced as `route_*` entries in bus stats.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RouteStats {
    /// Subscription summaries sent over links.
    pub summaries_sent: u64,
    /// Subscription summaries received from links.
    pub summaries_recv: u64,
    /// Publications forwarded out over links (one count per link copy).
    pub forwarded: u64,
    /// Publications dropped by loop suppression (origin check, dedup
    /// window, or hop exhaustion never re-forwarding).
    pub loops_suppressed: u64,
    /// Route entries flushed because their summary aged out.
    pub stale_aged: u64,
    /// Tables rebuilt by the self-stabilization pass.
    pub stab_repairs: u64,
}

/// Per-link soft state: the compiled rewrite and the peer's last summary.
struct LinkState {
    rewrite: Option<CompiledRewrite>,
    /// Remote interest as `(raw text, parsed filter)` pairs, sorted and
    /// deduplicated by text. Keeping both lets stabilization cross-check
    /// one against the other.
    remote: Vec<(String, SubjectFilter)>,
    /// Peer's advertisement sequence number (diagnostic).
    remote_seq: u64,
    /// When the summary was last refreshed (drives route aging).
    refreshed_at: Micros,
    /// Our own advertisement sequence number for this link.
    out_seq: u64,
}

/// Dedup window for one `(origin, epoch)` stamp stream: every sequence
/// number `<= floor` or in `seen` has already been routed here.
struct OriginWindow {
    floor: u64,
    seen: BTreeSet<u64>,
    touched: Micros,
}

impl OriginWindow {
    /// Records `seq`; returns `false` if it was already seen (a loop).
    fn record(&mut self, seq: u64, window: usize, now: Micros) -> bool {
        self.touched = now;
        if seq <= self.floor || !self.seen.insert(seq) {
            return false;
        }
        while self.seen.len() > window {
            let lowest = *self.seen.iter().next().expect("window is non-empty");
            self.seen.remove(&lowest);
            self.floor = self.floor.max(lowest);
        }
        true
    }
}

/// The information-router state machine. See the crate docs for the
/// protocol; see [`RouterEngine::route`] for the data path.
pub struct RouterEngine {
    host: u32,
    cfg: RouterConfig,
    links: BTreeMap<LinkId, LinkState>,
    /// Local interest, same representation as `LinkState::remote`.
    local: Vec<(String, SubjectFilter)>,
    /// Current stamp epoch (rotated each stabilization pass).
    epoch: u64,
    /// Next stamp sequence number within the current epoch.
    next_seq: u64,
    windows: HashMap<(u32, u64), OriginWindow>,
    stats: RouteStats,
}

impl RouterEngine {
    /// Creates an engine for the router daemon on `host`.
    pub fn new(host: u32, cfg: RouterConfig) -> Self {
        RouterEngine {
            host,
            cfg,
            links: BTreeMap::new(),
            local: Vec::new(),
            epoch: 1,
            next_seq: 1,
            windows: HashMap::new(),
            stats: RouteStats::default(),
        }
    }

    /// Starts the engine: seeds the stamp epoch from the clock and arms
    /// both periodic timers.
    pub fn start(&mut self, now: Micros) -> Vec<RouterAction> {
        self.epoch = now.max(1);
        vec![
            RouterAction::SetTimer {
                timer: RouterTimer::Summary,
                delay_us: self.cfg.summary_period_us,
            },
            RouterAction::SetTimer {
                timer: RouterTimer::Stabilize,
                delay_us: self.cfg.stabilize_period_us,
            },
        ]
    }

    /// A snapshot of the federation counters.
    pub fn stats(&self) -> RouteStats {
        self.stats
    }

    /// Read-only check: does any link's remote side subscribe to
    /// `subject`? Drivers use this as the cheap accept filter before
    /// committing to payload copies.
    pub fn interested(&self, subject: &str) -> bool {
        let Ok(parsed) = Subject::new(subject) else {
            return false;
        };
        self.links
            .values()
            .any(|st| link_wants(st, subject, &parsed).is_some())
    }

    /// The data path: decides the fate of one publication.
    ///
    /// `from` is the link the message arrived on (`None` for a local
    /// publication — split horizon never forwards back out the arrival
    /// link). `stamp` is the [`RouteStamp`] the message carried, if any.
    ///
    /// Loop suppression happens here: a stamp whose origin is this router,
    /// or whose `(origin, epoch, seq)` this router has already routed, is
    /// rejected (`accept: false`). A stamp with no hops left is accepted
    /// locally but forwarded nowhere. A message that is about to cross its
    /// first link gets a fresh stamp from this router's counter.
    pub fn route(
        &mut self,
        now: Micros,
        subject: &str,
        from: Option<LinkId>,
        stamp: Option<RouteStamp>,
    ) -> RouteDecision {
        let hopped = match stamp {
            Some(s) => {
                if s.origin == self.host {
                    self.stats.loops_suppressed += 1;
                    return RouteDecision::suppress();
                }
                let w = self
                    .windows
                    .entry((s.origin, s.epoch))
                    .or_insert_with(|| OriginWindow {
                        floor: 0,
                        seen: BTreeSet::new(),
                        touched: now,
                    });
                if !w.record(s.seq, self.cfg.dedup_window, now) {
                    self.stats.loops_suppressed += 1;
                    return RouteDecision::suppress();
                }
                if s.ttl == 0 {
                    return RouteDecision {
                        accept: true,
                        stamp: Some(s),
                        targets: Vec::new(),
                    };
                }
                Some(s.hop())
            }
            None => None,
        };
        let Ok(parsed) = Subject::new(subject) else {
            return RouteDecision {
                accept: true,
                stamp: hopped,
                targets: Vec::new(),
            };
        };
        let mut targets = Vec::new();
        for (&link, st) in &self.links {
            if Some(link) == from {
                continue;
            }
            if let Some(out) = link_wants(st, subject, &parsed) {
                targets.push(ForwardTarget { link, subject: out });
            }
        }
        let out_stamp = if targets.is_empty() {
            hopped
        } else {
            self.stats.forwarded += targets.len() as u64;
            Some(hopped.unwrap_or_else(|| {
                let seq = self.next_seq;
                self.next_seq += 1;
                RouteStamp {
                    origin: self.host,
                    epoch: self.epoch,
                    seq,
                    ttl: self.cfg.max_hops,
                }
            }))
        };
        RouteDecision {
            accept: true,
            stamp: out_stamp,
            targets,
        }
    }

    /// Feeds one control-plane event; returns the actions to perform.
    pub fn handle(&mut self, now: Micros, event: RouterEvent) -> Vec<RouterAction> {
        let mut out = Vec::new();
        match event {
            RouterEvent::LinkUp { link, rewrite } => {
                self.links.insert(
                    link,
                    LinkState {
                        rewrite: rewrite.as_ref().map(CompiledRewrite::new),
                        remote: Vec::new(),
                        remote_seq: 0,
                        refreshed_at: now,
                        out_seq: 0,
                    },
                );
                self.advertise(None, &mut out);
                out.push(RouterAction::SendSummaryReq { link });
            }
            RouterEvent::LinkDown { link } => {
                if self.links.remove(&link).is_some() {
                    self.advertise(None, &mut out);
                }
            }
            RouterEvent::SummaryRecv { link, seq, filters } => {
                self.stats.summaries_recv += 1;
                if let Some(st) = self.links.get_mut(&link) {
                    let parsed = parse_filters(&filters);
                    let changed = st
                        .remote
                        .iter()
                        .map(|(t, _)| t)
                        .ne(parsed.iter().map(|(t, _)| t));
                    st.remote = parsed;
                    st.remote_seq = seq;
                    st.refreshed_at = now;
                    if changed {
                        // Interest reachable through `link` changed, so the
                        // aggregate we advertise elsewhere changed too.
                        // Split horizon: never echo a summary back where it
                        // came from — that is what quiesces bus chains.
                        let others: Vec<LinkId> =
                            self.links.keys().copied().filter(|l| *l != link).collect();
                        for l in others {
                            self.advertise(Some(l), &mut out);
                        }
                    }
                }
            }
            RouterEvent::SummaryReq { link } => {
                if self.links.contains_key(&link) {
                    self.advertise(Some(link), &mut out);
                }
            }
            RouterEvent::LocalInterest { filters } => {
                let parsed = parse_filters(&filters);
                if self
                    .local
                    .iter()
                    .map(|(t, _)| t)
                    .ne(parsed.iter().map(|(t, _)| t))
                {
                    self.local = parsed;
                    self.advertise(None, &mut out);
                }
            }
            RouterEvent::Timer(RouterTimer::Summary) => {
                self.age_links(now, &mut out);
                self.advertise(None, &mut out);
                out.push(RouterAction::SetTimer {
                    timer: RouterTimer::Summary,
                    delay_us: self.cfg.summary_period_us,
                });
            }
            RouterEvent::Timer(RouterTimer::Stabilize) => {
                self.stabilize(now, &mut out);
                out.push(RouterAction::SetTimer {
                    timer: RouterTimer::Stabilize,
                    delay_us: self.cfg.stabilize_period_us,
                });
            }
        }
        out
    }

    /// Deterministic fault injection for stabilization tests: garbles the
    /// route tables, the compiled rewrites, the stamp counters, and the
    /// dedup windows. Every corruption injected here is repaired within
    /// one stabilization pass plus one summary exchange.
    pub fn scramble(&mut self, seed: u64) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for st in self.links.values_mut() {
            for (raw, _) in st.remote.iter_mut() {
                // The raw text no longer matches the parsed filter.
                raw.push(char::from(b'A' + (next() % 26) as u8));
            }
            st.remote.reverse();
            st.remote_seq = next();
            st.refreshed_at = u64::MAX;
            if let Some(rw) = &mut st.rewrite {
                rw.corrupt();
            }
        }
        for (raw, _) in self.local.iter_mut() {
            raw.push('~');
        }
        self.local.reverse();
        // A stale epoch + rewound counter: fresh stamps collide with
        // triples other routers already recorded, until rotation.
        self.epoch = next() % 7;
        self.next_seq = next() % 3;
        // A saturated garbage window that would suppress everything from
        // one (origin, epoch).
        self.windows.insert(
            (next() as u32, next()),
            OriginWindow {
                floor: u64::MAX,
                seen: BTreeSet::new(),
                touched: 0,
            },
        );
    }

    /// Emits a fresh advertisement on `only` (or every link): the summary
    /// of local interest plus every *other* link's remote interest.
    fn advertise(&mut self, only: Option<LinkId>, out: &mut Vec<RouterAction>) {
        let ids: Vec<LinkId> = self
            .links
            .keys()
            .copied()
            .filter(|l| only.is_none() || only == Some(*l))
            .collect();
        for link in ids {
            let mut filters: Vec<SubjectFilter> =
                self.local.iter().map(|(_, f)| f.clone()).collect();
            for (&other, st) in &self.links {
                if other != link {
                    filters.extend(st.remote.iter().map(|(_, f)| f.clone()));
                }
            }
            let summary: Vec<String> = summarize(&filters, self.cfg.summary_budget)
                .iter()
                .map(|f| f.as_str().to_owned())
                .collect();
            let st = self.links.get_mut(&link).expect("link id from key scan");
            st.out_seq += 1;
            let seq = st.out_seq;
            self.stats.summaries_sent += 1;
            out.push(RouterAction::SendSummary {
                link,
                seq,
                filters: summary,
            });
        }
    }

    /// Route aging: flushes links whose summary outlived the route TTL
    /// and asks their peers for a fresh one.
    fn age_links(&mut self, now: Micros, out: &mut Vec<RouterAction>) {
        let ttl = self.cfg.route_ttl_us;
        let mut aged = Vec::new();
        for (&link, st) in self.links.iter_mut() {
            if !st.remote.is_empty() && now.saturating_sub(st.refreshed_at) > ttl {
                self.stats.stale_aged += st.remote.len() as u64;
                st.remote.clear();
                st.remote_seq = 0;
                aged.push(link);
            }
        }
        for link in aged {
            out.push(RouterAction::SendSummaryReq { link });
        }
    }

    /// The self-stabilization pass: validates every table against
    /// locally-derivable truth and rebuilds what fails.
    ///
    /// * Remote route tables — raw filter text must reparse to exactly
    ///   the stored parsed filter, entries must be sorted and unique, and
    ///   the refresh time must not lie in the future. A failing table is
    ///   flushed and re-requested from the peer (the peer's copy is the
    ///   ground truth).
    /// * Compiled rewrites — recompiled from their source rule whenever
    ///   the compiled form disagrees with it.
    /// * Local interest — same validation; a failing copy is discarded
    ///   and rebuilt from the driver's next [`RouterEvent::LocalInterest`]
    ///   feed (the driver re-derives it from ground truth every summary
    ///   period).
    /// * Stamp state — idle and saturated dedup windows are pruned, and
    ///   the epoch is rotated past the clock so a corrupted sequence
    ///   counter cannot keep colliding with triples other routers have
    ///   already recorded.
    fn stabilize(&mut self, now: Micros, out: &mut Vec<RouterAction>) {
        if !table_valid(&self.local) {
            self.local.clear();
            self.stats.stab_repairs += 1;
        }
        let mut repair = Vec::new();
        for (&link, st) in self.links.iter_mut() {
            let mut bad = false;
            if let Some(rw) = &mut st.rewrite {
                if !rw.is_consistent() {
                    let rule = rw.rule().clone();
                    *rw = CompiledRewrite::new(&rule);
                    bad = true;
                }
            }
            if !table_valid(&st.remote) || st.refreshed_at > now {
                st.remote.clear();
                st.remote_seq = 0;
                st.refreshed_at = now;
                bad = true;
            }
            if bad {
                self.stats.stab_repairs += 1;
                repair.push(link);
            }
        }
        for link in repair {
            out.push(RouterAction::SendSummaryReq { link });
        }
        let idle = 2 * self.cfg.stabilize_period_us;
        self.windows
            .retain(|_, w| w.floor != u64::MAX && now.saturating_sub(w.touched) <= idle);
        self.epoch = (self.epoch + 1).max(now.max(1));
        self.next_seq = 1;
    }
}

/// Whether `link`'s remote side subscribes to this subject, and under
/// what (possibly rewritten) subject to forward it. A rewrite miss
/// forwards the subject unchanged.
fn link_wants(st: &LinkState, subject: &str, parsed: &Subject) -> Option<String> {
    match &st.rewrite {
        Some(rw) => match rw.apply(subject) {
            Some(rewritten) => {
                let subj = Subject::new(&rewritten).ok()?;
                st.remote
                    .iter()
                    .any(|(_, f)| f.matches(&subj))
                    .then_some(rewritten)
            }
            None => st
                .remote
                .iter()
                .any(|(_, f)| f.matches(parsed))
                .then(|| subject.to_owned()),
        },
        None => st
            .remote
            .iter()
            .any(|(_, f)| f.matches(parsed))
            .then(|| subject.to_owned()),
    }
}

/// Parses, sorts and deduplicates a received filter list (unparseable
/// entries are dropped — over-approximation elsewhere keeps this safe).
fn parse_filters(filters: &[String]) -> Vec<(String, SubjectFilter)> {
    let set: BTreeSet<&String> = filters.iter().collect();
    set.into_iter()
        .filter_map(|t| SubjectFilter::new(t).ok().map(|f| (t.clone(), f)))
        .collect()
}

/// Structural validity of an interest table: sorted, unique, and every
/// raw text reparses to exactly the stored filter.
fn table_valid(table: &[(String, SubjectFilter)]) -> bool {
    table.windows(2).all(|w| w[0].0 < w[1].0)
        && table.iter().all(|(raw, parsed)| {
            SubjectFilter::new(raw).is_ok_and(|f| f.as_str() == parsed.as_str())
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(host: u32) -> RouterEngine {
        RouterEngine::new(host, RouterConfig::default())
    }

    fn summaries(actions: &[RouterAction]) -> Vec<(LinkId, Vec<String>)> {
        actions
            .iter()
            .filter_map(|a| match a {
                RouterAction::SendSummary { link, filters, .. } => Some((*link, filters.clone())),
                _ => None,
            })
            .collect()
    }

    fn has_req(actions: &[RouterAction], link: LinkId) -> bool {
        actions
            .iter()
            .any(|a| matches!(a, RouterAction::SendSummaryReq { link: l } if *l == link))
    }

    #[test]
    fn summary_exchange_then_forwarding() {
        let mut r = engine(1);
        r.start(0);
        r.handle(
            0,
            RouterEvent::LinkUp {
                link: 7,
                rewrite: None,
            },
        );
        assert!(!r.interested("news.x"));
        r.handle(
            10,
            RouterEvent::SummaryRecv {
                link: 7,
                seq: 1,
                filters: vec!["news.>".into()],
            },
        );
        assert!(r.interested("news.x"));
        assert!(!r.interested("fab5.cc"));

        // A local publication the remote side wants: forwarded, freshly
        // stamped by this router.
        let d = r.route(20, "news.x", None, None);
        assert!(d.accept);
        assert_eq!(d.targets.len(), 1);
        assert_eq!(d.targets[0].link, 7);
        assert_eq!(d.targets[0].subject, "news.x");
        let stamp = d.stamp.expect("crossing a link stamps the message");
        assert_eq!(stamp.origin, 1);
        assert_eq!(stamp.ttl, 16);

        // One nobody wants: accepted locally, not forwarded, no stamp.
        let d = r.route(21, "fab5.cc", None, None);
        assert!(d.accept);
        assert!(d.targets.is_empty());
        assert!(d.stamp.is_none());

        // Split horizon: a message arriving *on* link 7 never goes back
        // out on link 7, even though the remote side matches.
        let d = r.route(
            22,
            "news.y",
            Some(7),
            Some(RouteStamp {
                origin: 9,
                epoch: 1,
                seq: 1,
                ttl: 4,
            }),
        );
        assert!(d.accept);
        assert!(d.targets.is_empty());
        // The traversal spends a hop even when nothing is forwarded: the
        // republished copy keeps the dedup identity with one less hop.
        assert_eq!(d.stamp.expect("stamp preserved").ttl, 3);
        assert_eq!(r.stats().forwarded, 1);
    }

    #[test]
    fn origin_and_window_suppression() {
        let mut r = engine(1);
        r.start(0);
        r.handle(
            0,
            RouterEvent::LinkUp {
                link: 1,
                rewrite: None,
            },
        );

        // A copy stamped by *this* router came back around: suppressed.
        let own = RouteStamp {
            origin: 1,
            epoch: 5,
            seq: 3,
            ttl: 9,
        };
        let d = r.route(10, "a.b", Some(1), Some(own));
        assert!(!d.accept);

        // A remote triple routes once, then never again.
        let s = RouteStamp {
            origin: 2,
            epoch: 5,
            seq: 3,
            ttl: 9,
        };
        assert!(r.route(11, "a.b", Some(1), Some(s)).accept);
        assert!(!r.route(12, "a.b", Some(1), Some(s)).accept);
        assert_eq!(r.stats().loops_suppressed, 2);
    }

    #[test]
    fn hop_exhaustion_accepts_but_stops_forwarding() {
        let mut r = engine(1);
        r.start(0);
        r.handle(
            0,
            RouterEvent::LinkUp {
                link: 1,
                rewrite: None,
            },
        );
        r.handle(
            0,
            RouterEvent::LinkUp {
                link: 2,
                rewrite: None,
            },
        );
        r.handle(
            1,
            RouterEvent::SummaryRecv {
                link: 2,
                seq: 1,
                filters: vec![">".into()],
            },
        );
        let s = RouteStamp {
            origin: 2,
            epoch: 1,
            seq: 1,
            ttl: 0,
        };
        let d = r.route(5, "a.b", Some(1), Some(s));
        assert!(d.accept, "hop exhaustion still delivers locally");
        assert!(d.targets.is_empty(), "but forwards nowhere");
        // With hops left the same shape forwards to link 2.
        let s = RouteStamp {
            origin: 2,
            epoch: 1,
            seq: 2,
            ttl: 1,
        };
        let d = r.route(6, "a.b", Some(1), Some(s));
        assert_eq!(d.targets.len(), 1);
        assert_eq!(d.stamp.expect("hopped").ttl, 0);
    }

    #[test]
    fn rewrite_applied_at_the_crossing() {
        let mut r = engine(1);
        r.start(0);
        r.handle(
            0,
            RouterEvent::LinkUp {
                link: 3,
                rewrite: Some(RewriteRule {
                    from_prefix: "fab5".into(),
                    to_prefix: "hq.fab5".into(),
                }),
            },
        );
        r.handle(
            1,
            RouterEvent::SummaryRecv {
                link: 3,
                seq: 1,
                filters: vec!["hq.>".into(), "ops.>".into()],
            },
        );
        let d = r.route(5, "fab5.cc.litho8", None, None);
        assert_eq!(d.targets[0].subject, "hq.fab5.cc.litho8");
        // A miss forwards unchanged (remote still wants it under ops.>).
        let d = r.route(6, "ops.alarm", None, None);
        assert_eq!(d.targets[0].subject, "ops.alarm");
        // A miss the remote does not want goes nowhere.
        let d = r.route(7, "plant.temp", None, None);
        assert!(d.targets.is_empty());
    }

    #[test]
    fn split_horizon_aggregation_in_summaries() {
        let mut r = engine(1);
        r.start(0);
        r.handle(
            0,
            RouterEvent::LinkUp {
                link: 1,
                rewrite: None,
            },
        );
        r.handle(
            0,
            RouterEvent::LinkUp {
                link: 2,
                rewrite: None,
            },
        );
        r.handle(
            0,
            RouterEvent::LocalInterest {
                filters: vec!["local.>".into()],
            },
        );
        let acts = r.handle(
            1,
            RouterEvent::SummaryRecv {
                link: 1,
                seq: 1,
                filters: vec!["one.>".into()],
            },
        );
        // Link 1's interest propagates to link 2 but never back to link 1.
        let sums = summaries(&acts);
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].0, 2);
        assert!(sums[0].1.contains(&"one.>".to_owned()));
        // The periodic refresh advertises to both; link 1's copy carries
        // local interest but not its own filters back.
        let acts = r.handle(2, RouterEvent::Timer(RouterTimer::Summary));
        let sums = summaries(&acts);
        assert_eq!(sums.len(), 2);
        let to_one = &sums.iter().find(|(l, _)| *l == 1).unwrap().1;
        assert!(to_one.contains(&"local.>".to_owned()));
        assert!(!to_one.contains(&"one.>".to_owned()), "{to_one:?}");
    }

    #[test]
    fn route_aging_flushes_and_rerequests() {
        let mut r = engine(1);
        r.start(0);
        r.handle(
            0,
            RouterEvent::LinkUp {
                link: 1,
                rewrite: None,
            },
        );
        r.handle(
            1,
            RouterEvent::SummaryRecv {
                link: 1,
                seq: 1,
                filters: vec!["news.>".into()],
            },
        );
        // Within the TTL nothing ages.
        let acts = r.handle(500_000, RouterEvent::Timer(RouterTimer::Summary));
        assert!(!has_req(&acts, 1));
        assert!(r.interested("news.x"));
        // Past the TTL the route is flushed and re-requested.
        let acts = r.handle(2_000_000, RouterEvent::Timer(RouterTimer::Summary));
        assert!(has_req(&acts, 1));
        assert!(!r.interested("news.x"));
        assert_eq!(r.stats().stale_aged, 1);
        // The refresh restores it.
        r.handle(
            2_000_001,
            RouterEvent::SummaryRecv {
                link: 1,
                seq: 2,
                filters: vec!["news.>".into()],
            },
        );
        assert!(r.interested("news.x"));
    }

    #[test]
    fn stabilization_repairs_scrambled_state() {
        let mut r = engine(1);
        r.start(0);
        r.handle(
            0,
            RouterEvent::LinkUp {
                link: 1,
                rewrite: Some(RewriteRule {
                    from_prefix: "a".into(),
                    to_prefix: "b.a".into(),
                }),
            },
        );
        r.handle(
            1,
            RouterEvent::SummaryRecv {
                link: 1,
                seq: 1,
                filters: vec!["b.>".into()],
            },
        );
        r.handle(
            1,
            RouterEvent::LocalInterest {
                filters: vec!["local.>".into()],
            },
        );
        assert!(r.interested("a.x"));

        r.scramble(42);

        // The pass detects every corruption, rebuilds, and re-requests.
        let acts = r.handle(1_000_000, RouterEvent::Timer(RouterTimer::Stabilize));
        assert!(has_req(&acts, 1));
        assert!(r.stats().stab_repairs >= 1);
        // Fresh stamps no longer collide: epoch rotated past the clock.
        r.handle(
            1_000_001,
            RouterEvent::SummaryRecv {
                link: 1,
                seq: 1,
                filters: vec!["b.>".into()],
            },
        );
        let d = r.route(1_000_002, "a.x", None, None);
        assert_eq!(d.targets[0].subject, "b.a.x", "rewrite recompiled");
        let stamp = d.stamp.expect("stamped");
        assert!(
            stamp.epoch >= 1_000_000,
            "epoch rotated, got {}",
            stamp.epoch
        );
        // The garbage window is gone.
        assert!(r.windows.values().all(|w| w.floor != u64::MAX));
        // A second pass over healthy state repairs nothing further.
        let before = r.stats().stab_repairs;
        r.handle(
            1_000_000,
            RouterEvent::LocalInterest {
                filters: vec!["local.>".into()],
            },
        );
        r.handle(2_000_000, RouterEvent::Timer(RouterTimer::Stabilize));
        assert_eq!(r.stats().stab_repairs, before);
    }

    #[test]
    fn idempotent_stabilization_on_healthy_engine() {
        let mut r = engine(1);
        r.start(0);
        r.handle(
            0,
            RouterEvent::LinkUp {
                link: 1,
                rewrite: None,
            },
        );
        r.handle(
            1,
            RouterEvent::SummaryRecv {
                link: 1,
                seq: 1,
                filters: vec!["x.>".into()],
            },
        );
        let acts = r.handle(1_000_000, RouterEvent::Timer(RouterTimer::Stabilize));
        assert!(!has_req(&acts, 1), "healthy tables are left alone");
        assert_eq!(r.stats().stab_repairs, 0);
        assert!(r.interested("x.y"));
    }

    /// An engine-level ring: N routers, each linked to both neighbors.
    /// Summaries propagate until quiescent; then one publication enters
    /// at router 0 and must reach every other router exactly once, with
    /// the ring's returning copies suppressed and the process finite.
    #[test]
    fn ring_is_loop_free_and_delivers_exactly_once() {
        const N: usize = 5;
        // Link ids: on each router, link 0 = previous neighbor, link 1 =
        // next neighbor (clockwise).
        let mut ring: Vec<RouterEngine> = (0..N as u32).map(engine).collect();
        let mut pending: Vec<(usize, RouterEvent)> = Vec::new();
        for (i, r) in ring.iter_mut().enumerate() {
            r.start(0);
            for a in r
                .handle(
                    0,
                    RouterEvent::LinkUp {
                        link: 0,
                        rewrite: None,
                    },
                )
                .into_iter()
                .chain(r.handle(
                    0,
                    RouterEvent::LinkUp {
                        link: 1,
                        rewrite: None,
                    },
                ))
            {
                queue_ctrl(i, a, &mut pending);
            }
        }
        // Every router's segment subscribes to "news.>".
        for (i, r) in ring.iter_mut().enumerate() {
            for a in r.handle(
                1,
                RouterEvent::LocalInterest {
                    filters: vec!["news.>".into()],
                },
            ) {
                queue_ctrl(i, a, &mut pending);
            }
        }
        // Run the control plane to quiescence (bounded: ping-pong would
        // mean the summary protocol does not converge).
        let mut rounds = 0;
        while let Some((to, ev)) = pending.pop() {
            rounds += 1;
            assert!(rounds < 10_000, "summary exchange does not quiesce");
            for a in ring[to].handle(2, ev) {
                queue_ctrl(to, a, &mut pending);
            }
        }
        for r in &ring {
            assert!(r.interested("news.x"), "interest propagated ring-wide");
        }

        // Data plane: a publication enters at router 0.
        let mut deliveries = vec![0usize; N];
        let mut msgs: Vec<(usize, LinkId, Option<RouteStamp>)> = Vec::new();
        let d = ring[0].route(10, "news.x", None, None);
        deliveries[0] += 1; // it is already local at router 0
        for t in &d.targets {
            msgs.push((peer_of(0, t.link), arrival_link(t.link), d.stamp));
        }
        let mut hops = 0;
        while let Some((at, from, stamp)) = msgs.pop() {
            hops += 1;
            assert!(hops < 1_000, "message circulates forever");
            let d = ring[at].route(20 + hops, "news.x", Some(from), stamp);
            if d.accept {
                deliveries[at] += 1;
            }
            for t in &d.targets {
                msgs.push((peer_of(at, t.link), arrival_link(t.link), d.stamp));
            }
        }
        assert_eq!(deliveries, vec![1; N], "exactly one copy per segment");
        let suppressed: u64 = ring.iter().map(|r| r.stats().loops_suppressed).sum();
        assert!(suppressed >= 1, "the ring's returning copies were caught");
        // Conservation: total forwards == deliveries beyond the origin
        // plus the suppressed returning copies.
        let forwarded: u64 = ring.iter().map(|r| r.stats().forwarded).sum();
        assert_eq!(forwarded, (N as u64 - 1) + suppressed);

        fn peer_of(i: usize, link: LinkId) -> usize {
            match link {
                0 => (i + N - 1) % N,
                _ => (i + 1) % N,
            }
        }
        // Arriving at the peer, the message comes in on the opposite foot.
        fn arrival_link(out_link: LinkId) -> LinkId {
            1 - out_link
        }
        fn queue_ctrl(i: usize, a: RouterAction, pending: &mut Vec<(usize, RouterEvent)>) {
            match a {
                RouterAction::SendSummary { link, seq, filters } => {
                    let to = peer_of(i, link);
                    pending.push((
                        to,
                        RouterEvent::SummaryRecv {
                            link: arrival_link(link),
                            seq,
                            filters,
                        },
                    ));
                }
                RouterAction::SendSummaryReq { link } => {
                    let to = peer_of(i, link);
                    pending.push((
                        to,
                        RouterEvent::SummaryReq {
                            link: arrival_link(link),
                        },
                    ));
                }
                RouterAction::SetTimer { .. } => {}
            }
        }
    }

    #[test]
    fn dedup_window_floor_advances() {
        let mut w = OriginWindow {
            floor: 0,
            seen: BTreeSet::new(),
            touched: 0,
        };
        for seq in 1..=10 {
            assert!(w.record(seq, 4, 0));
        }
        assert!(w.seen.len() <= 4);
        assert!(w.floor >= 6);
        // Everything at or below the floor reads as seen.
        assert!(!w.record(2, 4, 0));
        assert!(!w.record(w.floor, 4, 0));
        assert!(w.record(11, 4, 0));
    }

    #[test]
    fn link_down_flushes_interest() {
        let mut r = engine(1);
        r.start(0);
        r.handle(
            0,
            RouterEvent::LinkUp {
                link: 1,
                rewrite: None,
            },
        );
        r.handle(
            1,
            RouterEvent::SummaryRecv {
                link: 1,
                seq: 1,
                filters: vec![">".into()],
            },
        );
        assert!(r.interested("a"));
        r.handle(2, RouterEvent::LinkDown { link: 1 });
        assert!(!r.interested("a"));
        let d = r.route(3, "a", None, None);
        assert!(d.targets.is_empty());
    }
}
