//! Subscription-summary aggregation: what a router advertises to a link.
//!
//! A link never carries raw subscriber lists. The advertisement is an
//! *over-approximating summary*: duplicates collapse, filters covered by
//! broader filters disappear, and — when the set still exceeds the entry
//! budget — the deepest filters are generalized to `prefix.>` until it
//! fits. Over-approximation is the safe direction for soft-state
//! routing: a summary may pull a few extra messages across a link, but
//! it can never starve a remote subscriber.

use std::collections::BTreeSet;

use infobus_subject::SubjectFilter;

/// Aggregates a subscription set into at most `budget` filters whose
/// union covers every input filter. Output is deterministic (sorted,
/// deduplicated). A zero budget is treated as 1; an empty input summarizes
/// to an empty advertisement.
pub fn summarize(filters: &[SubjectFilter], budget: usize) -> Vec<SubjectFilter> {
    let budget = budget.max(1);
    // Dedupe + deterministic order.
    let mut set: BTreeSet<String> = filters.iter().map(|f| f.as_str().to_owned()).collect();
    drop_covered(&mut set);
    // Generalize the deepest entries to `prefix.>` until within budget.
    while set.len() > budget {
        let deepest = set
            .iter()
            .max_by_key(|s| (s.matches('.').count(), s.len()))
            .cloned()
            .expect("non-empty set: len > budget >= 1");
        set.remove(&deepest);
        set.insert(generalize(&deepest));
        drop_covered(&mut set);
    }
    set.iter()
        .filter_map(|s| SubjectFilter::new(s).ok())
        .collect()
}

/// One step up the generalization ladder: `a.b.c` → `a.b.>` → `a.>` →
/// `>`. Strictly widens (the result covers the input) and strictly
/// shortens, so the summarization loop always terminates.
fn generalize(s: &str) -> String {
    let trunk = s.strip_suffix(".>").unwrap_or(s);
    match trunk.rsplit_once('.') {
        Some((head, _)) => format!("{head}.>"),
        None => ">".to_owned(),
    }
}

/// Removes every filter covered by a different remaining filter.
fn drop_covered(set: &mut BTreeSet<String>) {
    let parsed: Vec<(String, SubjectFilter)> = set
        .iter()
        .filter_map(|s| SubjectFilter::new(s).ok().map(|f| (s.clone(), f)))
        .collect();
    let mut dropped: Vec<String> = Vec::new();
    for (i, (text, f)) in parsed.iter().enumerate() {
        let covered = parsed.iter().enumerate().any(|(j, (otext, other))| {
            i != j && !dropped.contains(otext) && other.covers(f) && !f.covers(other)
        });
        // Of an exactly-equivalent pair only the BTreeSet dedupe applies
        // (distinct texts with mutual cover both stay: rare and harmless).
        if covered {
            dropped.push(text.clone());
        }
    }
    for d in dropped {
        set.remove(&d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infobus_subject::Subject;

    fn f(s: &str) -> SubjectFilter {
        SubjectFilter::new(s).unwrap()
    }

    fn texts(filters: &[SubjectFilter]) -> Vec<String> {
        filters.iter().map(|x| x.as_str().to_owned()).collect()
    }

    #[test]
    fn dedupes_and_drops_covered() {
        let out = summarize(
            &[f("news.>"), f("news.equity.gmc"), f("news.>"), f("fab5.*")],
            16,
        );
        assert_eq!(texts(&out), vec!["fab5.*", "news.>"]);
    }

    #[test]
    fn generalizes_to_fit_budget() {
        let input: Vec<SubjectFilter> =
            (0..10).map(|i| f(&format!("plant.cell{i}.temp"))).collect();
        let out = summarize(&input, 3);
        assert!(out.len() <= 3, "{:?}", texts(&out));
        // The summary must still cover every input filter.
        for orig in &input {
            assert!(
                out.iter().any(|s| s.covers(orig)),
                "{} not covered by {:?}",
                orig.as_str(),
                texts(&out)
            );
        }
    }

    #[test]
    fn over_approximates_never_starves() {
        // Whatever the budget, every subject matched by an input filter is
        // matched by the summary.
        let input = vec![
            f("a.b.c"),
            f("a.b.d"),
            f("x.*.z"),
            f("deep.a.b.c.d.e"),
            f("q.>"),
        ];
        let subjects = ["a.b.c", "a.b.d", "x.k.z", "deep.a.b.c.d.e", "q.r.s"];
        for budget in 1..=6 {
            let out = summarize(&input, budget);
            assert!(out.len() <= budget.max(1));
            for s in subjects {
                let subj = Subject::new(s).unwrap();
                assert!(
                    out.iter().any(|flt| flt.matches(&subj)),
                    "budget {budget}: {s} lost from {:?}",
                    texts(&out)
                );
            }
        }
    }

    #[test]
    fn budget_one_collapses_to_catch_all_when_needed() {
        let out = summarize(&[f("alpha"), f("beta.x"), f("gamma.y.z")], 1);
        assert_eq!(texts(&out), vec![">"]);
    }

    #[test]
    fn deterministic_and_sorted() {
        let a = summarize(&[f("b.x"), f("a.y"), f("c.z.>")], 16);
        let b = summarize(&[f("c.z.>"), f("b.x"), f("a.y")], 16);
        assert_eq!(texts(&a), texts(&b));
        let mut sorted = texts(&a);
        sorted.sort();
        assert_eq!(texts(&a), sorted);
    }

    #[test]
    fn empty_input_is_empty_summary() {
        assert!(summarize(&[], 8).is_empty());
    }
}
