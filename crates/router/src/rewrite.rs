//! Subject rewriting at link crossings.

use infobus_subject::Subject;

/// A subject-rewriting rule applied to publications crossing a link.
///
/// If a forwarded subject starts with `from_prefix` (element-wise), that
/// prefix is replaced with `to_prefix`. For example,
/// `{ from_prefix: "fab5", to_prefix: "hq.fab5" }` republishes
/// `fab5.cc.litho8` as `hq.fab5.cc.litho8` on the remote bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteRule {
    /// Element-wise subject prefix to match.
    pub from_prefix: String,
    /// Replacement prefix.
    pub to_prefix: String,
}

impl RewriteRule {
    /// Whether the rule matches `subject` (element-wise prefix test).
    /// Never allocates — use this on hot paths before [`apply`] commits
    /// to building the rewritten string.
    ///
    /// [`apply`]: RewriteRule::apply
    pub fn matches(&self, subject: &str) -> bool {
        match subject.strip_prefix(self.from_prefix.as_str()) {
            Some("") => true,
            Some(rest) => rest.starts_with('.'),
            None => false,
        }
    }

    /// Applies the rule to a subject string; returns the rewritten
    /// subject, or `None` if the prefix does not match. The miss path is
    /// allocation-free (a prefix test on borrowed bytes); only a hit
    /// builds the rewritten string.
    pub fn apply(&self, subject: &str) -> Option<String> {
        let rest = subject.strip_prefix(self.from_prefix.as_str())?;
        if rest.is_empty() {
            return Some(self.to_prefix.clone());
        }
        if !rest.starts_with('.') {
            return None;
        }
        let mut out = String::with_capacity(self.to_prefix.len() + rest.len());
        out.push_str(&self.to_prefix);
        out.push_str(rest);
        Some(out)
    }
}

/// A [`RewriteRule`] compiled for element-wise application: the prefix is
/// split into elements once at construction, so a router matching every
/// forwarded subject against the rule compares elements instead of
/// re-deriving boundaries from the string on each message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledRewrite {
    from: Vec<String>,
    to_prefix: String,
    /// The source rule, kept for re-validation: a self-stabilization pass
    /// can recompile and compare (see [`CompiledRewrite::is_consistent`]).
    rule: RewriteRule,
}

impl CompiledRewrite {
    /// Compiles a rule (splits `from_prefix` into elements once).
    pub fn new(rule: &RewriteRule) -> Self {
        CompiledRewrite {
            from: rule.from_prefix.split('.').map(str::to_owned).collect(),
            to_prefix: rule.to_prefix.clone(),
            rule: rule.clone(),
        }
    }

    /// The rule this was compiled from.
    pub fn rule(&self) -> &RewriteRule {
        &self.rule
    }

    /// Whether the compiled tables still agree with the source rule
    /// (stabilization-pass validation; `false` after memory corruption).
    pub fn is_consistent(&self) -> bool {
        self.to_prefix == self.rule.to_prefix
            && self
                .from
                .iter()
                .map(String::as_str)
                .eq(self.rule.from_prefix.split('.'))
    }

    /// Fault injection for stabilization tests: desynchronizes the
    /// compiled tables from the source rule, after which
    /// [`CompiledRewrite::is_consistent`] is `false` and a stabilization
    /// pass recompiles from [`CompiledRewrite::rule`]. Never called on
    /// healthy paths.
    pub fn corrupt(&mut self) {
        self.from.push(String::from("__corrupt"));
    }

    /// Element-wise apply: matches `elements` against the compiled prefix
    /// and, on a hit, builds the rewritten subject string. The miss path
    /// performs only slice comparisons.
    pub fn apply_elements(&self, elements: &[&str]) -> Option<String> {
        if elements.len() < self.from.len() {
            return None;
        }
        if !self
            .from
            .iter()
            .zip(elements)
            .all(|(want, got)| want == got)
        {
            return None;
        }
        let tail = &elements[self.from.len()..];
        let extra: usize = tail.iter().map(|e| e.len() + 1).sum();
        let mut out = String::with_capacity(self.to_prefix.len() + extra);
        out.push_str(&self.to_prefix);
        for e in tail {
            out.push('.');
            out.push_str(e);
        }
        Some(out)
    }

    /// Applies the compiled rule to a parsed [`Subject`].
    pub fn apply_subject(&self, subject: &Subject) -> Option<String> {
        let elements: Vec<&str> = subject.elements().collect();
        self.apply_elements(&elements)
    }

    /// Applies the compiled rule to a subject string (splits it, then
    /// defers to [`CompiledRewrite::apply_elements`]).
    pub fn apply(&self, subject: &str) -> Option<String> {
        let elements: Vec<&str> = subject.split('.').collect();
        self.apply_elements(&elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrites_on_element_boundaries() {
        let r = RewriteRule {
            from_prefix: "fab5".into(),
            to_prefix: "hq.fab5".into(),
        };
        assert_eq!(r.apply("fab5.cc.litho8"), Some("hq.fab5.cc.litho8".into()));
        assert_eq!(r.apply("fab5"), Some("hq.fab5".into()));
        assert_eq!(r.apply("fab55.cc"), None, "no partial-element match");
        assert_eq!(r.apply("news.fab5"), None);
        assert!(r.matches("fab5.cc"));
        assert!(!r.matches("fab55.cc"));
    }

    #[test]
    fn multi_element_prefix() {
        let r = RewriteRule {
            from_prefix: "news.equity".into(),
            to_prefix: "ny.equity".into(),
        };
        assert_eq!(r.apply("news.equity.gmc"), Some("ny.equity.gmc".into()));
        assert_eq!(r.apply("news.bond.gmc"), None);
    }

    #[test]
    fn compiled_agrees_on_fixed_cases() {
        let r = RewriteRule {
            from_prefix: "news.equity".into(),
            to_prefix: "ny".into(),
        };
        let c = CompiledRewrite::new(&r);
        for s in [
            "news.equity.gmc",
            "news.equity",
            "news.equit",
            "news.equityx.gmc",
            "news",
            "other.news.equity",
        ] {
            assert_eq!(c.apply(s), r.apply(s), "compiled vs string on {s}");
        }
        assert!(c.is_consistent());
    }

    #[test]
    fn inconsistent_compilation_detected() {
        let r = RewriteRule {
            from_prefix: "a.b".into(),
            to_prefix: "x".into(),
        };
        let mut c = CompiledRewrite::new(&r);
        c.from[1] = "zz".into(); // simulated corruption
        assert!(!c.is_consistent());
    }
}
