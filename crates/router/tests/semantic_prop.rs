//! Property tests for the semantic subject layer ([`SubjectMap`]).
//!
//! The properties that make the layer safe to put under every driver:
//!
//! * **order independence** — the canonical form and the expanded filter
//!   set depend only on the rule *set*, never on insertion order;
//! * **termination and idempotence** — canonicalization always returns,
//!   and a canonical subject is a fixpoint;
//! * **cycle and conflict rejection** — rule sets that could loop or
//!   make canonicalization ambiguous never get in;
//! * **expansion coherence** — every filter the map expands to
//!   canonicalizes back to the same canonical form;
//! * **link composition** — canonicalizing before a router link's
//!   [`RewriteRule`] crossing agrees with canonicalizing after it, when
//!   the destination map carries the translated rules (the federation
//!   deployment shape).

use infobus_router::{RewriteRule, SubjectMap, SubjectMapError};

/// A small deterministic generator (no external crates).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick<'a>(&mut self, items: &'a [&'a str]) -> &'a str {
        items[(self.next() as usize) % items.len()]
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = (self.next() as usize) % (i + 1);
            items.swap(i, j);
        }
    }

    /// A random dotted subject of 1..=depth elements.
    fn dotted(&mut self, depth: usize) -> String {
        const ELEMS: &[&str] = &[
            "n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7", "feed", "x", "deep", "q",
        ];
        let n = 1 + (self.next() as usize) % depth;
        (0..n)
            .map(|_| self.pick(ELEMS))
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// A conflict-free, acyclic alias set: each node aliases toward a
/// strictly lower-numbered node, so every insertion order accepts every
/// rule.
fn forest_rules(rng: &mut Lcg) -> Vec<(String, String)> {
    let mut rules = Vec::new();
    for i in 1..8u32 {
        if rng.next().is_multiple_of(3) {
            continue; // this node stays canonical
        }
        let parent = (rng.next() % u64::from(i)) as u32;
        rules.push((format!("n{i}"), format!("n{parent}")));
    }
    rules
}

#[test]
fn insertion_order_is_irrelevant() {
    for seed in 0..200u64 {
        let mut rng = Lcg(0x5EED_0000 + seed);
        let mut rules = forest_rules(&mut rng);
        let mut reference: Option<SubjectMap> = None;
        let probes: Vec<String> = (0..16).map(|_| rng.dotted(3)).collect();
        for _ in 0..4 {
            rng.shuffle(&mut rules);
            let mut map = SubjectMap::new();
            for (from, to) in &rules {
                map.add_alias(from, to).unwrap();
            }
            if let Some(r) = &reference {
                for p in &probes {
                    assert_eq!(
                        r.canonical(p),
                        map.canonical(p),
                        "seed {seed}: canonical form depends on insertion order"
                    );
                    assert_eq!(
                        r.expand_filter(p),
                        map.expand_filter(p),
                        "seed {seed}: expansion depends on insertion order"
                    );
                }
            } else {
                reference = Some(map);
            }
        }
    }
}

#[test]
fn canonicalization_terminates_and_is_idempotent() {
    for seed in 0..300u64 {
        let mut rng = Lcg(0x1D3A_0000 + seed);
        let mut map = SubjectMap::new();
        // Arbitrary insertion attempts; rejections (cycles, conflicts)
        // are part of the property — whatever gets in must behave.
        for _ in 0..10 {
            let from = rng.dotted(2);
            let to = rng.dotted(2);
            let _ = map.add_alias(&from, &to);
            if rng.next().is_multiple_of(4) {
                let _ = map.add_broadening(&rng.dotted(2), &rng.dotted(2));
            }
        }
        for _ in 0..24 {
            let s = rng.dotted(4);
            let c = map.canonical(&s);
            assert_eq!(
                map.canonical(&c),
                c,
                "seed {seed}: canonical({s:?}) = {c:?} is not a fixpoint"
            );
            // A canonical subject reports "already canonical".
            assert!(map.canonicalize(&c).is_none());
        }
    }
}

#[test]
fn cycles_and_conflicts_are_rejected() {
    let mut map = SubjectMap::new();
    map.add_alias("a", "b").unwrap();
    assert!(matches!(
        map.add_alias("b", "a"),
        Err(SubjectMapError::Cycle(_))
    ));
    // A rejected rule leaves the map working.
    assert_eq!(map.canonical("a.x"), "b.x");

    map.add_alias("b", "c").unwrap();
    assert!(matches!(
        map.add_alias("c", "a"),
        Err(SubjectMapError::Cycle(_))
    ));
    assert_eq!(map.canonical("a.x"), "c.x", "chain a→b→c resolves fully");

    assert!(matches!(
        map.add_alias("a", "elsewhere"),
        Err(SubjectMapError::Conflict(_))
    ));
    // Idempotent re-insert is not a conflict.
    map.add_alias("a", "b").unwrap();

    assert!(matches!(
        map.add_alias("", "x"),
        Err(SubjectMapError::BadRule(_))
    ));
    assert!(matches!(
        map.add_alias("w.*", "x"),
        Err(SubjectMapError::BadRule(_))
    ));
}

#[test]
fn expansions_canonicalize_back_to_the_same_form() {
    for seed in 0..200u64 {
        let mut rng = Lcg(0xE9A_0000 + seed);
        let rules = forest_rules(&mut rng);
        let mut map = SubjectMap::new();
        for (from, to) in &rules {
            map.add_alias(from, to).unwrap();
        }
        for _ in 0..16 {
            let s = rng.dotted(3);
            let canonical = map.canonical(&s);
            let expanded = map.expand_filter(&s);
            assert_eq!(
                expanded[0], canonical,
                "seed {seed}: first expansion must be the canonical filter"
            );
            for e in &expanded {
                assert_eq!(
                    map.canonical(e),
                    canonical,
                    "seed {seed}: expansion {e:?} of {s:?} canonicalizes elsewhere"
                );
            }
        }
    }
}

/// Two segments with a prefix-translating link between them, the
/// federation shape: segment WEST speaks `west.…`, segment EAST speaks
/// `east.…`, and the information-router link crossing applies
/// `west → east`. EAST's map carries the translated image of WEST's
/// alias rules, so canonicalizing before the crossing and after it
/// converge on the same subject.
#[test]
fn canonicalization_commutes_with_link_rewrites() {
    let crossing = RewriteRule {
        from_prefix: "west".into(),
        to_prefix: "east".into(),
    };
    for seed in 0..200u64 {
        let mut rng = Lcg(0xC0_0000 + seed);
        let mut west = SubjectMap::new();
        let mut east = SubjectMap::new();
        for (from, to) in forest_rules(&mut rng) {
            west.add_alias(&format!("west.{from}"), &format!("west.{to}"))
                .unwrap();
            east.add_alias(&format!("east.{from}"), &format!("east.{to}"))
                .unwrap();
        }
        for _ in 0..16 {
            let s = format!("west.{}", rng.dotted(3));
            let cross = |subj: &str| crossing.apply(subj).unwrap_or_else(|| subj.to_owned());
            // Canonicalize in WEST, cross, settle in EAST…
            let early = east.canonical(&cross(&west.canonical(&s)));
            // …versus crossing raw and canonicalizing only in EAST.
            let late = east.canonical(&cross(&s));
            assert_eq!(
                early, late,
                "seed {seed}: link crossing broke semantic confluence for {s:?}"
            );
            assert_eq!(east.canonical(&early), early, "destination fixpoint");
        }
    }
}
