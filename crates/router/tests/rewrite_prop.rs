//! Property tests for subject rewriting: the compiled element-wise form
//! must agree with the plain string rule on every input, and the miss
//! path must never allocate a rewritten subject.

use infobus_router::{CompiledRewrite, RewriteRule};

/// A small deterministic generator (no external crates).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick<'a>(&mut self, items: &'a [&'a str]) -> &'a str {
        items[(self.next() as usize) % items.len()]
    }

    /// A random dotted subject/prefix of 1..=depth elements.
    fn dotted(&mut self, depth: usize) -> String {
        const ELEMS: &[&str] = &[
            "a", "b", "fab5", "cc", "litho8", "news", "equity", "gmc", "hq", "ops", "x", "ab",
        ];
        let n = 1 + (self.next() as usize) % depth;
        (0..n)
            .map(|_| self.pick(ELEMS))
            .collect::<Vec<_>>()
            .join(".")
    }
}

#[test]
fn compiled_form_agrees_with_rule_on_random_inputs() {
    let mut rng = Lcg(0xfeed_beef);
    for _ in 0..20_000 {
        let rule = RewriteRule {
            from_prefix: rng.dotted(3),
            to_prefix: rng.dotted(3),
        };
        let compiled = CompiledRewrite::new(&rule);
        let subject = rng.dotted(5);
        assert_eq!(
            compiled.apply(&subject),
            rule.apply(&subject),
            "rule {rule:?} disagrees on {subject:?}"
        );
    }
}

#[test]
fn element_boundaries_never_match_partially() {
    let mut rng = Lcg(0x5eed);
    for _ in 0..5_000 {
        let base = rng.dotted(3);
        let rule = RewriteRule {
            from_prefix: base.clone(),
            to_prefix: rng.dotted(2),
        };
        // Extending the final element (no dot) must always miss: "fab5"
        // is not a prefix of "fab55.x" element-wise.
        let partial = format!("{base}5.tail");
        assert_eq!(
            rule.apply(&partial),
            None,
            "partial-element match: {rule:?}"
        );
        assert_eq!(CompiledRewrite::new(&rule).apply(&partial), None);
    }
}

#[test]
fn hits_rewrite_and_misses_pass_through() {
    let mut rng = Lcg(7);
    for _ in 0..5_000 {
        let rule = RewriteRule {
            from_prefix: rng.dotted(2),
            to_prefix: rng.dotted(2),
        };
        let tail = rng.dotted(2);
        let hit = format!("{}.{}", rule.from_prefix, tail);
        assert_eq!(
            rule.apply(&hit).as_deref(),
            Some(format!("{}.{}", rule.to_prefix, tail).as_str())
        );
        // `matches` must agree with `apply(..).is_some()` everywhere.
        let probe = rng.dotted(4);
        assert_eq!(rule.matches(&probe), rule.apply(&probe).is_some());
    }
}

#[test]
fn recompilation_restores_a_corrupted_compiled_form() {
    let rule = RewriteRule {
        from_prefix: "news.equity".into(),
        to_prefix: "ny.equity".into(),
    };
    let mut compiled = CompiledRewrite::new(&rule);
    assert!(compiled.is_consistent());
    compiled.corrupt();
    assert!(!compiled.is_consistent());
    let repaired = CompiledRewrite::new(compiled.rule());
    assert!(repaired.is_consistent());
    assert_eq!(
        repaired.apply("news.equity.gmc").as_deref(),
        Some("ny.equity.gmc")
    );
}
