//! The discrete-event kernel: time, the wire, hosts, connections, storage.

use std::any::Any;
use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::rng::SimRng;

use crate::config::{EtherConfig, HostConfig};
use crate::event::{Event, EventKind, Fragment};
use crate::proc::{ConnEvent, Datagram};
use crate::stats::{SegmentStats, Stats};
use crate::{ConnId, HostId, Micros, NetError, ProcId, SegmentId, SockAddr, MAX_DATAGRAM};

/// How long a partial datagram waits for missing fragments.
const REASSEMBLY_TIMEOUT: Micros = 3_000_000;
/// Fixed part of connection setup latency.
const CONN_SETUP_US: Micros = 600;
/// How long a failed `connect` waits before reporting closure.
const CONN_CONNECT_TIMEOUT: Micros = 1_500_000;
/// How long a send on a partitioned connection waits before it breaks.
const CONN_BREAK_DELAY: Micros = 800_000;
/// Fixed per-message connection latency beyond serialization.
const CONN_FIXED_US: Micros = 400;

pub(crate) struct HostState {
    pub name: String,
    pub config: HostConfig,
    pub segments: Vec<SegmentId>,
    pub cpu_free: Micros,
}

pub(crate) struct SegmentState {
    pub config: EtherConfig,
    pub hosts: Vec<HostId>,
    pub medium_free: Micros,
    pub stats: SegmentStats,
}

pub(crate) struct ProcMeta {
    pub host: HostId,
    pub alive: bool,
    pub bound_ports: Vec<u16>,
}

struct ConnState {
    /// Endpoint 0 is the initiator, endpoint 1 the acceptor.
    procs: [ProcId; 2],
    addrs: [SockAddr; 2],
    closed: bool,
    /// Next permitted delivery time per direction (0 = from initiator).
    next_deliver: [Micros; 2],
}

struct Reassembly {
    total: u16,
    have: Vec<bool>,
    parts: Vec<Vec<u8>>,
    received: u16,
    dst_port: u16,
    broadcast: bool,
    src: SockAddr,
}

/// What the kernel asks the dispatcher (in [`crate::Sim`]) to run.
pub(crate) enum Dispatch {
    Start(ProcId),
    Timer(ProcId, u64),
    Datagram(ProcId, Datagram),
    Conn(ProcId, ConnEvent),
    Command(ProcId, Box<dyn Any>),
}

pub(crate) struct Kernel {
    pub now: Micros,
    queue: BinaryHeap<Event>,
    next_seq: u64,
    pub rng: SimRng,
    pub hosts: Vec<HostState>,
    pub host_names: HashMap<String, HostId>,
    pub segments: Vec<SegmentState>,
    pub meta: Vec<ProcMeta>,
    pub dgram_bindings: HashMap<(HostId, u16), ProcId>,
    pub conn_listeners: HashMap<(HostId, u16), ProcId>,
    conns: HashMap<ConnId, ConnState>,
    next_conn: u64,
    next_timer: u64,
    cancelled_timers: HashSet<u64>,
    next_dgram: u64,
    reassembly: HashMap<(HostId, SockAddr, u64), Reassembly>,
    nv: HashMap<(HostId, String), Vec<u8>>,
    /// Unordered host pairs that cannot currently communicate.
    blocked_pairs: HashSet<(u32, u32)>,
    detached_hosts: HashSet<HostId>,
    pub stats: Stats,
    pub trace_enabled: bool,
    pub trace: Vec<String>,
    /// Processes spawned from inside a handler, installed by `Sim` after
    /// the handler returns.
    pub pending_spawns: Vec<(ProcId, Box<dyn crate::Process>)>,
    /// Processes that asked to exit from inside a handler.
    pub pending_exits: Vec<ProcId>,
}

impl Kernel {
    pub fn new(seed: u64) -> Self {
        Kernel {
            now: 0,
            queue: BinaryHeap::new(),
            next_seq: 0,
            rng: SimRng::seed_from_u64(seed),
            hosts: Vec::new(),
            host_names: HashMap::new(),
            segments: Vec::new(),
            meta: Vec::new(),
            dgram_bindings: HashMap::new(),
            conn_listeners: HashMap::new(),
            conns: HashMap::new(),
            next_conn: 0,
            next_timer: 0,
            cancelled_timers: HashSet::new(),
            next_dgram: 0,
            reassembly: HashMap::new(),
            nv: HashMap::new(),
            blocked_pairs: HashSet::new(),
            detached_hosts: HashSet::new(),
            stats: Stats::default(),
            trace_enabled: false,
            trace: Vec::new(),
            pending_spawns: Vec::new(),
            pending_exits: Vec::new(),
        }
    }

    pub fn schedule(&mut self, at: Micros, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Event {
            at: at.max(self.now),
            seq,
            kind,
        });
    }

    pub fn next_event_at(&self) -> Option<Micros> {
        self.queue.peek().map(|e| e.at)
    }

    pub fn pop_event(&mut self) -> Option<Event> {
        let ev = self.queue.pop()?;
        debug_assert!(ev.at >= self.now, "time must not run backwards");
        self.now = ev.at;
        self.stats.events_processed += 1;
        Some(ev)
    }

    pub fn trace(&mut self, f: impl FnOnce() -> String) {
        if self.trace_enabled {
            let line = format!("[{}] {}", crate::time::fmt_time(self.now), f());
            self.trace.push(line);
        }
    }

    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_f64() < p
    }

    // ----- topology ------------------------------------------------------

    /// Allocates a process slot on `host`; the process box is installed by
    /// `Sim` (immediately, or after the current handler for in-handler
    /// spawns).
    pub fn alloc_proc(&mut self, host: HostId) -> ProcId {
        let id = ProcId(self.meta.len() as u32);
        self.meta.push(ProcMeta {
            host,
            alive: true,
            bound_ports: Vec::new(),
        });
        id
    }

    pub fn alive(&self, proc: ProcId) -> bool {
        self.meta
            .get(proc.0 as usize)
            .map(|m| m.alive)
            .unwrap_or(false)
    }

    pub fn host_of(&self, proc: ProcId) -> HostId {
        self.meta[proc.0 as usize].host
    }

    pub fn reachable(&self, a: HostId, b: HostId) -> bool {
        if a == b {
            return true;
        }
        if self.detached_hosts.contains(&a) || self.detached_hosts.contains(&b) {
            return false;
        }
        let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        !self.blocked_pairs.contains(&key)
    }

    pub fn block_pair(&mut self, a: HostId, b: HostId) {
        if a != b {
            let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
            self.blocked_pairs.insert(key);
        }
    }

    pub fn heal_all(&mut self) {
        self.blocked_pairs.clear();
        self.detached_hosts.clear();
    }

    pub fn detach_host(&mut self, h: HostId) {
        self.detached_hosts.insert(h);
    }

    pub fn reattach_host(&mut self, h: HostId) {
        self.detached_hosts.remove(&h);
    }

    /// Finds a segment shared by both hosts, preferring `from`'s order.
    fn shared_segment(&self, from: HostId, to: HostId) -> Option<SegmentId> {
        self.hosts[from.0 as usize]
            .segments
            .iter()
            .copied()
            .find(|seg| self.segments[seg.0 as usize].hosts.contains(&to))
    }

    // ----- timers ---------------------------------------------------------

    pub fn set_timer(&mut self, proc: ProcId, delay: Micros, token: u64) -> u64 {
        let timer_id = self.next_timer;
        self.next_timer += 1;
        self.schedule(
            self.now + delay,
            EventKind::Timer {
                proc,
                timer_id,
                token,
            },
        );
        timer_id
    }

    pub fn cancel_timer(&mut self, timer_id: u64) {
        self.cancelled_timers.insert(timer_id);
    }

    // ----- datagram layer -------------------------------------------------

    /// Source address a process's datagrams carry.
    pub fn src_addr(&self, proc: ProcId) -> SockAddr {
        let meta = &self.meta[proc.0 as usize];
        let port = meta
            .bound_ports
            .first()
            .copied()
            .unwrap_or(40_000 + proc.0 as u16 % 20_000);
        SockAddr::new(meta.host, port)
    }

    pub fn bind(&mut self, proc: ProcId, port: u16) -> Result<(), NetError> {
        let host = self.host_of(proc);
        if self.dgram_bindings.contains_key(&(host, port)) {
            return Err(NetError::PortInUse(port));
        }
        self.dgram_bindings.insert((host, port), proc);
        self.meta[proc.0 as usize].bound_ports.push(port);
        Ok(())
    }

    /// Sends a datagram, fragmenting as needed. `segment` limits a
    /// broadcast to one segment; unicast picks a shared segment.
    pub fn send_datagram(
        &mut self,
        from: ProcId,
        dst: Option<SockAddr>,
        broadcast_port: Option<(Option<SegmentId>, u16)>,
        payload: Vec<u8>,
    ) -> Result<(), NetError> {
        if payload.len() > MAX_DATAGRAM {
            return Err(NetError::DatagramTooLarge(payload.len()));
        }
        let src_host = self.host_of(from);
        let src = self.src_addr(from);
        self.stats.datagrams_sent += 1;
        let dgram_id = self.next_dgram;
        self.next_dgram += 1;

        match (dst, broadcast_port) {
            (Some(dst), None) => {
                if dst.host == src_host {
                    self.send_loopback(src_host, src, dst, dgram_id, payload);
                    return Ok(());
                }
                let seg = self
                    .shared_segment(src_host, dst.host)
                    .ok_or(NetError::NoRoute(dst.host))?;
                self.send_on_segment(
                    src_host,
                    seg,
                    src,
                    dst.port,
                    Some(dst.host),
                    dgram_id,
                    payload,
                );
                Ok(())
            }
            (None, Some((seg, port))) => {
                let segs: Vec<SegmentId> = match seg {
                    Some(s) => vec![s],
                    None => self.hosts[src_host.0 as usize].segments.clone(),
                };
                for (i, seg) in segs.iter().enumerate() {
                    // A broadcast on several segments re-sends the payload
                    // on each; keep distinct datagram ids per segment.
                    let id = if i == 0 {
                        dgram_id
                    } else {
                        let id = self.next_dgram;
                        self.next_dgram += 1;
                        id
                    };
                    self.send_on_segment(src_host, *seg, src, port, None, id, payload.clone());
                }
                Ok(())
            }
            _ => unreachable!("exactly one of dst/broadcast is provided by Ctx"),
        }
    }

    /// Local (same-host) delivery: no medium, no faults, CPU cost only.
    fn send_loopback(
        &mut self,
        host: HostId,
        src: SockAddr,
        dst: SockAddr,
        dgram_id: u64,
        payload: Vec<u8>,
    ) {
        let cost = self.hosts[host.0 as usize].config.ipc_cost(payload.len());
        let at = {
            let h = &mut self.hosts[host.0 as usize];
            let start = h.cpu_free.max(self.now);
            h.cpu_free = start + cost;
            h.cpu_free
        };
        let frag = Fragment {
            src,
            dst_port: dst.port,
            broadcast: false,
            dgram_id,
            index: 0,
            total: 1,
            bytes: payload,
        };
        self.schedule(
            at,
            EventKind::FragDeliver {
                dst_host: host,
                frag,
            },
        );
    }

    /// Fragments `payload` and transmits each fragment over `seg`.
    #[allow(clippy::too_many_arguments)]
    fn send_on_segment(
        &mut self,
        src_host: HostId,
        seg: SegmentId,
        src: SockAddr,
        dst_port: u16,
        unicast_to: Option<HostId>,
        dgram_id: u64,
        payload: Vec<u8>,
    ) {
        let mtu = self.segments[seg.0 as usize].config.mtu_payload;
        let total = payload.len().div_ceil(mtu).max(1) as u16;
        let mut offset = 0usize;
        for index in 0..total {
            let end = (offset + mtu).min(payload.len());
            let bytes = payload[offset..end].to_vec();
            offset = end;
            let frag = Fragment {
                src,
                dst_port,
                broadcast: unicast_to.is_none(),
                dgram_id,
                index,
                total,
                bytes,
            };
            self.transmit_frame(src_host, seg, unicast_to, frag);
        }
    }

    /// Charges sender CPU, then schedules the frame to contend for the
    /// medium once the CPU has finished serializing it (contention must
    /// be evaluated *at transmit time*, against whatever else — data or
    /// background traffic — occupies the medium then).
    fn transmit_frame(
        &mut self,
        src_host: HostId,
        seg: SegmentId,
        unicast_to: Option<HostId>,
        frag: Fragment,
    ) {
        let len = frag.bytes.len();
        // Sender CPU.
        let tx_ready = {
            let h = &mut self.hosts[src_host.0 as usize];
            let cost = h.config.send_cost(len);
            let start = h.cpu_free.max(self.now);
            h.cpu_free = start + cost;
            h.cpu_free
        };
        self.schedule(
            tx_ready,
            EventKind::FrameTx {
                src_host,
                segment: seg,
                unicast_to,
                frag,
            },
        );
    }

    /// The frame is ready at the NIC: contend for the medium, apply
    /// wire-level faults, and schedule per-receiver arrivals.
    fn frame_tx(
        &mut self,
        src_host: HostId,
        seg: SegmentId,
        unicast_to: Option<HostId>,
        frag: Fragment,
    ) {
        let len = frag.bytes.len();
        let tx_ready = self.now;
        // Medium contention.
        let (arrive_base, waited) = {
            let s = &mut self.segments[seg.0 as usize];
            let wire_len = (len.max(s.config.min_frame) + s.config.frame_overhead) as u64;
            let wire_time = wire_len * 8 * 1_000_000 / s.config.bandwidth_bps;
            let start = s.medium_free.max(tx_ready);
            let waited = start > tx_ready;
            s.medium_free = start + wire_time;
            s.stats.frames_sent += 1;
            s.stats.wire_bytes += wire_len;
            s.stats.busy_us += wire_time;
            (start + wire_time + s.config.prop_us, waited)
        };
        // Wire-level corruption: the frame is lost for every receiver.
        let faults = self.segments[seg.0 as usize].config.faults.clone();
        if self.chance(faults.wire_loss) {
            self.segments[seg.0 as usize].stats.wire_losses += 1;
            return;
        }
        // Collision after waiting for a busy medium.
        if waited && self.chance(faults.collision_loss) {
            self.segments[seg.0 as usize].stats.collision_losses += 1;
            return;
        }
        let receivers: Vec<HostId> = match unicast_to {
            Some(h) => vec![h],
            None => self.segments[seg.0 as usize]
                .hosts
                .iter()
                .copied()
                .filter(|h| *h != src_host)
                .collect(),
        };
        for dst_host in receivers {
            if !self.reachable(src_host, dst_host) {
                self.stats.partition_drops += 1;
                continue;
            }
            if self.chance(faults.recv_loss) {
                self.stats.recv_losses += 1;
                continue;
            }
            let jitter = if faults.reorder_jitter_us > 0 {
                self.rng.gen_range_inclusive(0, faults.reorder_jitter_us)
            } else {
                0
            };
            self.schedule(
                arrive_base + jitter,
                EventKind::FragArrive {
                    dst_host,
                    frag: frag.clone(),
                },
            );
            if self.chance(faults.dup) {
                self.stats.dups += 1;
                let extra = self
                    .rng
                    .gen_range_inclusive(0, faults.reorder_jitter_us.max(200));
                self.schedule(
                    arrive_base + jitter + extra,
                    EventKind::FragArrive {
                        dst_host,
                        frag: frag.clone(),
                    },
                );
            }
        }
    }

    /// Receive-side CPU charge for an arrived frame.
    fn frag_arrive(&mut self, dst_host: HostId, frag: Fragment) {
        let deliver_at = {
            let h = &mut self.hosts[dst_host.0 as usize];
            let cost = h.config.recv_cost(frag.bytes.len());
            let start = h.cpu_free.max(self.now);
            h.cpu_free = start + cost;
            h.cpu_free
        };
        self.schedule(deliver_at, EventKind::FragDeliver { dst_host, frag });
    }

    /// Reassembles a processed frame; returns a completed datagram.
    fn frag_deliver(&mut self, dst_host: HostId, frag: Fragment) -> Option<Dispatch> {
        let key = (dst_host, frag.src, frag.dgram_id);
        if frag.total == 1 {
            return self.deliver_datagram(
                dst_host,
                frag.src,
                frag.dst_port,
                frag.broadcast,
                frag.bytes,
            );
        }
        let entry = self.reassembly.entry(key).or_insert_with(|| Reassembly {
            total: frag.total,
            have: vec![false; frag.total as usize],
            parts: vec![Vec::new(); frag.total as usize],
            received: 0,
            dst_port: frag.dst_port,
            broadcast: frag.broadcast,
            src: frag.src,
        });
        let idx = frag.index as usize;
        if entry.have[idx] {
            return None;
        }
        entry.have[idx] = true;
        entry.parts[idx] = frag.bytes;
        entry.received += 1;
        let first = entry.received == 1;
        let complete = entry.received == entry.total;
        if first {
            self.schedule(
                self.now + REASSEMBLY_TIMEOUT,
                EventKind::ReasmTimeout {
                    dst_host,
                    key: (frag.src, frag.dgram_id),
                },
            );
        }
        if complete {
            let entry = self.reassembly.remove(&key).expect("entry just inserted");
            let mut payload = Vec::new();
            for part in entry.parts {
                payload.extend_from_slice(&part);
            }
            return self.deliver_datagram(
                dst_host,
                entry.src,
                entry.dst_port,
                entry.broadcast,
                payload,
            );
        }
        None
    }

    fn deliver_datagram(
        &mut self,
        dst_host: HostId,
        src: SockAddr,
        dst_port: u16,
        broadcast: bool,
        payload: Vec<u8>,
    ) -> Option<Dispatch> {
        let Some(&proc) = self.dgram_bindings.get(&(dst_host, dst_port)) else {
            self.stats.unbound_drops += 1;
            return None;
        };
        if !self.alive(proc) {
            self.stats.unbound_drops += 1;
            return None;
        }
        self.stats.datagrams_delivered += 1;
        self.stats.payload_bytes_delivered += payload.len() as u64;
        let dgram = Datagram {
            src,
            dst: SockAddr::new(dst_host, dst_port),
            broadcast,
            payload,
        };
        Some(Dispatch::Datagram(proc, dgram))
    }

    // ----- connections ----------------------------------------------------

    pub fn listen_conn(&mut self, proc: ProcId, port: u16) -> Result<(), NetError> {
        let host = self.host_of(proc);
        if self.conn_listeners.contains_key(&(host, port)) {
            return Err(NetError::PortInUse(port));
        }
        self.conn_listeners.insert((host, port), proc);
        Ok(())
    }

    pub fn connect(&mut self, proc: ProcId, dst: SockAddr) -> ConnId {
        let conn = ConnId(self.next_conn);
        self.next_conn += 1;
        let src = self.src_addr(proc);
        let listener = self.conn_listeners.get(&(dst.host, dst.port)).copied();
        let src_host = self.host_of(proc);
        match listener {
            Some(server) if self.reachable(src_host, dst.host) && self.alive(server) => {
                let setup = CONN_SETUP_US + 2 * self.prop_between(src_host, dst.host);
                self.conns.insert(
                    conn,
                    ConnState {
                        procs: [proc, server],
                        addrs: [src, dst],
                        closed: false,
                        next_deliver: [self.now + setup; 2],
                    },
                );
                self.schedule(
                    self.now + setup,
                    EventKind::ConnUp {
                        proc: server,
                        conn,
                        accepted: Some(src),
                    },
                );
                self.schedule(
                    self.now + setup,
                    EventKind::ConnUp {
                        proc,
                        conn,
                        accepted: None,
                    },
                );
            }
            _ => {
                self.conns.insert(
                    conn,
                    ConnState {
                        procs: [proc, proc],
                        addrs: [src, dst],
                        closed: true,
                        next_deliver: [0; 2],
                    },
                );
                self.stats.conn_failures += 1;
                self.schedule(
                    self.now + CONN_CONNECT_TIMEOUT,
                    EventKind::ConnClosed { proc, conn },
                );
            }
        }
        conn
    }

    fn prop_between(&self, a: HostId, b: HostId) -> Micros {
        self.shared_segment(a, b)
            .map(|s| self.segments[s.0 as usize].config.prop_us)
            .unwrap_or(50)
    }

    pub fn conn_send(&mut self, proc: ProcId, conn: ConnId, msg: Vec<u8>) -> Result<(), NetError> {
        let (peer_proc, dir, peer_host, src_host) = {
            let state = self.conns.get(&conn).ok_or(NetError::ConnClosed(conn))?;
            if state.closed {
                return Err(NetError::ConnClosed(conn));
            }
            let dir = if state.procs[0] == proc && state.addrs[0].host == self.host_of(proc) {
                0
            } else if state.procs[1] == proc {
                1
            } else {
                return Err(NetError::ConnClosed(conn));
            };
            let peer = state.procs[1 - dir];
            (
                peer,
                dir,
                self.host_of(state.procs[1 - dir]),
                self.host_of(proc),
            )
        };
        if !self.reachable(src_host, peer_host) || !self.alive(peer_proc) {
            // The stream breaks: both ends learn after a timeout.
            self.conns.get_mut(&conn).expect("checked above").closed = true;
            self.stats.conn_failures += 1;
            self.schedule(
                self.now + CONN_BREAK_DELAY,
                EventKind::ConnClosed { proc, conn },
            );
            if self.alive(peer_proc) {
                self.schedule(
                    self.now + CONN_BREAK_DELAY,
                    EventKind::ConnClosed {
                        proc: peer_proc,
                        conn,
                    },
                );
            }
            return Ok(());
        }
        let send_cost = self.hosts[src_host.0 as usize].config.send_cost(msg.len());
        let recv_cost = self.hosts[peer_host.0 as usize].config.recv_cost(msg.len());
        let wire = if src_host == peer_host {
            0
        } else {
            // Connections are point-to-point; we model serialization time
            // but do not contend for the broadcast medium.
            let bw = self
                .shared_segment(src_host, peer_host)
                .map(|s| self.segments[s.0 as usize].config.bandwidth_bps)
                .unwrap_or(10_000_000);
            (msg.len() as u64 + 64) * 8 * 1_000_000 / bw
        };
        let delay = CONN_FIXED_US + send_cost + recv_cost + wire;
        let state = self.conns.get_mut(&conn).expect("checked above");
        let at = (self.now + delay).max(state.next_deliver[dir]);
        state.next_deliver[dir] = at + 1;
        self.stats.conn_msgs_delivered += 1;
        self.stats.conn_bytes_delivered += msg.len() as u64;
        self.schedule(
            at,
            EventKind::ConnData {
                proc: peer_proc,
                conn,
                msg,
            },
        );
        Ok(())
    }

    pub fn conn_close(&mut self, proc: ProcId, conn: ConnId) {
        if let Some(state) = self.conns.get_mut(&conn) {
            if !state.closed {
                state.closed = true;
                let peer = if state.procs[0] == proc {
                    state.procs[1]
                } else {
                    state.procs[0]
                };
                if self.alive(peer) {
                    self.schedule(self.now + 500, EventKind::ConnClosed { proc: peer, conn });
                }
            }
        }
    }

    pub fn conn_peer_addr(&self, conn: ConnId, proc: ProcId) -> Option<SockAddr> {
        let state = self.conns.get(&conn)?;
        if state.procs[0] == proc {
            Some(state.addrs[1])
        } else {
            Some(state.addrs[0])
        }
    }

    // ----- crash ----------------------------------------------------------

    /// Fail-stop termination: no handler runs; bindings and connections
    /// are torn down; non-volatile storage survives.
    pub fn kill(&mut self, proc: ProcId) {
        if !self.alive(proc) {
            return;
        }
        self.meta[proc.0 as usize].alive = false;
        let host = self.host_of(proc);
        self.dgram_bindings.retain(|_, p| *p != proc);
        self.conn_listeners.retain(|_, p| *p != proc);
        self.meta[proc.0 as usize].bound_ports.clear();
        let mut to_notify = Vec::new();
        for (id, state) in self.conns.iter_mut() {
            if state.closed {
                continue;
            }
            if state.procs[0] == proc || state.procs[1] == proc {
                state.closed = true;
                let peer = if state.procs[0] == proc {
                    state.procs[1]
                } else {
                    state.procs[0]
                };
                to_notify.push((peer, *id));
            }
        }
        for (peer, id) in to_notify {
            if self.alive(peer) {
                self.schedule(
                    self.now + 1_000,
                    EventKind::ConnClosed {
                        proc: peer,
                        conn: id,
                    },
                );
            }
        }
        self.stats.crashes += 1;
        self.trace(|| format!("crash p{} on {}", proc.0, host.0));
    }

    // ----- non-volatile storage --------------------------------------------

    pub fn nv_put(&mut self, host: HostId, key: &str, value: Vec<u8>) {
        let cost = self.hosts[host.0 as usize].config.nv_write_us;
        let h = &mut self.hosts[host.0 as usize];
        let start = h.cpu_free.max(self.now);
        h.cpu_free = start + cost;
        self.stats.nv_writes += 1;
        self.nv.insert((host, key.to_owned()), value);
    }

    pub fn nv_get(&self, host: HostId, key: &str) -> Option<&Vec<u8>> {
        self.nv.get(&(host, key.to_owned()))
    }

    pub fn nv_delete(&mut self, host: HostId, key: &str) -> bool {
        self.nv.remove(&(host, key.to_owned())).is_some()
    }

    pub fn nv_keys(&self, host: HostId, prefix: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .nv
            .keys()
            .filter(|(h, k)| *h == host && k.starts_with(prefix))
            .map(|(_, k)| k.clone())
            .collect();
        keys.sort();
        keys
    }

    // ----- background traffic ----------------------------------------------

    pub fn start_background(&mut self) {
        let with_background: Vec<SegmentId> = self
            .segments
            .iter()
            .enumerate()
            .filter(|(_, seg)| seg.config.background_bps > 0)
            .map(|(i, _)| SegmentId(i as u32))
            .collect();
        for segment in with_background {
            self.schedule(0, EventKind::Background { segment });
        }
    }

    fn background_tick(&mut self, seg_id: SegmentId) {
        let (frame_bits, bps) = {
            let s = &self.segments[seg_id.0 as usize];
            (
                ((s.config.background_frame + s.config.frame_overhead) * 8) as f64,
                s.config.background_bps as f64,
            )
        };
        // Occupy the medium for one background frame.
        {
            let s = &mut self.segments[seg_id.0 as usize];
            let wire_time = (frame_bits / s.config.bandwidth_bps as f64 * 1e6) as Micros;
            let start = s.medium_free.max(self.now);
            s.medium_free = start + wire_time;
            s.stats.background_frames += 1;
            s.stats.busy_us += wire_time;
            s.stats.wire_bytes += (frame_bits / 8.0) as u64;
        }
        // Exponential inter-arrival with mean matching the offered load.
        let mean_us = frame_bits / bps * 1e6;
        let u: f64 = self.rng.gen_f64().max(1e-12);
        let gap = (-mean_us * u.ln()).max(1.0) as Micros;
        self.schedule(self.now + gap, EventKind::Background { segment: seg_id });
    }

    // ----- event processing -------------------------------------------------

    /// Processes one event; returns a handler invocation for the dispatcher.
    pub fn process(&mut self, kind: EventKind) -> Option<Dispatch> {
        match kind {
            EventKind::Start(proc) => self.alive(proc).then_some(Dispatch::Start(proc)),
            EventKind::FrameTx {
                src_host,
                segment,
                unicast_to,
                frag,
            } => {
                self.frame_tx(src_host, segment, unicast_to, frag);
                None
            }
            EventKind::Timer {
                proc,
                timer_id,
                token,
            } => {
                if self.cancelled_timers.remove(&timer_id) {
                    return None;
                }
                self.alive(proc).then_some(Dispatch::Timer(proc, token))
            }
            EventKind::FragArrive { dst_host, frag } => {
                self.frag_arrive(dst_host, frag);
                None
            }
            EventKind::FragDeliver { dst_host, frag } => self.frag_deliver(dst_host, frag),
            EventKind::ReasmTimeout { dst_host, key } => {
                let full_key = (dst_host, key.0, key.1);
                if self.reassembly.remove(&full_key).is_some() {
                    self.stats.reassembly_failures += 1;
                }
                None
            }
            EventKind::Command { proc, cmd } => {
                self.alive(proc).then_some(Dispatch::Command(proc, cmd))
            }
            EventKind::ConnUp {
                proc,
                conn,
                accepted,
            } => {
                if !self.alive(proc) {
                    return None;
                }
                let event = match accepted {
                    Some(peer) => ConnEvent::Accepted { conn, peer },
                    None => ConnEvent::Connected { conn },
                };
                Some(Dispatch::Conn(proc, event))
            }
            EventKind::ConnData { proc, conn, msg } => self
                .alive(proc)
                .then_some(Dispatch::Conn(proc, ConnEvent::Data { conn, msg })),
            EventKind::ConnClosed { proc, conn } => self
                .alive(proc)
                .then_some(Dispatch::Conn(proc, ConnEvent::Closed { conn })),
            EventKind::Background { segment } => {
                self.background_tick(segment);
                None
            }
        }
    }
}
