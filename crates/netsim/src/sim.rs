//! The driver-facing simulation handle and topology builder.

use std::any::Any;

use crate::config::{EtherConfig, HostConfig};
use crate::ctx::Ctx;
use crate::event::EventKind;
use crate::kernel::{Dispatch, HostState, Kernel, SegmentState};
use crate::proc::Process;
use crate::stats::{SegmentStats, Stats};
use crate::{HostId, Micros, ProcId, SegmentId};

/// Builds a network topology: segments, hosts, and their configurations.
///
/// # Examples
///
/// ```
/// use infobus_netsim::{EtherConfig, HostConfig, NetBuilder};
///
/// let mut b = NetBuilder::new(7);
/// let lan = b.segment(EtherConfig::lan_10mbps());
/// let h1 = b.host("alpha", &[lan]);
/// let h2 = b.host_with("beta", &[lan], HostConfig::instant());
/// let sim = b.build();
/// assert_eq!(sim.host_by_name("alpha"), Some(h1));
/// assert_ne!(h1, h2);
/// ```
pub struct NetBuilder {
    kernel: Kernel,
}

impl NetBuilder {
    /// Creates a builder; `seed` determines every random decision of the
    /// run (fault injection, background traffic, jitter).
    pub fn new(seed: u64) -> Self {
        NetBuilder {
            kernel: Kernel::new(seed),
        }
    }

    /// Adds a shared Ethernet segment.
    pub fn segment(&mut self, config: EtherConfig) -> SegmentId {
        let id = SegmentId(self.kernel.segments.len() as u32);
        self.kernel.segments.push(SegmentState {
            config,
            hosts: Vec::new(),
            medium_free: 0,
            stats: SegmentStats::default(),
        });
        id
    }

    /// Adds a host with the default (SPARCstation-2-class) cost model,
    /// attached to the given segments.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken or a segment id is invalid.
    pub fn host(&mut self, name: &str, segments: &[SegmentId]) -> HostId {
        self.host_with(name, segments, HostConfig::default())
    }

    /// Adds a host with an explicit cost model.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken or a segment id is invalid.
    pub fn host_with(&mut self, name: &str, segments: &[SegmentId], config: HostConfig) -> HostId {
        assert!(
            !self.kernel.host_names.contains_key(name),
            "duplicate host name {name:?}"
        );
        let id = HostId(self.kernel.hosts.len() as u32);
        self.kernel.hosts.push(HostState {
            name: name.to_owned(),
            config,
            segments: segments.to_vec(),
            cpu_free: 0,
        });
        self.kernel.host_names.insert(name.to_owned(), id);
        for seg in segments {
            self.kernel.segments[seg.0 as usize].hosts.push(id);
        }
        id
    }

    /// Finishes the topology and returns a runnable simulation.
    pub fn build(mut self) -> Sim {
        self.kernel.start_background();
        Sim {
            kernel: self.kernel,
            slots: Vec::new(),
        }
    }
}

/// A runnable simulation: owns the kernel and every process.
///
/// The driver (a test, example, or benchmark) spawns processes, runs
/// virtual time forward, injects faults, and inspects state.
pub struct Sim {
    kernel: Kernel,
    slots: Vec<Option<Box<dyn Process>>>,
}

impl Sim {
    /// Current virtual time, in microseconds.
    pub fn now(&self) -> Micros {
        self.kernel.now
    }

    /// Spawns a process on a host; its `on_start` runs at the current
    /// virtual time (when the simulation is next stepped).
    pub fn spawn(&mut self, host: HostId, process: Box<dyn Process>) -> ProcId {
        let id = self.kernel.alloc_proc(host);
        self.install(id, process);
        self.kernel.schedule(self.kernel.now, EventKind::Start(id));
        id
    }

    fn install(&mut self, id: ProcId, process: Box<dyn Process>) {
        let idx = id.0 as usize;
        while self.slots.len() <= idx {
            self.slots.push(None);
        }
        self.slots[idx] = Some(process);
    }

    /// Crashes a process fail-stop: no handler runs, volatile state is
    /// lost, non-volatile storage survives.
    pub fn crash(&mut self, proc: ProcId) {
        self.kernel.kill(proc);
        if let Some(slot) = self.slots.get_mut(proc.0 as usize) {
            *slot = None;
        }
    }

    /// Crashes every process on a host (a node failure).
    pub fn crash_host(&mut self, host: HostId) {
        let victims: Vec<ProcId> = (0..self.kernel.meta.len() as u32)
            .map(ProcId)
            .filter(|p| self.kernel.alive(*p) && self.kernel.host_of(*p) == host)
            .collect();
        for p in victims {
            self.crash(p);
        }
    }

    /// Returns `true` if the process is still running.
    pub fn is_alive(&self, proc: ProcId) -> bool {
        self.kernel.alive(proc)
    }

    /// Delivers a driver command to a process (handled by
    /// [`Process::on_command`]) at the current virtual time.
    pub fn send_command(&mut self, proc: ProcId, cmd: Box<dyn Any>) {
        self.kernel
            .schedule(self.kernel.now, EventKind::Command { proc, cmd });
    }

    /// Runs `f` against the concrete process state, if the process is
    /// alive and of type `P`. Used by tests and examples to inspect or
    /// script processes between steps.
    pub fn with_proc<P: Process, R>(
        &mut self,
        proc: ProcId,
        f: impl FnOnce(&mut P) -> R,
    ) -> Option<R> {
        let slot = self.slots.get_mut(proc.0 as usize)?.as_deref_mut()?;
        let any: &mut dyn Any = slot;
        any.downcast_mut::<P>().map(f)
    }

    // ----- fault injection -------------------------------------------------

    /// Partitions the network into the given groups: hosts in different
    /// groups cannot communicate (hosts absent from every group keep full
    /// connectivity with everyone).
    pub fn partition(&mut self, groups: &[&[HostId]]) {
        for (i, ga) in groups.iter().enumerate() {
            for gb in groups.iter().skip(i + 1) {
                for &a in ga.iter() {
                    for &b in gb.iter() {
                        self.kernel.block_pair(a, b);
                    }
                }
            }
        }
    }

    /// Removes every partition and reattaches every detached host.
    pub fn heal(&mut self) {
        self.kernel.heal_all();
    }

    /// Detaches a host from the network entirely (its link fails).
    pub fn detach_host(&mut self, host: HostId) {
        self.kernel.detach_host(host);
    }

    /// Reattaches a previously detached host.
    pub fn reattach_host(&mut self, host: HostId) {
        self.kernel.reattach_host(host);
    }

    /// Replaces the fault plan of a segment (takes effect immediately).
    pub fn set_faults(&mut self, segment: SegmentId, faults: crate::FaultPlan) {
        self.kernel.segments[segment.0 as usize].config.faults = faults;
    }

    // ----- running ----------------------------------------------------------

    /// Processes a single event. Returns `false` when no events remain.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.kernel.pop_event() else {
            return false;
        };
        if let Some(dispatch) = self.kernel.process(event.kind) {
            self.dispatch(dispatch);
        }
        true
    }

    fn dispatch(&mut self, dispatch: Dispatch) {
        let proc = match &dispatch {
            Dispatch::Start(p)
            | Dispatch::Timer(p, _)
            | Dispatch::Datagram(p, _)
            | Dispatch::Conn(p, _)
            | Dispatch::Command(p, _) => *p,
        };
        let Some(mut process) = self.slots.get_mut(proc.0 as usize).and_then(Option::take) else {
            return;
        };
        let mut ctx = Ctx::new(&mut self.kernel, proc);
        match dispatch {
            Dispatch::Start(_) => process.on_start(&mut ctx),
            Dispatch::Timer(_, token) => process.on_timer(&mut ctx, token),
            Dispatch::Datagram(_, dgram) => process.on_datagram(&mut ctx, dgram),
            Dispatch::Conn(_, event) => process.on_conn(&mut ctx, event),
            Dispatch::Command(_, cmd) => process.on_command(&mut ctx, cmd),
        }
        let exited = ctx.exited;
        // Put the process back (unless it exited), then apply deferred
        // spawns and exits requested during the handler.
        if exited {
            self.kernel.kill(proc);
        } else if self.kernel.alive(proc) {
            self.slots[proc.0 as usize] = Some(process);
        }
        let spawns: Vec<_> = self.kernel.pending_spawns.drain(..).collect();
        for (id, process) in spawns {
            self.install(id, process);
            self.kernel.schedule(self.kernel.now, EventKind::Start(id));
        }
        let exits: Vec<ProcId> = self.kernel.pending_exits.drain(..).collect();
        for p in exits {
            self.kernel.kill(p);
            if let Some(slot) = self.slots.get_mut(p.0 as usize) {
                *slot = None;
            }
        }
    }

    /// Runs until virtual time reaches `deadline` (events at exactly
    /// `deadline` are processed) or no events remain.
    pub fn run_until(&mut self, deadline: Micros) {
        while let Some(at) = self.kernel.next_event_at() {
            if at > deadline {
                break;
            }
            self.step();
        }
        if self.kernel.now < deadline {
            self.kernel.now = deadline;
        }
    }

    /// Runs for `duration` of virtual time from now.
    pub fn run_for(&mut self, duration: Micros) {
        let deadline = self.kernel.now + duration;
        self.run_until(deadline);
    }

    /// Runs until the event queue is exhausted (only safe when no process
    /// reschedules periodic timers forever).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    // ----- inspection --------------------------------------------------------

    /// Global statistics.
    pub fn stats(&self) -> &Stats {
        &self.kernel.stats
    }

    /// Per-segment statistics.
    pub fn segment_stats(&self, segment: SegmentId) -> &SegmentStats {
        &self.kernel.segments[segment.0 as usize].stats
    }

    /// Resets global and per-segment counters (useful between benchmark
    /// phases; virtual time keeps advancing).
    pub fn reset_stats(&mut self) {
        self.kernel.stats = Stats::default();
        for seg in &mut self.kernel.segments {
            seg.stats = SegmentStats::default();
        }
    }

    /// Looks up a host by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.kernel.host_names.get(name).copied()
    }

    /// The name of a host.
    pub fn host_name(&self, host: HostId) -> &str {
        &self.kernel.hosts[host.0 as usize].name
    }

    /// All hosts in the simulation.
    pub fn hosts(&self) -> Vec<HostId> {
        (0..self.kernel.hosts.len() as u32).map(HostId).collect()
    }

    /// Reads a host's non-volatile storage from the driver (for test
    /// assertions).
    pub fn nv_get(&self, host: HostId, key: &str) -> Option<Vec<u8>> {
        self.kernel.nv_get(host, key).cloned()
    }

    /// Enables trace collection.
    pub fn enable_trace(&mut self) {
        self.kernel.trace_enabled = true;
    }

    /// Takes and clears the collected trace lines.
    pub fn take_trace(&mut self) -> Vec<String> {
        std::mem::take(&mut self.kernel.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::{ConnEvent, Datagram};
    use crate::time::{millis, secs};
    use crate::{ConnId, NetError};

    /// A process that records everything it receives.
    #[derive(Default)]
    struct Recorder {
        dgrams: Vec<Datagram>,
        conn_msgs: Vec<Vec<u8>>,
        conn_events: Vec<&'static str>,
        timers: Vec<u64>,
        port: u16,
    }

    impl Recorder {
        fn on_port(port: u16) -> Self {
            Recorder {
                port,
                ..Default::default()
            }
        }
    }

    impl Process for Recorder {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if self.port != 0 {
                ctx.bind(self.port).unwrap();
                ctx.listen_conn(self.port).unwrap();
            }
        }
        fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, dgram: Datagram) {
            self.dgrams.push(dgram);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
            self.timers.push(token);
        }
        fn on_conn(&mut self, _ctx: &mut Ctx<'_>, event: ConnEvent) {
            match event {
                ConnEvent::Connected { .. } => self.conn_events.push("connected"),
                ConnEvent::Accepted { .. } => self.conn_events.push("accepted"),
                ConnEvent::Data { msg, .. } => {
                    self.conn_events.push("data");
                    self.conn_msgs.push(msg);
                }
                ConnEvent::Closed { .. } => self.conn_events.push("closed"),
            }
        }
    }

    /// A process that sends a scripted sequence of datagrams on start.
    struct Sender {
        dst: &'static str,
        port: u16,
        payloads: Vec<Vec<u8>>,
        broadcast: bool,
    }

    impl Process for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(1000).unwrap();
            for p in self.payloads.drain(..) {
                if self.broadcast {
                    ctx.broadcast(self.port, p).unwrap();
                } else {
                    let dst = ctx.peer_addr(self.dst, self.port).unwrap();
                    ctx.send_datagram(dst, p).unwrap();
                }
            }
        }
    }

    fn two_host_sim(seed: u64) -> (Sim, HostId, HostId) {
        let mut b = NetBuilder::new(seed);
        let seg = b.segment(EtherConfig::lan_10mbps());
        let a = b.host("a", &[seg]);
        let c = b.host("b", &[seg]);
        (b.build(), a, c)
    }

    #[test]
    fn unicast_delivery() {
        let (mut sim, a, b) = two_host_sim(1);
        let rx = sim.spawn(b, Box::new(Recorder::on_port(9)));
        sim.spawn(
            a,
            Box::new(Sender {
                dst: "b",
                port: 9,
                payloads: vec![b"x".to_vec()],
                broadcast: false,
            }),
        );
        sim.run_for(secs(1));
        let got = sim
            .with_proc::<Recorder, usize>(rx, |r| r.dgrams.len())
            .unwrap();
        assert_eq!(got, 1);
        assert_eq!(sim.stats().datagrams_delivered, 1);
    }

    #[test]
    fn broadcast_reaches_all_but_sender() {
        let mut b = NetBuilder::new(2);
        let seg = b.segment(EtherConfig::lan_10mbps());
        let hosts: Vec<HostId> = (0..5).map(|i| b.host(&format!("h{i}"), &[seg])).collect();
        let mut sim = b.build();
        let receivers: Vec<ProcId> = hosts[1..]
            .iter()
            .map(|h| sim.spawn(*h, Box::new(Recorder::on_port(9))))
            .collect();
        let tx = sim.spawn(
            hosts[0],
            Box::new(Sender {
                dst: "",
                port: 9,
                payloads: vec![b"hi".to_vec()],
                broadcast: true,
            }),
        );
        // The sender also binds port 1000, not 9, so it gets nothing.
        sim.run_for(secs(1));
        for r in receivers {
            assert_eq!(
                sim.with_proc::<Recorder, usize>(r, |p| p.dgrams.len())
                    .unwrap(),
                1
            );
        }
        assert!(sim.is_alive(tx));
        // One transmission, four deliveries: broadcast economy.
        assert_eq!(sim.segment_stats(crate::SegmentId(0)).frames_sent, 1);
        assert_eq!(sim.stats().datagrams_delivered, 4);
    }

    #[test]
    fn fragmentation_and_reassembly() {
        let (mut sim, a, b) = two_host_sim(3);
        let rx = sim.spawn(b, Box::new(Recorder::on_port(9)));
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        sim.spawn(
            a,
            Box::new(Sender {
                dst: "b",
                port: 9,
                payloads: vec![payload],
                broadcast: false,
            }),
        );
        sim.run_for(secs(2));
        sim.with_proc::<Recorder, ()>(rx, |r| {
            assert_eq!(r.dgrams.len(), 1);
            assert_eq!(r.dgrams[0].payload, expect);
        })
        .unwrap();
    }

    #[test]
    fn oversized_datagram_rejected() {
        struct TooBig;
        impl Process for TooBig {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let dst = ctx.peer_addr("b", 9).unwrap();
                let err = ctx
                    .send_datagram(dst, vec![0; crate::MAX_DATAGRAM + 1])
                    .unwrap_err();
                assert!(matches!(err, NetError::DatagramTooLarge(_)));
            }
        }
        let (mut sim, a, _b) = two_host_sim(4);
        sim.spawn(a, Box::new(TooBig));
        sim.run_for(millis(10));
    }

    #[test]
    fn loss_drops_datagrams() {
        let mut b = NetBuilder::new(5);
        let mut cfg = EtherConfig::lan_10mbps();
        cfg.faults.recv_loss = 1.0;
        let seg = b.segment(cfg);
        let a = b.host("a", &[seg]);
        let c = b.host("b", &[seg]);
        let mut sim = b.build();
        let rx = sim.spawn(c, Box::new(Recorder::on_port(9)));
        sim.spawn(
            a,
            Box::new(Sender {
                dst: "b",
                port: 9,
                payloads: vec![b"x".to_vec()],
                broadcast: false,
            }),
        );
        sim.run_for(secs(1));
        assert_eq!(
            sim.with_proc::<Recorder, usize>(rx, |r| r.dgrams.len())
                .unwrap(),
            0
        );
        assert_eq!(sim.stats().recv_losses, 1);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let (mut sim, a, b) = two_host_sim(6);
        let rx = sim.spawn(b, Box::new(Recorder::on_port(9)));
        struct PeriodicSender;
        impl Process for PeriodicSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.bind(1000).unwrap();
                ctx.set_timer(0, 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                let dst = ctx.peer_addr("b", 9).unwrap();
                ctx.send_datagram(dst, b"tick".to_vec()).unwrap();
                ctx.set_timer(millis(100), 0);
            }
        }
        sim.spawn(a, Box::new(PeriodicSender));
        sim.run_for(millis(450));
        let before = sim
            .with_proc::<Recorder, usize>(rx, |r| r.dgrams.len())
            .unwrap();
        assert!(before >= 4, "got {before}");
        sim.partition(&[&[a], &[b]]);
        sim.run_for(millis(500));
        let during = sim
            .with_proc::<Recorder, usize>(rx, |r| r.dgrams.len())
            .unwrap();
        assert!(
            during <= before + 1,
            "at most one in-flight datagram may land"
        );
        sim.heal();
        sim.run_for(millis(500));
        let after = sim
            .with_proc::<Recorder, usize>(rx, |r| r.dgrams.len())
            .unwrap();
        assert!(after > during);
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        let (mut sim2, _a2, b2) = two_host_sim(8);
        struct SelfTimers(Vec<u64>);
        impl Process for SelfTimers {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(millis(30), 3);
                ctx.set_timer(millis(10), 1);
                let c = ctx.set_timer(millis(20), 2);
                ctx.cancel_timer(c);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.0.push(token);
            }
        }
        let p = sim2.spawn(b2, Box::new(SelfTimers(Vec::new())));
        sim2.run_for(secs(1));
        assert_eq!(
            sim2.with_proc::<SelfTimers, Vec<u64>>(p, |s| s.0.clone())
                .unwrap(),
            vec![1, 3]
        );
    }

    #[test]
    fn connection_round_trip() {
        struct Client {
            conn: Option<ConnId>,
            replies: Vec<Vec<u8>>,
        }
        impl Process for Client {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.bind(1000).unwrap();
                let dst = ctx.peer_addr("b", 9).unwrap();
                let conn = ctx.connect(dst);
                ctx.conn_send(conn, b"ping".to_vec()).unwrap();
                self.conn = Some(conn);
            }
            fn on_conn(&mut self, _ctx: &mut Ctx<'_>, event: ConnEvent) {
                if let ConnEvent::Data { msg, .. } = event {
                    self.replies.push(msg);
                }
            }
        }
        struct EchoServer;
        impl Process for EchoServer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.bind(9).unwrap();
                ctx.listen_conn(9).unwrap();
            }
            fn on_conn(&mut self, ctx: &mut Ctx<'_>, event: ConnEvent) {
                if let ConnEvent::Data { conn, msg } = event {
                    let mut reply = b"re:".to_vec();
                    reply.extend_from_slice(&msg);
                    ctx.conn_send(conn, reply).unwrap();
                }
            }
        }
        let (mut sim, a, b) = two_host_sim(9);
        sim.spawn(b, Box::new(EchoServer));
        let client = sim.spawn(
            a,
            Box::new(Client {
                conn: None,
                replies: Vec::new(),
            }),
        );
        sim.run_for(secs(1));
        sim.with_proc::<Client, ()>(client, |c| {
            assert_eq!(c.replies, vec![b"re:ping".to_vec()]);
        })
        .unwrap();
    }

    #[test]
    fn connect_to_missing_listener_reports_closed() {
        struct Client {
            closed: bool,
        }
        impl Process for Client {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.bind(1000).unwrap();
                let dst = ctx.peer_addr("b", 9).unwrap();
                ctx.connect(dst);
            }
            fn on_conn(&mut self, _ctx: &mut Ctx<'_>, event: ConnEvent) {
                if matches!(event, ConnEvent::Closed { .. }) {
                    self.closed = true;
                }
            }
        }
        let (mut sim, a, _b) = two_host_sim(10);
        let client = sim.spawn(a, Box::new(Client { closed: false }));
        sim.run_for(secs(3));
        assert!(sim.with_proc::<Client, bool>(client, |c| c.closed).unwrap());
    }

    #[test]
    fn crash_breaks_connections_and_preserves_nv() {
        struct NvWriter;
        impl Process for NvWriter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.bind(9).unwrap();
                ctx.listen_conn(9).unwrap();
                ctx.nv_put("ledger/1", b"persisted".to_vec());
            }
        }
        struct Client {
            closed: bool,
        }
        impl Process for Client {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.bind(1000).unwrap();
                let dst = ctx.peer_addr("b", 9).unwrap();
                ctx.connect(dst);
            }
            fn on_conn(&mut self, _ctx: &mut Ctx<'_>, event: ConnEvent) {
                if matches!(event, ConnEvent::Closed { .. }) {
                    self.closed = true;
                }
            }
        }
        let (mut sim, a, b) = two_host_sim(11);
        let server = sim.spawn(b, Box::new(NvWriter));
        let client = sim.spawn(a, Box::new(Client { closed: false }));
        sim.run_for(millis(100));
        sim.crash(server);
        sim.run_for(secs(1));
        assert!(sim.with_proc::<Client, bool>(client, |c| c.closed).unwrap());
        assert_eq!(sim.nv_get(b, "ledger/1"), Some(b"persisted".to_vec()));
        assert!(!sim.is_alive(server));
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        fn run(seed: u64) -> (u64, u64, u64) {
            let mut b = NetBuilder::new(seed);
            let mut cfg = EtherConfig::lan_10mbps();
            cfg.faults = crate::FaultPlan::lossy();
            cfg.background_bps = 500_000;
            let seg = b.segment(cfg);
            let hosts: Vec<HostId> = (0..6).map(|i| b.host(&format!("h{i}"), &[seg])).collect();
            let mut sim = b.build();
            for h in &hosts[1..] {
                sim.spawn(*h, Box::new(Recorder::on_port(9)));
            }
            struct Blaster;
            impl Process for Blaster {
                fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                    ctx.bind(1000).unwrap();
                    ctx.set_timer(0, 0);
                }
                fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                    ctx.broadcast(9, vec![7; 3000]).unwrap();
                    ctx.set_timer(millis(20), 0);
                }
            }
            sim.spawn(hosts[0], Box::new(Blaster));
            sim.run_for(secs(5));
            let s = sim.stats();
            (s.datagrams_delivered, s.recv_losses, s.events_processed)
        }
        assert_eq!(run(1234), run(1234));
        assert_ne!(run(1234), run(4321));
    }

    #[test]
    fn broadcast_cost_independent_of_receivers() {
        // The wire carries the same number of frames whether 2 or 12 hosts
        // listen: the Ethernet-broadcast property the bus relies on.
        fn frames_for(n_receivers: usize) -> u64 {
            let mut b = NetBuilder::new(99);
            let seg = b.segment(EtherConfig::lan_10mbps());
            let tx = b.host("tx", &[seg]);
            for i in 0..n_receivers {
                b.host(&format!("rx{i}"), &[seg]);
            }
            let mut sim = b.build();
            for i in 0..n_receivers {
                let h = sim.host_by_name(&format!("rx{i}")).unwrap();
                sim.spawn(h, Box::new(Recorder::on_port(9)));
            }
            sim.spawn(
                tx,
                Box::new(Sender {
                    dst: "",
                    port: 9,
                    payloads: vec![vec![1; 1000]; 10],
                    broadcast: true,
                }),
            );
            sim.run_for(secs(2));
            assert_eq!(sim.stats().datagrams_delivered, 10 * n_receivers as u64);
            sim.segment_stats(crate::SegmentId(0)).frames_sent
        }
        assert_eq!(frames_for(2), frames_for(12));
    }

    #[test]
    fn spawn_from_handler_and_exit() {
        struct Parent {
            spawned: Option<ProcId>,
        }
        impl Process for Parent {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let host = ctx.host();
                self.spawned = Some(ctx.spawn(host, Box::new(Child)));
                ctx.exit();
            }
        }
        struct Child;
        impl Process for Child {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.bind(9).unwrap();
            }
        }
        let (mut sim, a, _b) = two_host_sim(12);
        let parent = sim.spawn(a, Box::new(Parent { spawned: None }));
        sim.run_for(millis(10));
        assert!(!sim.is_alive(parent));
        // The child is alive and owns port 9.
        let child = ProcId(parent.0 + 1);
        assert!(sim.is_alive(child));
    }

    #[test]
    fn background_traffic_occupies_medium() {
        let mut b = NetBuilder::new(13);
        let mut cfg = EtherConfig::lan_10mbps();
        cfg.background_bps = 2_000_000;
        let seg = b.segment(cfg);
        b.host("only", &[seg]);
        let mut sim = b.build();
        sim.run_for(secs(1));
        let stats = sim.segment_stats(seg);
        assert!(
            stats.background_frames > 100,
            "got {}",
            stats.background_frames
        );
        let util = stats.utilization(secs(1));
        assert!(util > 0.1 && util < 0.4, "utilization {util}");
    }
}
