//! Internal event types for the discrete-event kernel.

use std::any::Any;
use std::cmp::Ordering;

use crate::{ConnId, HostId, Micros, ProcId, SegmentId, SockAddr};

/// A scheduled occurrence. Ordered by `(at, seq)` so simultaneous events
/// fire in schedule order, keeping runs deterministic.
pub(crate) struct Event {
    pub at: Micros,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One fragment of a datagram in flight.
#[derive(Debug, Clone)]
pub(crate) struct Fragment {
    pub src: SockAddr,
    pub dst_port: u16,
    pub broadcast: bool,
    pub dgram_id: u64,
    pub index: u16,
    pub total: u16,
    pub bytes: Vec<u8>,
}

pub(crate) enum EventKind {
    /// Run `on_start` for a newly spawned process.
    Start(ProcId),
    /// A frame leaves the sender's CPU and contends for the medium.
    FrameTx {
        src_host: HostId,
        segment: SegmentId,
        unicast_to: Option<HostId>,
        frag: Fragment,
    },
    /// A timer fires.
    Timer {
        proc: ProcId,
        timer_id: u64,
        token: u64,
    },
    /// A frame reaches a host's NIC (before receive-CPU charging).
    FragArrive { dst_host: HostId, frag: Fragment },
    /// A frame has been processed by the receiving host's CPU.
    FragDeliver { dst_host: HostId, frag: Fragment },
    /// Reassembly deadline for a partially received datagram.
    ReasmTimeout {
        dst_host: HostId,
        key: (SockAddr, u64),
    },
    /// Deliver a driver command to a process.
    Command { proc: ProcId, cmd: Box<dyn Any> },
    /// Connection established (delivered to the named endpoint).
    ConnUp {
        proc: ProcId,
        conn: ConnId,
        accepted: Option<SockAddr>,
    },
    /// Connection message delivery.
    ConnData {
        proc: ProcId,
        conn: ConnId,
        msg: Vec<u8>,
    },
    /// Connection closed notification.
    ConnClosed { proc: ProcId, conn: ConnId },
    /// Background traffic generator tick for a segment.
    Background { segment: SegmentId },
}
