//! The simulator's own deterministic RNG.
//!
//! The kernel needs reproducible randomness (fault injection, jitter,
//! background traffic) with no external dependencies, so it carries a
//! small xoshiro256++ generator seeded through splitmix64 — the standard
//! construction for expanding a 64-bit seed into generator state. Streams
//! are stable across platforms and releases: a given seed always replays
//! the same simulation.

/// A deterministic xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expands the seed into four independent words.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[lo, hi]` (inclusive on both ends).
    ///
    /// Uses rejection sampling, so the distribution is exactly uniform.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        // Largest multiple of n that fits in u64; reject above it.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_inclusive_covers_bounds() {
        let mut r = SimRng::seed_from_u64(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 6;
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(r.gen_range_inclusive(5, 5), 5);
    }
}
