//! Virtual time: the simulator clock counts microseconds from zero.

/// A point in (or duration of) virtual time, in microseconds.
pub type Micros = u64;

/// Converts milliseconds to [`Micros`].
pub const fn millis(ms: u64) -> Micros {
    ms * 1_000
}

/// Converts seconds to [`Micros`].
pub const fn secs(s: u64) -> Micros {
    s * 1_000_000
}

/// Formats a virtual timestamp as `s.mmm_uuu` for traces.
pub fn fmt_time(t: Micros) -> String {
    format!("{}.{:06}", t / 1_000_000, t % 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(millis(3), 3_000);
        assert_eq!(secs(2), 2_000_000);
        assert_eq!(fmt_time(1_234_567), "1.234567");
        assert_eq!(fmt_time(42), "0.000042");
    }
}
