//! A deterministic discrete-event network and host simulator.
//!
//! This crate is the testbed substrate for the Information Bus
//! reproduction. The paper's evaluation ran on fifteen Sun workstations on
//! a lightly loaded 10 Mb/s Ethernet; this simulator models the parts of
//! that environment the evaluation's results depend on:
//!
//! * a **shared-medium Ethernet segment** — frames serialize over a
//!   configurable-bandwidth medium, broadcast frames reach every attached
//!   host at the cost of a single transmission, and optional background
//!   traffic contends for the medium,
//! * an **unreliable datagram layer** (UDP-like) — MTU fragmentation and
//!   reassembly, configurable loss, duplication, reordering, and network
//!   partitions,
//! * a **per-host CPU model** — fixed per-packet and per-byte processing
//!   costs, which reproduce the era's host-limited UDP throughput ceiling,
//! * **reliable connection-oriented streams** (TCP-like) for
//!   point-to-point remote method invocation,
//! * **simulated non-volatile storage** that survives process crashes, for
//!   guaranteed-delivery ledgers,
//! * **fail-stop process crashes and restarts** (the paper's §2 failure
//!   model: no Byzantine failures; nodes eventually recover).
//!
//! Everything is driven by a virtual clock and a seeded RNG, so every run
//! is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use infobus_netsim::{Ctx, Datagram, EtherConfig, NetBuilder, Process};
//!
//! struct Echo;
//! impl Process for Echo {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.bind(9).unwrap();
//!     }
//!     fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
//!         ctx.send_datagram(dgram.src, dgram.payload).unwrap();
//!     }
//! }
//!
//! struct Ping { got: bool }
//! impl Process for Ping {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.bind(10).unwrap();
//!         let peer = ctx.peer_addr("server", 9).unwrap();
//!         ctx.send_datagram(peer, b"hello".to_vec()).unwrap();
//!     }
//!     fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, dgram: Datagram) {
//!         assert_eq!(dgram.payload, b"hello");
//!         self.got = true;
//!     }
//! }
//!
//! let mut b = NetBuilder::new(42);
//! let seg = b.segment(EtherConfig::lan_10mbps());
//! let server = b.host("server", &[seg]);
//! let client = b.host("client", &[seg]);
//! let mut sim = b.build();
//! sim.spawn(server, Box::new(Echo));
//! let ping = sim.spawn(client, Box::new(Ping { got: false }));
//! sim.run_for(infobus_netsim::time::secs(1));
//! assert!(sim.with_proc::<Ping, bool>(ping, |p| p.got).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod ctx;
mod event;
mod kernel;
mod proc;
mod rng;
mod sim;
mod stats;
pub mod time;

pub use config::{EtherConfig, FaultPlan, HostConfig};
pub use ctx::Ctx;
pub use proc::{ConnEvent, Datagram, Process};
pub use rng::SimRng;
pub use sim::{NetBuilder, Sim};
pub use stats::{SegmentStats, Stats};
pub use time::Micros;

use std::fmt;

/// Identifier of a simulated host (node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Identifier of a shared Ethernet segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

/// Identifier of a simulated process. Never reused within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

/// Identifier of a connection-oriented stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// A datagram or connection endpoint: host plus port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockAddr {
    /// The host part of the address.
    pub host: HostId,
    /// The port part of the address.
    pub port: u16,
}

impl SockAddr {
    /// Builds a socket address from host and port.
    pub fn new(host: HostId, port: u16) -> Self {
        SockAddr { host, port }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}:{}", self.host.0, self.port)
    }
}

/// Errors surfaced to processes by [`Ctx`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The port is already bound on this host.
    PortInUse(u16),
    /// The destination host shares no segment with the sender and is not
    /// the sender itself.
    NoRoute(HostId),
    /// The referenced connection does not exist or is closed.
    ConnClosed(ConnId),
    /// No host with this name exists.
    UnknownHost(String),
    /// The datagram exceeds the maximum size the layer will fragment.
    DatagramTooLarge(usize),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::PortInUse(p) => write!(f, "port {p} already bound on this host"),
            NetError::NoRoute(h) => write!(f, "no route to host h{}", h.0),
            NetError::ConnClosed(c) => write!(f, "connection {} is closed or unknown", c.0),
            NetError::UnknownHost(n) => write!(f, "unknown host {n:?}"),
            NetError::DatagramTooLarge(n) => write!(f, "datagram of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for NetError {}

/// Maximum datagram payload the layer will fragment (64 KiB, like IPv4/UDP).
pub const MAX_DATAGRAM: usize = 65_507;
