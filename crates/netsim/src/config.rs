//! Configuration for segments, hosts, and fault injection.

use crate::Micros;

/// Parameters of one shared Ethernet segment.
///
/// The defaults model the paper's testbed: a lightly loaded 10 Mb/s
/// Ethernet. Frames occupy the shared medium for their serialization time;
/// broadcast frames are received by every attached host at the cost of one
/// transmission — the property the Information Bus exploits so that
/// "the same data can be delivered to a large number of destinations
/// without a performance penalty".
#[derive(Debug, Clone)]
pub struct EtherConfig {
    /// Raw medium bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Per-frame overhead bytes (preamble, MAC header, FCS, inter-frame gap).
    pub frame_overhead: usize,
    /// Minimum frame payload size on the wire, in bytes.
    pub min_frame: usize,
    /// Maximum datagram fragment payload per frame (UDP/IP payload per MTU).
    pub mtu_payload: usize,
    /// One-way propagation delay across the segment, in microseconds.
    pub prop_us: Micros,
    /// Fault plan applied to traffic on this segment.
    pub faults: FaultPlan,
    /// Offered background load from unrelated traffic, in bits per second.
    ///
    /// Background frames contend for the medium and can collide with data
    /// frames (see [`FaultPlan::collision_loss`]). The paper attributes the
    /// throughput dip between 5 KB and 10 KB messages to exactly such
    /// "collisions from unrelated network activity".
    pub background_bps: u64,
    /// Size of each background frame, in bytes.
    pub background_frame: usize,
}

impl EtherConfig {
    /// The paper's testbed: 10 Mb/s shared Ethernet, no injected faults.
    pub fn lan_10mbps() -> Self {
        EtherConfig {
            bandwidth_bps: 10_000_000,
            frame_overhead: 38,
            min_frame: 64,
            mtu_payload: 1472,
            prop_us: 5,
            faults: FaultPlan::none(),
            background_bps: 0,
            background_frame: 800,
        }
    }
}

impl Default for EtherConfig {
    fn default() -> Self {
        EtherConfig::lan_10mbps()
    }
}

/// Probabilistic fault injection applied to datagram traffic.
///
/// All probabilities are in `[0, 1]` and are evaluated with the
/// simulation's seeded RNG, so fault sequences are reproducible.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability that a frame is corrupted on the wire (lost for *all*
    /// receivers).
    pub wire_loss: f64,
    /// Probability that a given receiver independently drops an arriving
    /// frame (input-queue overrun).
    pub recv_loss: f64,
    /// Probability that an arriving frame is duplicated at the receiver.
    pub dup: f64,
    /// Maximum extra delivery jitter, in microseconds, applied per frame
    /// (produces reordering between fragments and datagrams).
    pub reorder_jitter_us: Micros,
    /// Probability that a frame which had to wait for a busy medium is
    /// lost to a collision.
    pub collision_loss: f64,
}

impl FaultPlan {
    /// No injected faults: the network still orders frames per segment but
    /// never drops, duplicates, or jitters them.
    pub fn none() -> Self {
        FaultPlan {
            wire_loss: 0.0,
            recv_loss: 0.0,
            dup: 0.0,
            reorder_jitter_us: 0,
            collision_loss: 0.0,
        }
    }

    /// A mildly lossy network: 1% receiver loss, small jitter.
    pub fn lossy() -> Self {
        FaultPlan {
            wire_loss: 0.002,
            recv_loss: 0.01,
            dup: 0.002,
            reorder_jitter_us: 400,
            collision_loss: 0.0,
        }
    }

    /// A harsh network for stress tests: heavy loss, duplication, jitter.
    pub fn harsh() -> Self {
        FaultPlan {
            wire_loss: 0.02,
            recv_loss: 0.08,
            dup: 0.02,
            reorder_jitter_us: 3_000,
            collision_loss: 0.05,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Per-host processing-cost model.
///
/// The evaluation's throughput ceiling (~300 KB/s through a raw UDP socket
/// on the paper's workstations) was host-limited, not wire-limited; these
/// parameters reproduce that: each transmitted or received fragment charges
/// a fixed cost plus a per-byte cost against the host's single CPU.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Fixed CPU cost to send one fragment, in microseconds.
    pub send_fixed_us: Micros,
    /// Per-byte CPU cost to send, in microseconds per byte.
    pub send_per_byte_us: f64,
    /// Fixed CPU cost to receive one fragment, in microseconds.
    pub recv_fixed_us: Micros,
    /// Per-byte CPU cost to receive, in microseconds per byte.
    pub recv_per_byte_us: f64,
    /// Latency of one non-volatile storage write, in microseconds.
    pub nv_write_us: Micros,
    /// Fixed cost of local inter-process delivery (application/daemon hop).
    pub ipc_fixed_us: Micros,
    /// Per-byte cost of local inter-process delivery.
    pub ipc_per_byte_us: f64,
}

impl HostConfig {
    /// Calibrated to the paper's SPARCstation-2-class hosts: the UDP path
    /// tops out near 300–400 KB/s and per-packet costs dominate small
    /// messages.
    pub fn sparcstation2() -> Self {
        HostConfig {
            send_fixed_us: 200,
            send_per_byte_us: 1.1,
            recv_fixed_us: 200,
            recv_per_byte_us: 1.1,
            nv_write_us: 18_000,
            ipc_fixed_us: 80,
            ipc_per_byte_us: 0.45,
        }
    }

    /// An effectively free host model, for protocol-logic tests that do
    /// not care about timing realism.
    pub fn instant() -> Self {
        HostConfig {
            send_fixed_us: 1,
            send_per_byte_us: 0.0,
            recv_fixed_us: 1,
            recv_per_byte_us: 0.0,
            nv_write_us: 1,
            ipc_fixed_us: 1,
            ipc_per_byte_us: 0.0,
        }
    }

    /// CPU cost, in microseconds, to send `bytes` in one fragment.
    pub fn send_cost(&self, bytes: usize) -> Micros {
        self.send_fixed_us + (bytes as f64 * self.send_per_byte_us) as Micros
    }

    /// CPU cost, in microseconds, to receive `bytes` in one fragment.
    pub fn recv_cost(&self, bytes: usize) -> Micros {
        self.recv_fixed_us + (bytes as f64 * self.recv_per_byte_us) as Micros
    }

    /// Cost, in microseconds, of one local inter-process hop of `bytes`.
    pub fn ipc_cost(&self, bytes: usize) -> Micros {
        self.ipc_fixed_us + (bytes as f64 * self.ipc_per_byte_us) as Micros
    }
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig::sparcstation2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_is_affine() {
        let h = HostConfig::sparcstation2();
        assert_eq!(h.send_cost(0), h.send_fixed_us);
        assert!(h.send_cost(1000) > h.send_cost(100));
        assert_eq!(h.ipc_cost(0), h.ipc_fixed_us);
    }

    #[test]
    fn defaults_are_paper_testbed() {
        let e = EtherConfig::default();
        assert_eq!(e.bandwidth_bps, 10_000_000);
        assert_eq!(e.faults.recv_loss, 0.0);
    }
}
