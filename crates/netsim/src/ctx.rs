//! The capability handle a process uses to interact with the simulated
//! world.

use crate::config::HostConfig;
use crate::kernel::Kernel;
use crate::{ConnId, HostId, Micros, NetError, ProcId, SegmentId, SockAddr};

/// The interface between a [`crate::Process`] and the simulator kernel.
///
/// A `Ctx` is passed to every process handler. All operations take effect
/// in virtual time: costs charged against the host CPU delay subsequent
/// sends and receives, exactly as a busy workstation would.
pub struct Ctx<'a> {
    pub(crate) kernel: &'a mut Kernel,
    pub(crate) proc: ProcId,
    pub(crate) exited: bool,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(kernel: &'a mut Kernel, proc: ProcId) -> Self {
        Ctx {
            kernel,
            proc,
            exited: false,
        }
    }

    /// Current virtual time, in microseconds.
    pub fn now(&self) -> Micros {
        self.kernel.now
    }

    /// This process's identifier.
    pub fn proc_id(&self) -> ProcId {
        self.proc
    }

    /// The host this process runs on.
    pub fn host(&self) -> HostId {
        self.kernel.host_of(self.proc)
    }

    /// The name of the host this process runs on.
    pub fn host_name(&self) -> String {
        self.kernel.hosts[self.host().0 as usize].name.clone()
    }

    /// The segments this process's host is attached to.
    pub fn segments(&self) -> Vec<SegmentId> {
        self.kernel.hosts[self.host().0 as usize].segments.clone()
    }

    /// The host's processing-cost model (for layered protocols that model
    /// additional local hops, like the bus daemon's application delivery).
    pub fn host_config(&self) -> HostConfig {
        self.kernel.hosts[self.host().0 as usize].config.clone()
    }

    /// Resolves a host by name, returning an address on it.
    ///
    /// This is a driver/test convenience — bus protocols never need it
    /// (communication is anonymous), but low-level tests do.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownHost`] if no host has this name.
    pub fn peer_addr(&self, host_name: &str, port: u16) -> Result<SockAddr, NetError> {
        let host = self
            .kernel
            .host_names
            .get(host_name)
            .copied()
            .ok_or_else(|| NetError::UnknownHost(host_name.to_owned()))?;
        Ok(SockAddr::new(host, port))
    }

    /// The source address this process's datagrams carry.
    pub fn local_addr(&self) -> SockAddr {
        self.kernel.src_addr(self.proc)
    }

    /// Binds a datagram port on this host to this process.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortInUse`] if another live process on the same
    /// host already bound the port.
    pub fn bind(&mut self, port: u16) -> Result<(), NetError> {
        self.kernel.bind(self.proc, port)
    }

    /// Sends an unreliable datagram to `dst`, fragmenting if necessary.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoRoute`] if the destination host shares no
    /// segment with this host, or [`NetError::DatagramTooLarge`].
    pub fn send_datagram(&mut self, dst: SockAddr, payload: Vec<u8>) -> Result<(), NetError> {
        self.kernel
            .send_datagram(self.proc, Some(dst), None, payload)
    }

    /// Broadcasts a datagram to `port` on every other host of every
    /// segment this host is attached to.
    ///
    /// A broadcast costs one transmission per segment regardless of the
    /// number of receivers — the Ethernet property the bus exploits.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DatagramTooLarge`] for oversized payloads.
    pub fn broadcast(&mut self, port: u16, payload: Vec<u8>) -> Result<(), NetError> {
        self.kernel
            .send_datagram(self.proc, None, Some((None, port)), payload)
    }

    /// Broadcasts a datagram on one specific segment.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DatagramTooLarge`] for oversized payloads.
    pub fn broadcast_on(
        &mut self,
        segment: SegmentId,
        port: u16,
        payload: Vec<u8>,
    ) -> Result<(), NetError> {
        self.kernel
            .send_datagram(self.proc, None, Some((Some(segment), port)), payload)
    }

    /// Schedules a timer; `token` is returned to
    /// [`crate::Process::on_timer`]. Returns a timer id usable with
    /// [`Ctx::cancel_timer`].
    pub fn set_timer(&mut self, delay: Micros, token: u64) -> u64 {
        self.kernel.set_timer(self.proc, delay, token)
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, timer_id: u64) {
        self.kernel.cancel_timer(timer_id);
    }

    /// Charges `cost` microseconds against this host's CPU, delaying
    /// subsequent network operations. Layered protocols use this to model
    /// work the simulator cannot see (marshalling, local IPC hops).
    pub fn charge_cpu(&mut self, cost: Micros) {
        let host = self.host();
        let h = &mut self.kernel.hosts[host.0 as usize];
        let start = h.cpu_free.max(self.kernel.now);
        h.cpu_free = start + cost;
    }

    // ----- connections ----------------------------------------------------

    /// Starts accepting connections on `port`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortInUse`] if the port already has a listener.
    pub fn listen_conn(&mut self, port: u16) -> Result<(), NetError> {
        self.kernel.listen_conn(self.proc, port)
    }

    /// Opens a connection to `dst`. Completion is reported via
    /// [`crate::ConnEvent::Connected`] (or `Closed` on failure). Messages
    /// may be sent immediately; they are queued behind connection setup.
    pub fn connect(&mut self, dst: SockAddr) -> ConnId {
        self.kernel.connect(self.proc, dst)
    }

    /// Sends one framed message on a connection. Delivery is reliable and
    /// in order while both endpoints are up and connected.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ConnClosed`] if the connection is unknown or
    /// closed.
    pub fn conn_send(&mut self, conn: ConnId, msg: Vec<u8>) -> Result<(), NetError> {
        self.kernel.conn_send(self.proc, conn, msg)
    }

    /// Closes a connection; the peer receives
    /// [`crate::ConnEvent::Closed`].
    pub fn conn_close(&mut self, conn: ConnId) {
        self.kernel.conn_close(self.proc, conn);
    }

    /// Returns the peer address of a connection, if it exists.
    pub fn conn_peer(&self, conn: ConnId) -> Option<SockAddr> {
        self.kernel.conn_peer_addr(conn, self.proc)
    }

    // ----- non-volatile storage ---------------------------------------------

    /// Writes a value to this host's non-volatile storage. The write
    /// charges the host CPU for the configured write latency. Values
    /// survive process crashes and restarts.
    pub fn nv_put(&mut self, key: &str, value: Vec<u8>) {
        let host = self.host();
        self.kernel.nv_put(host, key, value);
    }

    /// Reads a value from this host's non-volatile storage.
    pub fn nv_get(&self, key: &str) -> Option<Vec<u8>> {
        self.kernel.nv_get(self.host(), key).cloned()
    }

    /// Deletes a value; returns `true` if it existed.
    pub fn nv_delete(&mut self, key: &str) -> bool {
        let host = self.host();
        self.kernel.nv_delete(host, key)
    }

    /// Lists keys with the given prefix, sorted.
    pub fn nv_keys(&self, prefix: &str) -> Vec<String> {
        self.kernel.nv_keys(self.host(), prefix)
    }

    // ----- process management -----------------------------------------------

    /// Spawns a new process on `host`. The new process starts after the
    /// current handler returns.
    pub fn spawn(&mut self, host: HostId, process: Box<dyn crate::Process>) -> ProcId {
        let id = self.kernel.alloc_proc(host);
        self.kernel.pending_spawns.push((id, process));
        id
    }

    /// Terminates this process cleanly after the current handler returns
    /// (used, for example, by an obsolete server going off-line once its
    /// outstanding requests are drained).
    pub fn exit(&mut self) {
        self.exited = true;
    }

    /// Draws a uniformly random `f64` in `[0, 1)` from the simulation's
    /// deterministic RNG.
    pub fn random(&mut self) -> f64 {
        self.kernel.rng.gen_f64()
    }

    /// Appends a line to the simulation trace (when tracing is enabled).
    pub fn trace(&mut self, line: impl FnOnce() -> String) {
        self.kernel.trace(line);
    }
}
