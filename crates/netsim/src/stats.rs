//! Counters collected by the simulator, used by tests and the benchmark
//! harness.

use crate::Micros;

/// Per-segment wire statistics.
#[derive(Debug, Clone, Default)]
pub struct SegmentStats {
    /// Data frames that entered the medium.
    pub frames_sent: u64,
    /// Total bytes on the wire, including frame overhead.
    pub wire_bytes: u64,
    /// Total time the medium was occupied, in microseconds.
    pub busy_us: Micros,
    /// Frames lost to wire corruption.
    pub wire_losses: u64,
    /// Frames lost to collisions after waiting for a busy medium.
    pub collision_losses: u64,
    /// Background (unrelated-traffic) frames generated.
    pub background_frames: u64,
}

impl SegmentStats {
    /// Medium utilization over `elapsed` microseconds of virtual time.
    pub fn utilization(&self, elapsed: Micros) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_us as f64 / elapsed as f64
        }
    }
}

/// Global simulation statistics.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Datagrams submitted by processes (unicast and broadcast).
    pub datagrams_sent: u64,
    /// Datagrams fully reassembled and delivered to a process.
    pub datagrams_delivered: u64,
    /// Datagram payload bytes delivered to processes.
    pub payload_bytes_delivered: u64,
    /// Frames dropped at a receiver (input-queue overrun model).
    pub recv_losses: u64,
    /// Frames duplicated at a receiver.
    pub dups: u64,
    /// Frames dropped because sender and receiver were partitioned.
    pub partition_drops: u64,
    /// Datagrams whose reassembly timed out after fragment loss.
    pub reassembly_failures: u64,
    /// Datagrams dropped because no process was bound to the port.
    pub unbound_drops: u64,
    /// Connection messages delivered.
    pub conn_msgs_delivered: u64,
    /// Connection payload bytes delivered.
    pub conn_bytes_delivered: u64,
    /// Connections that failed or broke.
    pub conn_failures: u64,
    /// Processes crashed via the driver.
    pub crashes: u64,
    /// Non-volatile storage writes performed.
    pub nv_writes: u64,
    /// Events processed by the kernel.
    pub events_processed: u64,
}
