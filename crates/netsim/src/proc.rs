//! The process (actor) abstraction hosted by the simulator.

use std::any::Any;

use crate::{ConnId, Ctx, SockAddr};

/// A datagram delivered to a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Source address (the sender's bound port, or an ephemeral port).
    pub src: SockAddr,
    /// Destination address on the receiving host.
    pub dst: SockAddr,
    /// `true` if this datagram arrived via a broadcast frame.
    pub broadcast: bool,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Events delivered to a process about its connection-oriented streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnEvent {
    /// An outgoing [`Ctx::connect`] completed; the stream is usable.
    Connected {
        /// The connection this event refers to.
        conn: ConnId,
    },
    /// A peer connected to a port this process listens on.
    Accepted {
        /// The connection this event refers to.
        conn: ConnId,
        /// Address of the connecting peer.
        peer: SockAddr,
    },
    /// A framed message arrived on the stream.
    Data {
        /// The connection this event refers to.
        conn: ConnId,
        /// The message bytes (stream framing is preserved).
        msg: Vec<u8>,
    },
    /// The stream closed (peer close, peer crash, partition, or timeout).
    Closed {
        /// The connection this event refers to.
        conn: ConnId,
    },
}

/// A simulated process: the unit of execution, failure, and restart.
///
/// Processes are single-threaded event handlers driven by the simulator:
/// the kernel calls at most one handler at a time, and handlers observe a
/// consistent virtual clock through [`Ctx::now`]. All default
/// implementations do nothing, so a process only implements the events it
/// cares about.
///
/// Processes are fail-stop: [`crate::Sim::crash`] destroys a process
/// without warning (no handler runs), which models the paper's §2 failure
/// assumptions. State placed in non-volatile storage via [`Ctx::nv_put`]
/// survives; everything else is lost.
pub trait Process: Any {
    /// Called once when the process is spawned.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called when a datagram arrives on a bound port.
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let _ = (ctx, dgram);
    }

    /// Called when a timer set with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called on connection events for this process's streams.
    fn on_conn(&mut self, ctx: &mut Ctx<'_>, event: ConnEvent) {
        let _ = (ctx, event);
    }

    /// Called when the driver injects a command via
    /// [`crate::Sim::send_command`].
    fn on_command(&mut self, ctx: &mut Ctx<'_>, cmd: Box<dyn Any>) {
        let _ = (ctx, cmd);
    }
}
