//! Property-based tests for the network simulator: determinism,
//! conservation, and fragmentation invariants under random configurations.

use infobus_netsim::{Ctx, Datagram, EtherConfig, FaultPlan, NetBuilder, Process, SegmentId, Sim};
use proptest::prelude::*;

/// Broadcasts `payloads` (one per timer tick) to a fixed port.
struct Blaster {
    payloads: Vec<Vec<u8>>,
    period: u64,
    next: usize,
}

impl Process for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(1000).unwrap();
        ctx.set_timer(self.period, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        if let Some(p) = self.payloads.get(self.next) {
            ctx.broadcast(9, p.clone()).unwrap();
            self.next += 1;
            ctx.set_timer(self.period, 0);
        }
    }
}

#[derive(Default)]
struct Sink {
    got: Vec<Vec<u8>>,
}

impl Process for Sink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(9).unwrap();
    }
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, dgram: Datagram) {
        self.got.push(dgram.payload);
    }
}

fn run_scenario(
    seed: u64,
    faults: FaultPlan,
    background: u64,
    payloads: Vec<Vec<u8>>,
    n_receivers: usize,
) -> (Vec<Vec<Vec<u8>>>, u64, u64) {
    let mut b = NetBuilder::new(seed);
    let mut cfg = EtherConfig::lan_10mbps();
    cfg.faults = faults;
    cfg.background_bps = background;
    let seg = b.segment(cfg);
    let tx = b.host("tx", &[seg]);
    let receivers: Vec<_> = (0..n_receivers)
        .map(|i| b.host(&format!("rx{i}"), &[seg]))
        .collect();
    let mut sim: Sim = b.build();
    let sinks: Vec<_> = receivers
        .iter()
        .map(|h| sim.spawn(*h, Box::new(Sink::default())))
        .collect();
    let n = payloads.len() as u64;
    sim.spawn(
        tx,
        Box::new(Blaster {
            payloads,
            period: 3_000,
            next: 0,
        }),
    );
    sim.run_for(3_000 * (n + 2) + 5_000_000);
    let got: Vec<Vec<Vec<u8>>> = sinks
        .iter()
        .map(|s| {
            sim.with_proc::<Sink, Vec<Vec<u8>>>(*s, |x| x.got.clone())
                .unwrap()
        })
        .collect();
    let stats = sim.stats();
    let frames = sim.segment_stats(SegmentId(0)).frames_sent;
    (got, stats.events_processed, frames)
}

fn payloads_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 1..5000), 1..12)
}

fn faults_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..0.2,
        0.0f64..0.2,
        0.0f64..0.1,
        0u64..2000,
        0.0f64..0.05,
    )
        .prop_map(|(wire, recv, dup, jitter, coll)| FaultPlan {
            wire_loss: wire,
            recv_loss: recv,
            dup,
            reorder_jitter_us: jitter,
            collision_loss: coll,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical seeds and configurations produce bit-identical outcomes
    /// (the foundation of every reproducible experiment in this repo).
    #[test]
    fn determinism(
        seed in 0u64..1_000_000,
        faults in faults_strategy(),
        background in prop_oneof![Just(0u64), Just(500_000u64)],
        payloads in payloads_strategy(),
    ) {
        let a = run_scenario(seed, faults.clone(), background, payloads.clone(), 3);
        let b = run_scenario(seed, faults, background, payloads, 3);
        prop_assert_eq!(a, b);
    }

    /// With no faults, every receiver gets every datagram intact and in
    /// order (fragmentation/reassembly is lossless), and the wire carries
    /// one frame per fragment regardless of receiver count.
    #[test]
    fn lossless_delivery_and_broadcast_economy(
        payloads in payloads_strategy(),
        n_receivers in 1usize..6,
    ) {
        let (got, _, frames) =
            run_scenario(42, FaultPlan::none(), 0, payloads.clone(), n_receivers);
        for sink in &got {
            prop_assert_eq!(sink, &payloads);
        }
        let expected_frames: u64 =
            payloads.iter().map(|p| p.len().div_ceil(1_472).max(1) as u64).sum();
        prop_assert_eq!(frames, expected_frames, "one transmission serves all receivers");
    }

    /// Under arbitrary faults, receivers never see corrupted or invented
    /// data: everything delivered is a subset (with possible duplicates)
    /// of what was sent, and single-fragment duplicates are the only
    /// source of repeats.
    #[test]
    fn no_corruption_under_faults(
        seed in 0u64..100_000,
        faults in faults_strategy(),
        payloads in payloads_strategy(),
    ) {
        let (got, _, _) = run_scenario(seed, faults, 0, payloads.clone(), 2);
        for sink in &got {
            for delivered in sink {
                prop_assert!(
                    payloads.iter().any(|p| p == delivered),
                    "delivered datagram must match a sent one"
                );
            }
        }
    }
}
