//! Randomized tests for the network simulator: determinism,
//! conservation, and fragmentation invariants under random
//! configurations.
//!
//! Deterministic property testing: configurations come from a seeded
//! [`SimRng`], so each run explores the same sample and failures
//! reproduce exactly.

use infobus_netsim::{
    Ctx, Datagram, EtherConfig, FaultPlan, NetBuilder, Process, SegmentId, Sim, SimRng,
};

/// Broadcasts `payloads` (one per timer tick) to a fixed port.
struct Blaster {
    payloads: Vec<Vec<u8>>,
    period: u64,
    next: usize,
}

impl Process for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(1000).unwrap();
        ctx.set_timer(self.period, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        if let Some(p) = self.payloads.get(self.next) {
            ctx.broadcast(9, p.clone()).unwrap();
            self.next += 1;
            ctx.set_timer(self.period, 0);
        }
    }
}

#[derive(Default)]
struct Sink {
    got: Vec<Vec<u8>>,
}

impl Process for Sink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(9).unwrap();
    }
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, dgram: Datagram) {
        self.got.push(dgram.payload);
    }
}

fn run_scenario(
    seed: u64,
    faults: FaultPlan,
    background: u64,
    payloads: Vec<Vec<u8>>,
    n_receivers: usize,
) -> (Vec<Vec<Vec<u8>>>, u64, u64) {
    let mut b = NetBuilder::new(seed);
    let mut cfg = EtherConfig::lan_10mbps();
    cfg.faults = faults;
    cfg.background_bps = background;
    let seg = b.segment(cfg);
    let tx = b.host("tx", &[seg]);
    let receivers: Vec<_> = (0..n_receivers)
        .map(|i| b.host(&format!("rx{i}"), &[seg]))
        .collect();
    let mut sim: Sim = b.build();
    let sinks: Vec<_> = receivers
        .iter()
        .map(|h| sim.spawn(*h, Box::new(Sink::default())))
        .collect();
    let n = payloads.len() as u64;
    sim.spawn(
        tx,
        Box::new(Blaster {
            payloads,
            period: 3_000,
            next: 0,
        }),
    );
    sim.run_for(3_000 * (n + 2) + 5_000_000);
    let got: Vec<Vec<Vec<u8>>> = sinks
        .iter()
        .map(|s| {
            sim.with_proc::<Sink, Vec<Vec<u8>>>(*s, |x| x.got.clone())
                .unwrap()
        })
        .collect();
    let stats = sim.stats();
    let frames = sim.segment_stats(SegmentId(0)).frames_sent;
    (got, stats.events_processed, frames)
}

fn arb_payloads(r: &mut SimRng) -> Vec<Vec<u8>> {
    (0..r.gen_range_inclusive(1, 11))
        .map(|_| {
            (0..r.gen_range_inclusive(1, 4999))
                .map(|_| r.next_u64() as u8)
                .collect()
        })
        .collect()
}

fn arb_faults(r: &mut SimRng) -> FaultPlan {
    FaultPlan {
        wire_loss: r.gen_f64() * 0.2,
        recv_loss: r.gen_f64() * 0.2,
        dup: r.gen_f64() * 0.1,
        reorder_jitter_us: r.gen_range_inclusive(0, 1999),
        collision_loss: r.gen_f64() * 0.05,
    }
}

/// Identical seeds and configurations produce bit-identical outcomes
/// (the foundation of every reproducible experiment in this repo).
#[test]
fn determinism() {
    let mut r = SimRng::seed_from_u64(41);
    for case in 0..8 {
        let seed = r.gen_range_inclusive(0, 999_999);
        let faults = arb_faults(&mut r);
        let background = if case % 2 == 0 { 0 } else { 500_000 };
        let payloads = arb_payloads(&mut r);
        let a = run_scenario(seed, faults.clone(), background, payloads.clone(), 3);
        let b = run_scenario(seed, faults, background, payloads, 3);
        assert_eq!(a, b);
    }
}

/// With no faults, every receiver gets every datagram intact and in
/// order (fragmentation/reassembly is lossless), and the wire carries
/// one frame per fragment regardless of receiver count.
#[test]
fn lossless_delivery_and_broadcast_economy() {
    let mut r = SimRng::seed_from_u64(42);
    for _ in 0..8 {
        let payloads = arb_payloads(&mut r);
        let n_receivers = r.gen_range_inclusive(1, 5) as usize;
        let (got, _, frames) =
            run_scenario(42, FaultPlan::none(), 0, payloads.clone(), n_receivers);
        for sink in &got {
            assert_eq!(sink, &payloads);
        }
        let expected_frames: u64 = payloads
            .iter()
            .map(|p| p.len().div_ceil(1_472).max(1) as u64)
            .sum();
        assert_eq!(
            frames, expected_frames,
            "one transmission serves all receivers"
        );
    }
}

/// Under arbitrary faults, receivers never see corrupted or invented
/// data: everything delivered is a subset (with possible duplicates) of
/// what was sent, and single-fragment duplicates are the only source of
/// repeats.
#[test]
fn no_corruption_under_faults() {
    let mut r = SimRng::seed_from_u64(43);
    for _ in 0..12 {
        let seed = r.gen_range_inclusive(0, 99_999);
        let faults = arb_faults(&mut r);
        let payloads = arb_payloads(&mut r);
        let (got, _, _) = run_scenario(seed, faults, 0, payloads.clone(), 2);
        for sink in &got {
            for delivered in sink {
                assert!(
                    payloads.iter().any(|p| p == delivered),
                    "delivered datagram must match a sent one"
                );
            }
        }
    }
}
